//! Multi-client ArkFS: directory leaders, request forwarding, lease
//! handover, and crash recovery from the per-directory journal.
//!
//! ```sh
//! cargo run --release --example multi_client
//! ```

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::MSEC;
use arkfs_vfs::{read_file, write_file, Credentials, Vfs};
use std::sync::Arc;

fn main() {
    // Short leases so the handover scenarios run quickly in virtual time.
    let config = ArkConfig::default()
        .with_lease_period(50 * MSEC, 50 * MSEC)
        .with_journal_window(0); // commit every mutation (crash demo)
    let store = Arc::new(ObjectCluster::new(ClusterConfig::rados(
        config.spec.clone(),
    )));
    let cluster = ArkCluster::new(config, store);
    let ctx = Credentials::root();

    let admin1 = cluster.client();
    let admin2 = cluster.client();
    println!("admin1 = {}", admin1.id());
    println!("admin2 = {}", admin2.id());

    // admin1 touches /ingest first and becomes its directory leader.
    admin1.mkdir(&ctx, "/ingest", 0o755).unwrap();
    write_file(&*admin1, &ctx, "/ingest/run-001.log", b"from admin1").unwrap();
    println!("admin1 leads {} directories", admin1.led_directories());

    // admin2's operations on /ingest are forwarded to admin1 (Figure 3 of
    // the paper): strong metadata consistency with no metadata server.
    let st = admin2.stat(&ctx, "/ingest/run-001.log").unwrap();
    println!(
        "admin2 sees run-001.log: size={} (via leader forwarding)",
        st.size
    );
    write_file(&*admin2, &ctx, "/ingest/run-002.log", b"from admin2").unwrap();
    println!(
        "admin2 created run-002.log through the leader; admin1 lists {:?}",
        admin1
            .readdir(&ctx, "/ingest")
            .unwrap()
            .iter()
            .map(|e| e.name.clone())
            .collect::<Vec<_>>()
    );

    // Disjoint working directories: each admin leads its own (the
    // controlled environment the paper targets).
    admin1.mkdir(&ctx, "/jobs-a", 0o755).unwrap();
    admin2.mkdir(&ctx, "/jobs-b", 0o755).unwrap();
    write_file(&*admin1, &ctx, "/jobs-a/x", b"a").unwrap();
    write_file(&*admin2, &ctx, "/jobs-b/y", b"b").unwrap();
    println!(
        "disjoint dirs: admin1 leads {}, admin2 leads {}",
        admin1.led_directories(),
        admin2.led_directories()
    );

    // Crash: admin1 dies without checkpointing. Its journaled mutations
    // survive; after lease + grace, admin2 recovers the directory.
    write_file(
        &*admin1,
        &ctx,
        "/ingest/run-003.log",
        b"journaled, not checkpointed",
    )
    .unwrap();
    admin1.crash();
    println!("admin1 crashed (journal left in the object store)");
    admin2.port().advance(200 * MSEC); // let the dead lease + grace drain
    let recovered = read_file(&*admin2, &ctx, "/ingest/run-003.log").unwrap();
    println!(
        "admin2 recovered run-003.log after takeover: {:?}",
        String::from_utf8_lossy(&recovered)
    );
    println!(
        "final /ingest listing: {:?}",
        admin2
            .readdir(&ctx, "/ingest")
            .unwrap()
            .iter()
            .map(|e| e.name.clone())
            .collect::<Vec<_>>()
    );
}
