//! ArkFS on an S3-compatible backend — the PRT module's backend
//! portability (§III-F): the same file system runs against a store
//! without partial writes by falling back to read-modify-write, and the
//! raw REST facade shows what actually hits the bucket.
//!
//! ```sh
//! cargo run --release --example s3_backend
//! ```

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::rest::{dispatch, RestRequest, RestResponse};
use arkfs_objstore::{ClusterConfig, ObjectCluster, ObjectStore};
use arkfs_simkit::{ClusterSpec, Port};
use arkfs_vfs::{read_file, write_file, Credentials, OpenFlags, Vfs};
use std::sync::Arc;

fn main() {
    let spec = ClusterSpec::aws_paper();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::s3(spec)));
    let cluster = ArkCluster::new(
        ArkConfig::default(),
        Arc::clone(&store) as Arc<dyn ObjectStore>,
    );
    let client = cluster.client();
    let ctx = Credentials::root();

    client.mkdir(&ctx, "/bucket-data", 0o755).unwrap();
    write_file(&*client, &ctx, "/bucket-data/object.bin", &[0xAB; 4096]).unwrap();

    // Sub-chunk overwrite: S3 has no ranged PUT, so the PRT module
    // rewrites the affected chunk (read-modify-write) — but only that
    // chunk, not the whole file as S3FS would.
    let fh = client
        .open(&ctx, "/bucket-data/object.bin", OpenFlags::RDWR)
        .unwrap();
    client.write(&ctx, fh, 100, b"patched!").unwrap();
    client.fsync(&ctx, fh).unwrap();
    client.close(&ctx, fh).unwrap();
    let data = read_file(&*client, &ctx, "/bucket-data/object.bin").unwrap();
    assert_eq!(&data[100..108], b"patched!");
    println!(
        "sub-chunk overwrite on S3 backend OK ({} bytes)",
        data.len()
    );
    client.release_all(&ctx).unwrap();

    // Peek under the hood with the REST facade: list the raw objects the
    // file system created (i=inode, e=dentry, j=journal, d=data).
    let port = Port::new();
    let resp = dispatch(
        &*store,
        &port,
        RestRequest::List {
            kind: None,
            ino: None,
        },
    )
    .unwrap();
    if let RestResponse::Keys(keys) = resp {
        let mut counts = std::collections::BTreeMap::new();
        for key in &keys {
            *counts.entry(key.chars().next().unwrap()).or_insert(0usize) += 1;
        }
        println!(
            "raw bucket contents: {} objects by prefix {:?}",
            keys.len(),
            counts
        );
        for key in keys.iter().take(5) {
            println!("  {key}");
        }
    }

    // Stats the S3 "bill" would show.
    println!(
        "S3 ops: {} PUT, {} GET, {} DELETE, {} LIST | {} B in / {} B out",
        store.stats.puts.get(),
        store.stats.gets.get(),
        store.stats.deletes.get(),
        store.stats.lists.get(),
        store.stats.bytes_in.get(),
        store.stats.bytes_out.get(),
    );
}
