//! Quickstart: stand up an ArkFS deployment on an in-memory RADOS-profile
//! object store, mount a client, and use the near-POSIX API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::ClusterSpec;
use arkfs_vfs::{
    read_file, write_file, Acl, AclEntry, Credentials, OpenFlags, SetAttr, Vfs, AM_READ,
};
use std::sync::Arc;

fn main() {
    // 1. The object storage substrate: 64 simulated OSDs, 2x replication,
    //    Ceph-RADOS-like semantics.
    let spec = ClusterSpec::aws_paper();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::rados(spec)));

    // 2. An ArkFS deployment on top of it (lease manager included), and
    //    one client — e.g. an archiving daemon.
    let cluster = ArkCluster::new(ArkConfig::default(), store);
    let client = cluster.client();
    let root = Credentials::root();

    // 3. Plain POSIX-style usage.
    client.mkdir(&root, "/projects", 0o755).unwrap();
    client.mkdir(&root, "/projects/alpha", 0o750).unwrap();
    write_file(
        &*client,
        &root,
        "/projects/alpha/report.txt",
        b"quarterly numbers",
    )
    .unwrap();

    let st = client.stat(&root, "/projects/alpha/report.txt").unwrap();
    println!(
        "report.txt: ino={:x} size={} mode={:o}",
        st.ino, st.size, st.mode
    );

    // Appending through a handle.
    let fh = client
        .open(
            &root,
            "/projects/alpha/report.txt",
            OpenFlags::WRONLY.append(),
        )
        .unwrap();
    client.write(&root, fh, 0, b" -- appended").unwrap();
    client.close(&root, fh).unwrap();
    let body = read_file(&*client, &root, "/projects/alpha/report.txt").unwrap();
    println!("contents: {}", String::from_utf8_lossy(&body));

    // 4. Ownership and ACLs — the POSIX features the HPC community needs
    //    on top of object storage (§II of the paper).
    client
        .setattr(
            &root,
            "/projects/alpha/report.txt",
            &SetAttr::chown(1001, 1001),
        )
        .unwrap();
    let reviewer = Credentials::user(2002);
    assert!(client
        .access(&reviewer, "/projects/alpha/report.txt", AM_READ)
        .is_err());
    client
        .set_acl(
            &root,
            "/projects/alpha/report.txt",
            &Acl::new(vec![AclEntry::user(2002, 0o4)]),
        )
        .unwrap();
    // ...but the reviewer also needs search permission on /projects/alpha.
    client
        .setattr(&root, "/projects/alpha", &SetAttr::chmod(0o751))
        .unwrap();
    client
        .access(&reviewer, "/projects/alpha/report.txt", AM_READ)
        .unwrap();
    println!("reviewer granted read via ACL");

    // 5. Rename across directories (two-phase commit across the two
    //    per-directory journals) and listing.
    client.mkdir(&root, "/archive", 0o755).unwrap();
    client
        .rename(
            &root,
            "/projects/alpha/report.txt",
            "/archive/report-2026.txt",
        )
        .unwrap();
    for entry in client.readdir(&root, "/archive").unwrap() {
        println!("/archive/{} (ino {:x})", entry.name, entry.ino);
    }

    // 6. Everything durable, leases handed back.
    client.release_all(&root).unwrap();
    println!(
        "done: led {} directories at exit, virtual time {:.3} ms",
        client.led_directories(),
        client.port().now() as f64 / 1e6
    );
}
