//! The paper's motivating workload (§IV-D): an administrator daemon
//! archives a dataset from the burst buffer into campaign storage (tar +
//! extract), then retrieves it again — over ArkFS.
//!
//! ```sh
//! cargo run --release --example archive_pipeline
//! ```

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::SEC;
use arkfs_vfs::Credentials;
use arkfs_workloads::tar::{archive_scenario, ArchiveConfig};
use arkfs_workloads::{DatasetSpec, SimClient};
use std::sync::Arc;

fn main() {
    let config = ArkConfig::default();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::rados(
        config.spec.clone(),
    )));
    let cluster = ArkCluster::new(config, store);

    // Four archiving daemons, each handling one (scaled) dataset copy.
    let daemons: Vec<Arc<dyn SimClient>> = (0..4)
        .map(|_| cluster.client() as Arc<dyn SimClient>)
        .collect();

    // MS-COCO-shaped dataset, scaled down: 1500 files, ~24 KB median.
    let dataset = DatasetSpec::scaled(1500, 24 * 1024, 7);
    println!(
        "dataset per daemon: {} files, {:.1} MB",
        dataset.files,
        dataset.total_bytes() as f64 / 1e6
    );
    let cfg = ArchiveConfig {
        dataset,
        ebs_bw: 200_000_000,
    };

    let result = archive_scenario(&daemons, &cfg).expect("archive scenario");
    println!(
        "archiving  (EBS → tar on ArkFS → extract):  {:.3} s virtual",
        result.archive_ns as f64 / SEC as f64
    );
    println!(
        "unarchiving (re-pack → stream back to EBS): {:.3} s virtual",
        result.unarchive_ns as f64 / SEC as f64
    );

    // Show the categorized layout one daemon produced.
    let ctx = Credentials::root();
    let listing = daemons[0].readdir(&ctx, "/campaign").unwrap();
    println!("/campaign entries: {}", listing.len());
    let extracted = daemons[0].readdir(&ctx, "/campaign/extracted-p0").unwrap();
    println!(
        "extracted-p0 holds {} files, e.g. {:?}",
        extracted.len(),
        extracted
            .iter()
            .take(3)
            .map(|e| e.name.clone())
            .collect::<Vec<_>>()
    );
}
