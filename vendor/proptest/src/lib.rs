//! Minimal in-tree replacement for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use:
//! `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert*!`,
//! `any::<T>()`, `Just`, integer range strategies, char-class regex
//! string strategies, tuple strategies, `prop::collection::vec`,
//! `.prop_map`, `.prop_recursive`, and `ProptestConfig { cases }`.
//!
//! Differences from upstream: no shrinking (a failing case fails the
//! test with the panic message directly), no persistence files, and a
//! smaller default case count. Generation is deterministic per test
//! name, so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Runner configuration. Only `cases` is honored; the other field
    /// exists for struct-update compatibility with upstream call sites.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// SplitMix64 generator used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed deterministically from a test's fully qualified name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u128() % bound as u128) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Extend a leaf strategy with up to `depth` levels of recursive
        /// structure. At each level the result is a coin flip between
        /// staying shallow and recursing one level deeper, which bounds
        /// nesting without shrinking machinery.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth.max(1) {
                let deeper = recurse(strat.clone()).boxed();
                strat = Union::new(vec![strat, deeper]).boxed();
            }
            strat
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one strategy"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u128() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    if self.start == <$t>::MIN {
                        rng.next_u128() as $t
                    } else {
                        let span = (<$t>::MAX - self.start) as u128 + 1;
                        self.start + (rng.next_u128() % span) as $t
                    }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u128 + 1;
                    start + (rng.next_u128() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_u128() % (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeFrom<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            if self.start == 0 {
                rng.next_u128()
            } else {
                // Sample the full space and fold anything below the start
                // back in; the remainder keeps the result in range.
                self.start + rng.next_u128() % (u128::MAX - self.start).wrapping_add(1).max(1)
            }
        }
    }

    /// Char-class regex string strategies: `"[class]{m,n}"`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_regex(self);
            let len = min + rng.below(max - min + 1);
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len())])
                .collect()
        }
    }

    fn bad_regex(pattern: &str) -> ! {
        panic!("unsupported string strategy regex: {pattern:?}")
    }

    /// Parse the `[class]{m,n}` subset of regex this crate supports.
    fn parse_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| bad_regex(pattern));
        let (class, counts) = rest.split_once(']').unwrap_or_else(|| bad_regex(pattern));
        let counts = counts
            .strip_prefix('{')
            .and_then(|c| c.strip_suffix('}'))
            .unwrap_or_else(|| bad_regex(pattern));
        let (min, max): (usize, usize) = match counts.split_once(',') {
            Some((m, n)) => (
                m.parse().unwrap_or_else(|_| bad_regex(pattern)),
                n.parse().unwrap_or_else(|_| bad_regex(pattern)),
            ),
            None => {
                let n = counts.parse().unwrap_or_else(|_| bad_regex(pattern));
                (n, n)
            }
        };
        let chars: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "bad char range in {pattern:?}");
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");
        (alphabet, min, max)
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u128()
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u128() as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($T:ident),+) => {
            impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($T::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
    impl_arbitrary_tuple!(A, B, C, D, E);
    impl_arbitrary_tuple!(A, B, C, D, E, F);

    /// Strategy form of [`Arbitrary`], returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — generate any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` that runs `body` over `config.cases` generated
/// inputs. Failures surface as ordinary panics (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for proptest_case in 0..config.cases {
                let _ = proptest_case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng);)*
                $body
            }
        }
    )*};
}

/// Build a named strategy function out of component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($args:tt)*)
            ($($pat:pat in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in "[a-c]{1,2}") -> (u32, String) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn ranges_and_strings_in_bounds(
            x in 3u64..17,
            s in "[a-zA-Z0-9_.-]{1,24}",
            v in prop::collection::vec(any::<u8>(), 0..5),
            p in arb_pair(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!s.is_empty() && s.len() <= 24);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
            prop_assert!(v.len() < 5);
            prop_assert!(p.0 < 10, "pair {:?}", p);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), 2u8..4, any::<u8>().prop_map(|x| x / 2)]) {
            prop_assert!(v <= 200);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 8, 3, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::new(42);
        for _ in 0..200 {
            let _ = strat.generate(&mut rng);
        }
    }
}
