//! Minimal in-tree replacement for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's
//! poison-free API: `lock()`/`read()`/`write()` return guards directly
//! instead of `Result`s. A poisoned std lock (a panic while held) is
//! recovered by taking the inner guard — the same "ignore poisoning"
//! semantics parking_lot has by construction.

#![forbid(unsafe_code)]

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive with a non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
