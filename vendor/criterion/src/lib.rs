//! Minimal in-tree replacement for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `throughput`, `sample_size`,
//! and `Bencher::iter` — with a simple calibrated timing loop instead
//! of criterion's statistical machinery. Each benchmark prints its
//! mean time per iteration (and throughput when configured).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(40);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(10);

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Throughput annotation for a group's benchmarks.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the timing loop is self-calibrating.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        self.report(&id.into(), &bencher);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher.per_iter_ns();
        let mut line = format!("{}/{}: {:>12.1} ns/iter", self.name, id.0, per_iter);
        match self.throughput {
            Some(Throughput::Bytes(bytes)) if per_iter > 0.0 => {
                let mib_s = bytes as f64 / (1024.0 * 1024.0) / (per_iter / 1e9);
                line.push_str(&format!("  ({mib_s:.0} MiB/s)"));
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let elem_s = n as f64 / (per_iter / 1e9);
                line.push_str(&format!("  ({elem_s:.0} elem/s)"));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly: a short warm-up, then measurement until the
    /// time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            // Check the clock in batches to keep timer overhead low for
            // nanosecond-scale bodies.
            if iters.is_multiple_of(64) && start.elapsed() >= MEASURE {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn per_iter_ns(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// Define a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
