//! Minimal in-tree replacement for the `rand` crate.
//!
//! Implements the small slice of the rand 0.10 API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! extension methods `random`, `random_range`, and `random_bool`.
//! The generator is SplitMix64 — deterministic per seed, statistically
//! fine for workload generation, and not cryptographic.

#![forbid(unsafe_code)]

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible uniformly at random from an RNG.
pub trait Random: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Map a `u64` to a uniform float in `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::random(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end - start) as u128 + 1;
                start + (u128::random(rng) % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::random(rng) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<u128> for std::ops::Range<u128> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "random_range: empty range");
        let span = self.end - self.start;
        self.start + u128::random(rng) % span
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = unit_f64(rng.next_u64());
        // Clamp so half-open semantics survive rounding at the top end.
        (self.start + u * (self.end - self.start)).min(self.end - f64::EPSILON * self.end.abs())
    }
}

/// Convenience methods available on every RNG.
pub trait RngExt: RngCore {
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.random::<u128>(), b.random::<u128>());
        assert_ne!(StdRng::seed_from_u64(8).random::<u64>(), a.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bool_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
