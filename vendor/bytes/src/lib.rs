//! Minimal in-tree replacement for the `bytes` crate.
//!
//! Provides the subset of the `Bytes` API this workspace uses: a cheaply
//! cloneable, immutable, reference-counted byte buffer with zero-copy
//! `slice`. The representation is an `Arc<Vec<u8>>` plus an offset/length
//! window, so `clone` and `slice` are O(1) and never copy payload.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation beyond the shared empty vec).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy the visible window out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Zero-copy sub-window. Panics if the range is out of bounds,
    /// matching the upstream crate's behavior.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "Bytes::slice range {start}..{end} out of bounds (len {})",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::new(v),
            offset: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.to_vec(), vec![3, 4]);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"ab").slice(..3);
    }
}
