//! The REST-shaped object store trait.

use crate::error::{OsError, OsResult};
use crate::key::{KeyKind, ObjectKey};
use crate::profile::StoreProfile;
use arkfs_simkit::Port;
use bytes::Bytes;

/// A distributed object store as ArkFS sees it: GET/PUT/DELETE/HEAD/LIST
/// plus the ranged variants the backend profile permits.
///
/// Every call charges its virtual-time cost (network, service, disk) to
/// the caller's [`Port`] and blocks the calling thread only for the real
/// in-memory work.
pub trait ObjectStore: Send + Sync {
    /// The backend's semantic/cost profile.
    fn profile(&self) -> &StoreProfile;

    /// (object count, logical bytes) currently stored — `df` support.
    fn usage(&self) -> (u64, u64) {
        (0, 0)
    }

    /// (batched calls issued, total items across them) — diagnostics for
    /// the pipelined multi-ops. Backends that don't track them report
    /// zeros.
    fn batch_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// The deployment-wide telemetry handle (registry + span tracer)
    /// this store records into, if it has one. Everything layered above
    /// a store adopts this handle so one registry covers the stack.
    fn telemetry(&self) -> Option<&std::sync::Arc<arkfs_telemetry::Telemetry>> {
        None
    }

    /// PUT a whole object (creates or replaces).
    fn put(&self, port: &Port, key: ObjectKey, data: Bytes) -> OsResult<()>;

    /// GET a whole object.
    fn get(&self, port: &Port, key: ObjectKey) -> OsResult<Bytes>;

    /// GET `len` bytes at `offset`. Reading past EOF truncates; an offset
    /// at or past EOF returns an empty buffer. Errors with `Unsupported`
    /// if the profile lacks ranged reads.
    fn get_range(&self, port: &Port, key: ObjectKey, offset: u64, len: usize) -> OsResult<Bytes>;

    /// Write `data` at `offset` within an object, creating it or extending
    /// it (zero-filled gap) as needed. Errors with `Unsupported` on
    /// profiles without partial writes (S3).
    fn put_range(&self, port: &Port, key: ObjectKey, offset: u64, data: Bytes) -> OsResult<()>;

    /// DELETE an object. `NotFound` if it does not exist.
    fn delete(&self, port: &Port, key: ObjectKey) -> OsResult<()>;

    /// HEAD: object size in bytes.
    fn head(&self, port: &Port, key: ObjectKey) -> OsResult<u64>;

    /// LIST keys, optionally filtered by kind and/or inode. Results are
    /// sorted. (Flat-namespace prefix listing, as on S3/RADOS.)
    fn list(
        &self,
        port: &Port,
        kind: Option<KeyKind>,
        ino: Option<u128>,
    ) -> OsResult<Vec<ObjectKey>>;

    /// Pipelined multi-GET: issue all requests concurrently; the caller
    /// waits for the *last* completion instead of the sum (this is what
    /// makes read-ahead pay off). The default falls back to sequential
    /// GETs; clustered implementations override it.
    fn get_many(&self, port: &Port, keys: &[ObjectKey]) -> Vec<OsResult<Bytes>> {
        keys.iter().map(|&k| self.get(port, k)).collect()
    }

    /// Asynchronous multi-GET: all requests depart at `arrival`, and each
    /// key reports its own completion time instead of advancing a port.
    /// This is the substrate for *asynchronous read-ahead* (§III-D of the
    /// paper): the prefetcher issues these and the application only waits
    /// when it actually touches a chunk before its completion.
    fn get_each(&self, arrival: u64, keys: &[ObjectKey]) -> Vec<OsResult<(Bytes, u64)>> {
        keys.iter()
            .map(|&k| {
                let port = Port::starting_at(arrival);
                self.get(&port, k).map(|b| (b, port.now()))
            })
            .collect()
    }

    /// Pipelined multi-PUT (cache write-back flushes).
    fn put_many(&self, port: &Port, items: Vec<(ObjectKey, Bytes)>) -> Vec<OsResult<()>> {
        items
            .into_iter()
            .map(|(k, d)| self.put(port, k, d))
            .collect()
    }

    /// Pipelined ranged multi-GET: one `(key, offset, len)` request per
    /// item, all issued concurrently. Per-item semantics match
    /// [`ObjectStore::get_range`]. The default falls back to sequential
    /// ranged GETs; clustered implementations override it.
    fn get_range_many(
        &self,
        port: &Port,
        reqs: &[(ObjectKey, u64, usize)],
    ) -> Vec<OsResult<Bytes>> {
        reqs.iter()
            .map(|&(key, offset, len)| self.get_range(port, key, offset, len))
            .collect()
    }

    /// Pipelined ranged multi-PUT: write each item's `data` at `offset`
    /// within its object. Unlike [`ObjectStore::put_range`] this never
    /// fails with `Unsupported`: backends without partial writes (the S3
    /// profile) degrade per item to read-modify-write of the whole
    /// object, which is exactly the S3FS behavior the paper describes —
    /// confined to one chunk object rather than the whole file.
    fn put_range_many(
        &self,
        port: &Port,
        items: Vec<(ObjectKey, u64, Bytes)>,
    ) -> Vec<OsResult<()>> {
        items
            .into_iter()
            .map(
                |(key, offset, data)| match self.put_range(port, key, offset, data.clone()) {
                    Err(OsError::Unsupported(_)) => {
                        let mut whole = match self.get(port, key) {
                            Ok(existing) => existing.to_vec(),
                            Err(OsError::NotFound) => Vec::new(),
                            Err(e) => return Err(e),
                        };
                        let end = offset as usize + data.len();
                        if whole.len() < end {
                            whole.resize(end, 0);
                        }
                        whole[offset as usize..end].copy_from_slice(&data);
                        self.put(port, key, Bytes::from(whole))
                    }
                    r => r,
                },
            )
            .collect()
    }

    /// Pipelined multi-DELETE. Per-item results report `NotFound` for
    /// missing objects without failing the batch.
    fn delete_many(&self, port: &Port, keys: &[ObjectKey]) -> Vec<OsResult<()>> {
        keys.iter().map(|&k| self.delete(port, k)).collect()
    }
}
