//! Failure injection for crash-consistency and recovery tests.

use crate::error::{OsError, OsResult};
use crate::key::{KeyKind, ObjectKey};
use parking_lot::Mutex;
use std::collections::HashSet;

#[derive(Debug, Default)]
struct FaultState {
    /// Fail this many upcoming PUT/PUT-range calls, then recover.
    fail_next_puts: u32,
    /// Only fail puts of this kind (when set).
    fail_kind: Option<KeyKind>,
    /// Keys that silently vanished (bit rot / lost replica).
    lost: HashSet<ObjectKey>,
    /// Whole storage nodes that are offline.
    down_shards: HashSet<usize>,
}

/// A shared fault plan attached to an [`crate::ObjectCluster`].
///
/// Tests arm it, then exercise the file system and observe that journals
/// and recovery keep the namespace consistent.
#[derive(Debug, Default)]
pub struct FaultPlan {
    state: Mutex<FaultState>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm: the next `n` PUTs (optionally only of `kind`) fail with
    /// [`OsError::Injected`].
    pub fn fail_next_puts(&self, n: u32, kind: Option<KeyKind>) {
        let mut s = self.state.lock();
        s.fail_next_puts = n;
        s.fail_kind = kind;
    }

    /// Arm: `key` is gone; GET/HEAD of it return `NotFound`.
    pub fn lose_object(&self, key: ObjectKey) {
        self.state.lock().lost.insert(key);
    }

    /// Take a whole storage shard offline (node failure). Reads fail
    /// over to replicas or reconstruct from erasure-coded fragments.
    pub fn fail_shard(&self, idx: usize) {
        self.state.lock().down_shards.insert(idx);
    }

    /// Bring a shard back.
    pub fn restore_shard(&self, idx: usize) {
        self.state.lock().down_shards.remove(&idx);
    }

    /// Is this shard offline?
    pub fn is_shard_down(&self, idx: usize) -> bool {
        self.state.lock().down_shards.contains(&idx)
    }

    /// Disarm everything.
    pub fn clear(&self) {
        *self.state.lock() = FaultState::default();
    }

    /// Called by the cluster before applying a PUT.
    pub(crate) fn check_put(&self, key: ObjectKey) -> OsResult<()> {
        let mut s = self.state.lock();
        if s.fail_next_puts > 0 && s.fail_kind.is_none_or(|k| k == key.kind) {
            s.fail_next_puts -= 1;
            return Err(OsError::Injected("put failure"));
        }
        Ok(())
    }

    /// Called by the cluster before serving a GET/HEAD.
    pub(crate) fn is_lost(&self, key: ObjectKey) -> bool {
        self.state.lock().lost.contains(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_failures_count_down() {
        let f = FaultPlan::new();
        let k = ObjectKey::inode(1);
        f.fail_next_puts(2, None);
        assert!(f.check_put(k).is_err());
        assert!(f.check_put(k).is_err());
        assert!(f.check_put(k).is_ok());
    }

    #[test]
    fn kind_filter_applies() {
        let f = FaultPlan::new();
        f.fail_next_puts(1, Some(KeyKind::Journal));
        // Non-journal put sails through without consuming the budget.
        assert!(f.check_put(ObjectKey::inode(1)).is_ok());
        assert!(f.check_put(ObjectKey::journal(1, 0)).is_err());
        assert!(f.check_put(ObjectKey::journal(1, 1)).is_ok());
    }

    #[test]
    fn lost_objects_and_clear() {
        let f = FaultPlan::new();
        let k = ObjectKey::data_chunk(3, 0);
        assert!(!f.is_lost(k));
        f.lose_object(k);
        assert!(f.is_lost(k));
        f.clear();
        assert!(!f.is_lost(k));
    }
}
