//! Erasure coding: k data fragments + 1 XOR parity fragment
//! (RAID-5-style), the space-efficient alternative to replication the
//! paper attributes to object storage durability ("high durability and
//! reliability by means of replication and erasure coding mechanisms",
//! §I).
//!
//! Pure fragment math lives here; placement and cost accounting live in
//! [`crate::cluster`]. Any single lost fragment — including the parity —
//! is reconstructible.

/// An erasure-coding scheme: `data` fragments plus one parity fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcScheme {
    pub data: usize,
}

impl EcScheme {
    pub fn new(data: usize) -> Self {
        assert!(data >= 2, "erasure coding needs at least 2 data fragments");
        EcScheme { data }
    }

    /// Total fragments written per object.
    pub fn width(&self) -> usize {
        self.data + 1
    }

    /// Size of the (padded) fragment stripe for an object of `total`
    /// bytes.
    pub fn stripe(&self, total: usize) -> usize {
        total.div_ceil(self.data).max(1)
    }

    /// Length of data fragment `j` (unpadded) for an object of `total`
    /// bytes.
    pub fn frag_len(&self, total: usize, j: usize) -> usize {
        let fs = self.stripe(total);
        let start = j * fs;
        total.saturating_sub(start).min(fs)
    }

    /// Split `bytes` into `data` unpadded fragments plus the XOR parity
    /// (always `stripe` long).
    pub fn encode(&self, bytes: &[u8]) -> Vec<Vec<u8>> {
        let fs = self.stripe(bytes.len());
        let mut out = Vec::with_capacity(self.width());
        let mut parity = vec![0u8; fs];
        for j in 0..self.data {
            let start = (j * fs).min(bytes.len());
            let end = ((j + 1) * fs).min(bytes.len());
            let frag = &bytes[start..end];
            for (p, &b) in parity.iter_mut().zip(frag) {
                *p ^= b;
            }
            out.push(frag.to_vec());
        }
        out.push(parity);
        out
    }

    /// Reassemble the object from fragments; index `data` is the parity.
    /// At most one fragment may be `None`. `total_len` is the object's
    /// original length (each stored fragment carries it).
    pub fn reconstruct(
        &self,
        total_len: usize,
        mut frags: Vec<Option<Vec<u8>>>,
    ) -> Option<Vec<u8>> {
        if frags.len() != self.width() {
            return None;
        }
        let missing: Vec<usize> = (0..self.width()).filter(|&i| frags[i].is_none()).collect();
        if missing.len() > 1 {
            return None;
        }
        let fs = self.stripe(total_len);
        if let Some(&lost) = missing.first() {
            if lost < self.data {
                // XOR of parity and the surviving data fragments
                // (zero-padded), trimmed to the lost fragment's length.
                let mut rec = frags[self.data].clone()?;
                rec.resize(fs, 0);
                for (j, frag) in frags.iter().enumerate().take(self.data) {
                    if j == lost {
                        continue;
                    }
                    let frag = frag.as_ref()?;
                    for (r, &b) in rec.iter_mut().zip(frag) {
                        *r ^= b;
                    }
                }
                rec.truncate(self.frag_len(total_len, lost));
                frags[lost] = Some(rec);
            }
            // A lost parity needs no action for reads.
        }
        let mut out = Vec::with_capacity(total_len);
        for frag in frags.into_iter().take(self.data) {
            out.extend_from_slice(&frag?);
        }
        out.truncate(total_len);
        (out.len() == total_len).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_shapes() {
        let ec = EcScheme::new(4);
        assert_eq!(ec.width(), 5);
        let frags = ec.encode(&[1, 2, 3, 4, 5, 6, 7, 8, 9]); // stripe = 3
        assert_eq!(frags.len(), 5);
        assert_eq!(frags[0], vec![1, 2, 3]);
        assert_eq!(frags[2], vec![7, 8, 9]);
        assert_eq!(frags[3], Vec::<u8>::new()); // short tail fragment
        assert_eq!(frags[4].len(), 3); // parity is stripe-long
    }

    #[test]
    fn roundtrip_intact() {
        let ec = EcScheme::new(3);
        let data: Vec<u8> = (0..100u8).collect();
        let frags: Vec<Option<Vec<u8>>> = ec.encode(&data).into_iter().map(Some).collect();
        assert_eq!(ec.reconstruct(100, frags).unwrap(), data);
    }

    #[test]
    fn any_single_loss_recovers() {
        let ec = EcScheme::new(4);
        let data: Vec<u8> = (0..250u8).chain(0..33).collect();
        let encoded = ec.encode(&data);
        for lost in 0..ec.width() {
            let mut frags: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            frags[lost] = None;
            assert_eq!(
                ec.reconstruct(data.len(), frags).unwrap(),
                data,
                "lost fragment {lost}"
            );
        }
    }

    #[test]
    fn double_loss_fails() {
        let ec = EcScheme::new(3);
        let data = vec![9u8; 50];
        let mut frags: Vec<Option<Vec<u8>>> = ec.encode(&data).into_iter().map(Some).collect();
        frags[0] = None;
        frags[2] = None;
        assert!(ec.reconstruct(50, frags).is_none());
    }

    #[test]
    fn empty_and_tiny_objects() {
        let ec = EcScheme::new(4);
        let frags: Vec<Option<Vec<u8>>> = ec.encode(&[]).into_iter().map(Some).collect();
        assert_eq!(ec.reconstruct(0, frags).unwrap(), Vec::<u8>::new());
        let frags: Vec<Option<Vec<u8>>> = ec.encode(&[7]).into_iter().map(Some).collect();
        assert_eq!(ec.reconstruct(1, frags).unwrap(), vec![7]);
    }

    proptest! {
        #[test]
        fn prop_reconstruct_any_loss(
            data in prop::collection::vec(any::<u8>(), 0..500),
            k in 2usize..8,
            lost_sel in any::<usize>(),
        ) {
            let ec = EcScheme::new(k);
            let encoded = ec.encode(&data);
            prop_assert_eq!(encoded.len(), k + 1);
            let lost = lost_sel % ec.width();
            let mut frags: Vec<Option<Vec<u8>>> =
                encoded.into_iter().map(Some).collect();
            frags[lost] = None;
            prop_assert_eq!(ec.reconstruct(data.len(), frags), Some(data));
        }
    }
}
