//! Backend profiles: the semantic and cost differences between a
//! RADOS-like and an S3-like object store, which drive Figure 6.

use arkfs_simkit::{ClusterSpec, Nanos};

/// Semantics + per-operation cost of an object storage backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreProfile {
    pub name: &'static str,
    /// Fixed service time of one small object operation at a storage node
    /// (occupies the shard: this is the throughput-limiting term).
    pub op_service: Nanos,
    /// Pure per-operation latency that does NOT occupy the shard (HTTP
    /// stack, auth, placement — S3 pays tens of milliseconds here while
    /// still serving enormous aggregate throughput).
    pub op_latency: Nanos,
    /// Whether ranged/partial writes (and appends) are supported.
    /// RADOS: yes. S3: no — the whole object must be re-PUT, which is why
    /// "random writes or appends to files result in rewriting of the
    /// entire object" in S3FS (§II-C).
    pub partial_writes: bool,
    /// Whether ranged reads are supported (both RADOS and S3 allow ranged
    /// GET).
    pub ranged_reads: bool,
}

impl StoreProfile {
    /// Ceph-RADOS-like profile from the given cluster spec.
    pub fn rados(spec: &ClusterSpec) -> Self {
        StoreProfile {
            name: "rados",
            op_service: spec.rados_op_service,
            op_latency: 0,
            partial_writes: true,
            ranged_reads: true,
        }
    }

    /// S3-compatible profile from the given cluster spec.
    pub fn s3(spec: &ClusterSpec) -> Self {
        StoreProfile {
            name: "s3",
            // The shard only serializes a sliver of the request; the rest
            // is pure latency.
            op_service: spec.s3_op_service / 50,
            op_latency: spec.s3_op_service,
            partial_writes: false,
            ranged_reads: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_it_matters() {
        let spec = ClusterSpec::aws_paper();
        let rados = StoreProfile::rados(&spec);
        let s3 = StoreProfile::s3(&spec);
        assert!(rados.partial_writes);
        assert!(!s3.partial_writes);
        assert!(rados.ranged_reads && s3.ranged_reads);
        assert!(s3.op_service > rados.op_service);
        assert_ne!(rados.name, s3.name);
    }
}
