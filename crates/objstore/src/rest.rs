//! A string-keyed REST facade over any [`ObjectStore`].
//!
//! The paper's PRT module "can support any kind of object storage backend
//! by registering the corresponding REST APIs" (§III-F). This module is
//! that registration surface: a backend that speaks GET/PUT/DELETE/HEAD/
//! LIST with string keys can be driven through [`dispatch`], and the rest
//! of the stack never sees backend specifics.

use crate::error::{OsError, OsResult};
use crate::key::{KeyKind, ObjectKey};
use crate::store::ObjectStore;
use arkfs_simkit::Port;
use bytes::Bytes;

/// A REST-style request with string object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum RestRequest {
    Get {
        key: String,
        range: Option<(u64, usize)>,
    },
    Put {
        key: String,
        data: Bytes,
        offset: Option<u64>,
    },
    Delete {
        key: String,
    },
    Head {
        key: String,
    },
    List {
        kind: Option<char>,
        ino: Option<String>,
    },
}

/// The matching response payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum RestResponse {
    Data(Bytes),
    Ok,
    Size(u64),
    Keys(Vec<String>),
}

/// Execute a REST request against a store, translating string keys into
/// the typed key space.
pub fn dispatch(store: &dyn ObjectStore, port: &Port, req: RestRequest) -> OsResult<RestResponse> {
    match req {
        RestRequest::Get { key, range } => {
            let key = ObjectKey::parse(&key)?;
            let data = match range {
                Some((off, len)) => store.get_range(port, key, off, len)?,
                None => store.get(port, key)?,
            };
            Ok(RestResponse::Data(data))
        }
        RestRequest::Put { key, data, offset } => {
            let key = ObjectKey::parse(&key)?;
            match offset {
                Some(off) => store.put_range(port, key, off, data)?,
                None => store.put(port, key, data)?,
            }
            Ok(RestResponse::Ok)
        }
        RestRequest::Delete { key } => {
            store.delete(port, ObjectKey::parse(&key)?)?;
            Ok(RestResponse::Ok)
        }
        RestRequest::Head { key } => Ok(RestResponse::Size(
            store.head(port, ObjectKey::parse(&key)?)?,
        )),
        RestRequest::List { kind, ino } => {
            let kind = match kind {
                Some(c) => Some(KeyKind::from_prefix(c).ok_or(OsError::BadKey)?),
                None => None,
            };
            let ino = match ino {
                Some(hex) => Some(u128::from_str_radix(&hex, 16).map_err(|_| OsError::BadKey)?),
                None => None,
            };
            let keys = store.list(port, kind, ino)?;
            Ok(RestResponse::Keys(
                keys.iter().map(|k| k.to_string()).collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ObjectCluster};

    fn setup() -> (ObjectCluster, Port) {
        (ObjectCluster::new(ClusterConfig::test_tiny()), Port::new())
    }

    fn key_str(k: ObjectKey) -> String {
        k.to_string()
    }

    #[test]
    fn put_then_get() {
        let (c, p) = setup();
        let key = key_str(ObjectKey::data_chunk(5, 0));
        let r = dispatch(
            &c,
            &p,
            RestRequest::Put {
                key: key.clone(),
                data: Bytes::from_static(b"abc"),
                offset: None,
            },
        )
        .unwrap();
        assert_eq!(r, RestResponse::Ok);
        let r = dispatch(
            &c,
            &p,
            RestRequest::Get {
                key: key.clone(),
                range: None,
            },
        )
        .unwrap();
        assert_eq!(r, RestResponse::Data(Bytes::from_static(b"abc")));
        let r = dispatch(&c, &p, RestRequest::Head { key }).unwrap();
        assert_eq!(r, RestResponse::Size(3));
    }

    #[test]
    fn ranged_get_and_put() {
        let (c, p) = setup();
        let key = key_str(ObjectKey::data_chunk(6, 0));
        dispatch(
            &c,
            &p,
            RestRequest::Put {
                key: key.clone(),
                data: Bytes::from_static(b"yz"),
                offset: Some(2),
            },
        )
        .unwrap();
        let r = dispatch(
            &c,
            &p,
            RestRequest::Get {
                key: key.clone(),
                range: Some((2, 2)),
            },
        )
        .unwrap();
        assert_eq!(r, RestResponse::Data(Bytes::from_static(b"yz")));
    }

    #[test]
    fn delete_and_list() {
        let (c, p) = setup();
        let k1 = ObjectKey::journal(9, 0);
        let k2 = ObjectKey::journal(9, 1);
        for k in [k1, k2] {
            dispatch(
                &c,
                &p,
                RestRequest::Put {
                    key: key_str(k),
                    data: Bytes::new(),
                    offset: None,
                },
            )
            .unwrap();
        }
        let r = dispatch(
            &c,
            &p,
            RestRequest::List {
                kind: Some('j'),
                ino: Some(format!("{:x}", 9)),
            },
        )
        .unwrap();
        match r {
            RestResponse::Keys(keys) => assert_eq!(keys.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
        dispatch(&c, &p, RestRequest::Delete { key: key_str(k1) }).unwrap();
        let r = dispatch(
            &c,
            &p,
            RestRequest::List {
                kind: Some('j'),
                ino: None,
            },
        )
        .unwrap();
        assert_eq!(r, RestResponse::Keys(vec![key_str(k2)]));
    }

    #[test]
    fn malformed_keys_rejected() {
        let (c, p) = setup();
        assert_eq!(
            dispatch(
                &c,
                &p,
                RestRequest::Get {
                    key: "bogus".into(),
                    range: None
                }
            ),
            Err(OsError::BadKey)
        );
        assert_eq!(
            dispatch(
                &c,
                &p,
                RestRequest::List {
                    kind: Some('q'),
                    ino: None
                }
            ),
            Err(OsError::BadKey)
        );
        assert_eq!(
            dispatch(
                &c,
                &p,
                RestRequest::List {
                    kind: None,
                    ino: Some("zz".into())
                }
            ),
            Err(OsError::BadKey)
        );
    }
}
