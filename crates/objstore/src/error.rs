//! Object-store error type.

use std::fmt;

pub type OsResult<T> = Result<T, OsError>;

/// Errors the object storage layer can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// GET/DELETE/HEAD of a key that does not exist.
    NotFound,
    /// The profile does not support this operation (e.g. ranged PUT on
    /// the S3 profile).
    Unsupported(&'static str),
    /// A fault injected by the test harness.
    Injected(&'static str),
    /// Requested range lies outside the object.
    BadRange,
    /// Malformed key string handed to the REST layer.
    BadKey,
    /// Too many erasure-coded fragments are unavailable to reconstruct
    /// the object.
    InsufficientFragments,
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NotFound => write!(f, "object not found"),
            OsError::Unsupported(what) => write!(f, "unsupported by store profile: {what}"),
            OsError::Injected(what) => write!(f, "injected fault: {what}"),
            OsError::BadRange => write!(f, "range outside object"),
            OsError::BadKey => write!(f, "malformed object key"),
            OsError::InsufficientFragments => {
                write!(f, "too many fragments unavailable to reconstruct object")
            }
        }
    }
}

impl std::error::Error for OsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OsError::NotFound.to_string().contains("not found"));
        assert!(OsError::Unsupported("ranged put")
            .to_string()
            .contains("ranged put"));
        assert!(OsError::Injected("crash").to_string().contains("crash"));
        assert!(!OsError::BadRange.to_string().is_empty());
        assert!(!OsError::BadKey.to_string().is_empty());
    }
}
