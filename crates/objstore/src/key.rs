//! Object key model — the PRT module's key construction scheme (§III-F).
//!
//! "ArkFS uses 128-bit UUID for its inode number and constructs the key of
//! each object by concatenating a pre-defined prefix and the inode number.
//! A pre-defined prefix for metadata would be one of `i` (INODE), `e`
//! (DENTRY) or `j` (JOURNAL). [...] To store file data as an object, its
//! key is constructed by combining the prefix `d` (DATA) and the index
//! value of the data."
//!
//! Dentry buckets and journal sequence numbers reuse the same index slot.

use crate::error::{OsError, OsResult};
use std::fmt;

/// The pre-defined key prefixes of the PRT module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyKind {
    /// `i` — an inode record.
    Inode,
    /// `e` — a dentry bucket of a directory.
    Dentry,
    /// `j` — one sealed journal transaction of a directory.
    Journal,
    /// `d` — one data chunk of a file.
    Data,
}

impl KeyKind {
    pub fn prefix(self) -> char {
        match self {
            KeyKind::Inode => 'i',
            KeyKind::Dentry => 'e',
            KeyKind::Journal => 'j',
            KeyKind::Data => 'd',
        }
    }

    pub fn from_prefix(c: char) -> Option<Self> {
        match c {
            'i' => Some(KeyKind::Inode),
            'e' => Some(KeyKind::Dentry),
            'j' => Some(KeyKind::Journal),
            'd' => Some(KeyKind::Data),
            _ => None,
        }
    }
}

/// A fully-qualified object key: kind + inode UUID + index.
///
/// The index is the data chunk index for `d` keys, the bucket number for
/// `e` keys, and the transaction sequence number for `j` keys; it is 0 for
/// `i` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectKey {
    pub kind: KeyKind,
    pub ino: u128,
    pub index: u64,
}

impl ObjectKey {
    pub fn inode(ino: u128) -> Self {
        ObjectKey {
            kind: KeyKind::Inode,
            ino,
            index: 0,
        }
    }

    pub fn dentry_bucket(ino: u128, bucket: u64) -> Self {
        ObjectKey {
            kind: KeyKind::Dentry,
            ino,
            index: bucket,
        }
    }

    pub fn journal(ino: u128, seq: u64) -> Self {
        ObjectKey {
            kind: KeyKind::Journal,
            ino,
            index: seq,
        }
    }

    pub fn data_chunk(ino: u128, chunk: u64) -> Self {
        ObjectKey {
            kind: KeyKind::Data,
            ino,
            index: chunk,
        }
    }

    /// Parse the canonical REST string form, e.g.
    /// `d000102030405060708090a0b0c0d0e0f.42`.
    pub fn parse(s: &str) -> OsResult<Self> {
        let mut chars = s.chars();
        let kind = chars
            .next()
            .and_then(KeyKind::from_prefix)
            .ok_or(OsError::BadKey)?;
        let rest = &s[1..];
        let (hex, index) = match rest.split_once('.') {
            Some((hex, idx)) => (hex, idx.parse::<u64>().map_err(|_| OsError::BadKey)?),
            None => (rest, 0),
        };
        if hex.len() != 32 {
            return Err(OsError::BadKey);
        }
        let ino = u128::from_str_radix(hex, 16).map_err(|_| OsError::BadKey)?;
        Ok(ObjectKey { kind, ino, index })
    }

    /// Stable shard selection for this key. Data and journal chunks of the
    /// same inode spread across shards by index; the inode record and its
    /// dentry buckets colocate with bucket spreading.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        // FNV-1a over the key fields: cheap, well-spread, deterministic.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.kind.prefix() as u8);
        for b in self.ino.to_le_bytes() {
            mix(b);
        }
        for b in self.index.to_le_bytes() {
            mix(b);
        }
        (h % shards as u64) as usize
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == KeyKind::Inode {
            write!(f, "{}{:032x}", self.kind.prefix(), self.ino)
        } else {
            write!(f, "{}{:032x}.{}", self.kind.prefix(), self.ino, self.index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_matches_paper_scheme() {
        let k = ObjectKey::inode(0xABCD);
        assert_eq!(k.to_string(), format!("i{:032x}", 0xABCDu32));
        let d = ObjectKey::data_chunk(7, 42);
        assert!(d.to_string().starts_with('d'));
        assert!(d.to_string().ends_with(".42"));
    }

    #[test]
    fn parse_roundtrip() {
        for k in [
            ObjectKey::inode(u128::MAX),
            ObjectKey::dentry_bucket(0, 3),
            ObjectKey::journal(12345, 9999),
            ObjectKey::data_chunk(1, 0),
        ] {
            assert_eq!(ObjectKey::parse(&k.to_string()).unwrap(), k);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "x00", "i123", "izz", "d0123.xyz", "i0123456789abcdef"] {
            assert_eq!(ObjectKey::parse(bad), Err(OsError::BadKey), "{bad}");
        }
        // 32 hex digits but unknown prefix
        let bad = format!("q{:032x}", 5u8);
        assert_eq!(ObjectKey::parse(&bad), Err(OsError::BadKey));
    }

    #[test]
    fn prefixes_roundtrip() {
        for kind in [
            KeyKind::Inode,
            KeyKind::Dentry,
            KeyKind::Journal,
            KeyKind::Data,
        ] {
            assert_eq!(KeyKind::from_prefix(kind.prefix()), Some(kind));
        }
        assert_eq!(KeyKind::from_prefix('z'), None);
    }

    #[test]
    fn shards_are_stable_and_in_range() {
        let k = ObjectKey::data_chunk(99, 5);
        let s1 = k.shard(16);
        let s2 = k.shard(16);
        assert_eq!(s1, s2);
        assert!(s1 < 16);
    }

    #[test]
    fn shards_spread_chunks() {
        // 256 chunks of one file should not all land on one of 16 shards.
        let mut seen = std::collections::HashSet::new();
        for c in 0..256 {
            seen.insert(ObjectKey::data_chunk(1, c).shard(16));
        }
        assert!(seen.len() > 8, "poor spread: {seen:?}");
    }
}
