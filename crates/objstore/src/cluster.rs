//! The sharded, replicated in-memory object cluster.

use crate::error::{OsError, OsResult};
use crate::fault::FaultPlan;
use crate::key::{KeyKind, ObjectKey};
use crate::profile::StoreProfile;
use crate::store::ObjectStore;
use arkfs_simkit::{BandwidthResource, ClusterSpec, Nanos, Port, SharedResource};
use arkfs_telemetry::{Counter, Registry, Telemetry, BATCH_TID, PID_STORE};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Construction parameters for an [`ObjectCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Storage nodes (shards). The paper's testbed has 16.
    pub shards: usize,
    /// Copies of every object (1 = no replication). Writes pay for every
    /// replica; reads hit the primary.
    pub replication: usize,
    /// Backend semantics and per-op service time.
    pub profile: StoreProfile,
    /// Cost-model constants (network/disk bandwidths).
    pub spec: ClusterSpec,
    /// When set, data-chunk payloads are not stored — only their length —
    /// so stress-scale benchmarks fit in memory. GETs of discarded
    /// payloads return zero bytes.
    pub discard_payload: bool,
    /// Erasure coding (k data + 1 XOR parity) instead of replication.
    /// `None` keeps full-copy replication.
    pub ec: Option<crate::ec::EcScheme>,
}

impl ClusterConfig {
    /// RADOS-profile cluster with the paper's spec. Table I lists 4 EBS
    /// disks per storage node and the paper deploys "Ceph RADOS on 64
    /// OSDs", so the shard count is 4× the node count.
    pub fn rados(spec: ClusterSpec) -> Self {
        ClusterConfig {
            shards: spec.storage_nodes * 4,
            replication: 2,
            profile: StoreProfile::rados(&spec),
            spec,
            discard_payload: false,
            ec: None,
        }
    }

    /// S3-profile cluster with the paper's spec. S3 is a massively
    /// partitioned service; model the same shard parallelism as RADOS.
    pub fn s3(spec: ClusterSpec) -> Self {
        ClusterConfig {
            shards: spec.storage_nodes * 4,
            replication: 2,
            profile: StoreProfile::s3(&spec),
            spec,
            discard_payload: false,
            ec: None,
        }
    }

    /// Small fast cluster for unit tests.
    pub fn test_tiny() -> Self {
        let spec = ClusterSpec::test_tiny();
        ClusterConfig {
            shards: 2,
            replication: 1,
            profile: StoreProfile::rados(&spec),
            spec,
            discard_payload: false,
            ec: None,
        }
    }

    pub fn with_discard_payload(mut self, on: bool) -> Self {
        self.discard_payload = on;
        self
    }

    pub fn with_replication(mut self, r: usize) -> Self {
        self.replication = r.max(1);
        self.ec = None;
        self
    }

    /// Store objects erasure-coded as `k` data + 1 parity fragments
    /// instead of replicating full copies.
    pub fn with_erasure_coding(mut self, k: usize) -> Self {
        self.ec = Some(crate::ec::EcScheme::new(k));
        self
    }
}

/// Stored payload: real bytes, a synthetic length, or one erasure-coded
/// fragment of an object.
#[derive(Debug, Clone)]
enum Payload {
    Real(Vec<u8>),
    Synthetic(u64),
    Fragment { total_len: u64, bytes: Vec<u8> },
}

impl Payload {
    /// Physical bytes stored on this shard.
    fn len(&self) -> u64 {
        match self {
            Payload::Real(v) => v.len() as u64,
            Payload::Synthetic(n) => *n,
            Payload::Fragment { bytes, .. } => bytes.len() as u64,
        }
    }

    /// Logical object size this payload describes.
    fn logical_len(&self) -> u64 {
        match self {
            Payload::Real(v) => v.len() as u64,
            Payload::Synthetic(n) => *n,
            Payload::Fragment { total_len, .. } => *total_len,
        }
    }
}

/// One storage node: its object map, op server, and disk.
struct Shard {
    objects: RwLock<HashMap<ObjectKey, Payload>>,
    op_server: SharedResource,
    disk: BandwidthResource,
}

/// Aggregate operation counters. These are handles into the cluster's
/// telemetry [`Registry`] (under `store.*` names), kept as named fields
/// so hot-path increments skip the registry map entirely.
#[derive(Debug)]
pub struct ClusterStats {
    pub gets: Arc<Counter>,
    pub puts: Arc<Counter>,
    pub deletes: Arc<Counter>,
    pub lists: Arc<Counter>,
    pub bytes_in: Arc<Counter>,
    pub bytes_out: Arc<Counter>,
    /// Batched multi-object calls (`get_each`/`get_many`, `put_many`,
    /// `get_range_many`, `put_range_many`, `delete_many`).
    pub batch_calls: Arc<Counter>,
    /// Total items carried by those batched calls.
    pub batch_items: Arc<Counter>,
}

impl ClusterStats {
    fn attached(reg: &Registry) -> Self {
        ClusterStats {
            gets: reg.counter("store.get.count"),
            puts: reg.counter("store.put.count"),
            deletes: reg.counter("store.delete.count"),
            lists: reg.counter("store.list.count"),
            bytes_in: reg.counter("store.write.bytes"),
            bytes_out: reg.counter("store.read.bytes"),
            batch_calls: reg.counter("store.batch.calls"),
            batch_items: reg.counter("store.batch.items"),
        }
    }

    fn count_batch(&self, items: usize) {
        self.batch_calls.inc();
        self.batch_items.add(items as u64);
    }
}

/// A sharded, replicated, in-memory object storage cluster charging
/// virtual-time costs to each caller's [`Port`].
pub struct ObjectCluster {
    config: ClusterConfig,
    shards: Vec<Shard>,
    /// Shared front network into the store (aggregate ingest/egress).
    net: BandwidthResource,
    pub faults: FaultPlan,
    pub stats: ClusterStats,
    telemetry: Arc<Telemetry>,
}

impl ObjectCluster {
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.shards > 0, "cluster needs at least one shard");
        assert!(config.replication >= 1 && config.replication <= config.shards);
        if let Some(ec) = config.ec {
            assert!(
                ec.width() <= config.shards,
                "erasure width exceeds shard count"
            );
        }
        let shards = (0..config.shards)
            .map(|_| Shard {
                objects: RwLock::new(HashMap::new()),
                op_server: SharedResource::ideal("osd-op"),
                disk: BandwidthResource::new("osd-disk", config.spec.disk_bw),
            })
            .collect();
        let net = BandwidthResource::new("store-net", config.spec.store_net_bw);
        let telemetry = Telemetry::new();
        let stats = ClusterStats::attached(&telemetry.registry);
        ObjectCluster {
            config,
            shards,
            net,
            faults: FaultPlan::new(),
            stats,
            telemetry,
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Total number of stored objects across all shards.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.objects.read().len()).sum()
    }

    /// Reset every timing resource (op servers, disks, front network) to
    /// idle without touching stored objects — lets tests and benchmarks
    /// measure an operation against a warm store on a cold timeline.
    pub fn reset_timelines(&self) {
        for shard in &self.shards {
            shard.op_server.reset();
            shard.disk.reset();
        }
        self.net.reset();
    }

    /// Total stored bytes (logical, including synthetic lengths).
    pub fn stored_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.objects.read().values().map(Payload::len).sum::<u64>())
            .sum()
    }

    /// Shards an object's copies or fragments live on.
    fn placement_shards(&self, key: &ObjectKey) -> Vec<usize> {
        let primary = key.shard(self.config.shards);
        let n = self.config.shards;
        let width = match self.config.ec {
            Some(ec) => ec.width(),
            None => self.config.replication,
        };
        (0..width).map(|i| (primary + i) % n).collect()
    }

    fn replica_shards(&self, key: &ObjectKey) -> impl Iterator<Item = usize> + '_ {
        self.placement_shards(key).into_iter()
    }

    fn primary(&self, key: &ObjectKey) -> &Shard {
        &self.shards[key.shard(self.config.shards)]
    }

    /// Read an object's logical contents, tolerating shard failures:
    /// replication fails over to the next copy; erasure coding
    /// reconstructs from any k of k+1 fragments. Returns (bytes — `None`
    /// for synthetic payloads —, logical length, per-shard bytes read).
    #[allow(clippy::type_complexity)]
    fn load_logical(&self, key: ObjectKey) -> OsResult<(Option<Vec<u8>>, u64, Vec<(usize, u64)>)> {
        if self.faults.is_lost(key) {
            return Err(OsError::NotFound);
        }
        let shards = self.placement_shards(&key);
        match self.config.ec {
            None => {
                for idx in shards {
                    if self.faults.is_shard_down(idx) {
                        continue;
                    }
                    match self.shards[idx].objects.read().get(&key) {
                        Some(Payload::Real(v)) => {
                            return Ok((
                                Some(v.clone()),
                                v.len() as u64,
                                vec![(idx, v.len() as u64)],
                            ));
                        }
                        Some(Payload::Synthetic(n)) => {
                            return Ok((None, *n, vec![(idx, *n)]));
                        }
                        Some(Payload::Fragment { .. }) => {
                            unreachable!("fragment stored without EC config")
                        }
                        None => {}
                    }
                }
                Err(OsError::NotFound)
            }
            Some(ec) => {
                let mut frags: Vec<Option<Vec<u8>>> = vec![None; ec.width()];
                let mut total_len = None;
                let mut synthetic = false;
                let mut sources = Vec::new();
                let mut present = 0usize;
                for (j, idx) in shards.into_iter().enumerate() {
                    if self.faults.is_shard_down(idx) {
                        continue;
                    }
                    match self.shards[idx].objects.read().get(&key) {
                        Some(Payload::Fragment {
                            total_len: t,
                            bytes,
                        }) => {
                            total_len = Some(*t);
                            sources.push((idx, bytes.len() as u64));
                            frags[j] = Some(bytes.clone());
                            present += 1;
                        }
                        Some(Payload::Synthetic(n)) => {
                            total_len = Some(*n);
                            synthetic = true;
                            sources.push((idx, n.div_ceil(ec.data as u64)));
                            present += 1;
                        }
                        Some(Payload::Real(_)) => {
                            unreachable!("full copy stored under EC config")
                        }
                        None => {}
                    }
                }
                let Some(total_len) = total_len else {
                    return Err(OsError::NotFound);
                };
                if synthetic {
                    return Ok((None, total_len, sources));
                }
                if present < ec.data {
                    return Err(OsError::InsufficientFragments);
                }
                let bytes = ec
                    .reconstruct(total_len as usize, frags)
                    .ok_or(OsError::InsufficientFragments)?;
                Ok((Some(bytes), total_len, sources))
            }
        }
    }

    /// Record a whole-batch span on the store's synthetic batch track.
    fn batch_span(&self, name: &'static str, start: Nanos, end: Nanos) {
        if self.telemetry.tracer.enabled() {
            self.telemetry
                .tracer
                .record(PID_STORE, BATCH_TID, name, "store", start, end);
        }
    }

    /// Virtual cost of reading from the given (shard, bytes) sources in
    /// parallel, all departing at `arrival`. Returns the completion time.
    fn charge_read_sources(&self, arrival: Nanos, sources: &[(usize, u64)]) -> Nanos {
        let mut done = arrival;
        let mut total = 0u64;
        let traced = self.telemetry.tracer.enabled();
        for &(idx, bytes) in sources {
            let shard = &self.shards[idx];
            let t1 = shard
                .op_server
                .reserve(arrival, self.config.profile.op_service)
                + self.config.profile.op_latency;
            let t2 = if bytes > 0 {
                shard.disk.transfer(t1, bytes)
            } else {
                t1
            };
            if traced {
                self.telemetry.tracer.record(
                    PID_STORE,
                    idx as u32,
                    "shard.read",
                    "store",
                    arrival,
                    t2,
                );
            }
            done = done.max(t2);
            total += bytes;
        }
        if total > 0 {
            done = self.net.transfer(done, total);
        }
        done + self.config.spec.net_half_rtt
    }

    /// Virtual cost of one write departing at `depart`: the network
    /// carries every copy/fragment, then copies/fragments land on their
    /// shards in parallel — completion is the max. Returns the completion
    /// time without advancing any port, so batched writes can overlap.
    fn charge_write_at(&self, depart: Nanos, key: &ObjectKey, bytes: u64) -> Nanos {
        let per_shard = match self.config.ec {
            Some(ec) if bytes > 0 => ec.stripe(bytes as usize) as u64,
            _ => bytes,
        };
        let wire_bytes = per_shard * self.placement_shards(key).len() as u64;
        let t1 = if bytes > 0 {
            self.net.transfer(depart, wire_bytes)
        } else {
            depart
        };
        let mut done = t1;
        let traced = self.telemetry.tracer.enabled();
        for idx in self.replica_shards(key) {
            let shard = &self.shards[idx];
            let t2 = shard.op_server.reserve(t1, self.config.profile.op_service)
                + self.config.profile.op_latency;
            let t3 = if per_shard > 0 {
                shard.disk.transfer(t2, per_shard)
            } else {
                t2
            };
            if traced {
                self.telemetry
                    .tracer
                    .record(PID_STORE, idx as u32, "shard.write", "store", t1, t3);
            }
            done = done.max(t3);
        }
        done
    }

    /// Charge the virtual cost of a write to every replica (full copy
    /// each) or fragment (1/k of the bytes each) and return the caller's
    /// completion time.
    fn charge_write(&self, port: &Port, key: &ObjectKey, bytes: u64) -> Nanos {
        let t0 = port.advance(self.config.spec.net_half_rtt);
        let done = self.charge_write_at(t0, key, bytes);
        port.wait_until(done + self.config.spec.net_half_rtt)
    }

    /// Charge the virtual cost of a read of `bytes` from the primary.
    fn charge_read(&self, port: &Port, key: &ObjectKey, bytes: u64) -> Nanos {
        let t0 = port.advance(self.config.spec.net_half_rtt);
        let shard = self.primary(key);
        let t1 = shard.op_server.reserve(t0, self.config.profile.op_service)
            + self.config.profile.op_latency;
        let t2 = if bytes > 0 {
            shard.disk.transfer(t1, bytes)
        } else {
            t1
        };
        let t3 = if bytes > 0 {
            self.net.transfer(t2, bytes)
        } else {
            t2
        };
        port.wait_until(t3 + self.config.spec.net_half_rtt)
    }

    /// Whether a ranged write to `key` can be applied in place (vs the
    /// whole-object read-modify-write the S3 profile and erasure-coded
    /// objects require).
    fn supports_range_write(&self, key: &ObjectKey) -> bool {
        let discard_data = self.config.discard_payload && key.kind == KeyKind::Data;
        self.config.profile.partial_writes && (self.config.ec.is_none() || discard_data)
    }

    /// Apply a ranged write to every replica's in-memory object (discard
    /// mode only tracks the resulting length).
    fn apply_range_write(&self, key: ObjectKey, offset: u64, data: &Bytes) {
        if self.config.discard_payload && key.kind == KeyKind::Data {
            let new_len = offset + data.len() as u64;
            for idx in self.replica_shards(&key) {
                let mut map = self.shards[idx].objects.write();
                let entry = map.entry(key).or_insert(Payload::Synthetic(0));
                let len = entry.len().max(new_len);
                *entry = Payload::Synthetic(len);
            }
            return;
        }
        for idx in self.replica_shards(&key) {
            let mut map = self.shards[idx].objects.write();
            let entry = map.entry(key).or_insert_with(|| Payload::Real(Vec::new()));
            let v = match entry {
                Payload::Real(v) => v,
                Payload::Synthetic(n) => {
                    *entry = Payload::Real(vec![0u8; *n as usize]);
                    match entry {
                        Payload::Real(v) => v,
                        _ => unreachable!(),
                    }
                }
                // Ranged writes on EC objects are rejected by the callers.
                Payload::Fragment { .. } => unreachable!("fragment without EC config"),
            };
            let end = offset as usize + data.len();
            if v.len() < end {
                v.resize(end, 0);
            }
            v[offset as usize..end].copy_from_slice(data);
        }
    }

    /// Store an object: full copies under replication, fragments under
    /// erasure coding, synthetic lengths in discard mode.
    fn store_object(&self, key: ObjectKey, data: Bytes) {
        if self.config.discard_payload && key.kind == KeyKind::Data {
            let payload = Payload::Synthetic(data.len() as u64);
            for idx in self.replica_shards(&key) {
                self.shards[idx]
                    .objects
                    .write()
                    .insert(key, payload.clone());
            }
            return;
        }
        match self.config.ec {
            None => {
                let payload = Payload::Real(data.to_vec());
                for idx in self.replica_shards(&key) {
                    self.shards[idx]
                        .objects
                        .write()
                        .insert(key, payload.clone());
                }
            }
            Some(ec) => {
                let total_len = data.len() as u64;
                let frags = ec.encode(&data);
                for (idx, bytes) in self.placement_shards(&key).into_iter().zip(frags) {
                    self.shards[idx]
                        .objects
                        .write()
                        .insert(key, Payload::Fragment { total_len, bytes });
                }
            }
        }
    }
}

impl ObjectStore for ObjectCluster {
    fn profile(&self) -> &StoreProfile {
        &self.config.profile
    }

    fn usage(&self) -> (u64, u64) {
        (self.object_count() as u64, self.stored_bytes())
    }

    fn batch_stats(&self) -> (u64, u64) {
        (self.stats.batch_calls.get(), self.stats.batch_items.get())
    }

    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        Some(&self.telemetry)
    }

    fn put(&self, port: &Port, key: ObjectKey, data: Bytes) -> OsResult<()> {
        self.faults.check_put(key)?;
        self.stats.puts.inc();
        self.stats.bytes_in.add(data.len() as u64);
        self.charge_write(port, &key, data.len() as u64);
        self.store_object(key, data);
        Ok(())
    }

    fn get(&self, port: &Port, key: ObjectKey) -> OsResult<Bytes> {
        self.stats.gets.inc();
        let (bytes, total_len, sources) = self.load_logical(key)?;
        self.stats.bytes_out.add(total_len);
        let arrival = port.advance(self.config.spec.net_half_rtt);
        let done = self.charge_read_sources(arrival, &sources);
        port.wait_until(done);
        Ok(match bytes {
            Some(v) => Bytes::from(v),
            None => Bytes::from(vec![0u8; total_len as usize]),
        })
    }

    fn get_range(&self, port: &Port, key: ObjectKey, offset: u64, len: usize) -> OsResult<Bytes> {
        if !self.config.profile.ranged_reads {
            return Err(OsError::Unsupported("ranged read"));
        }
        self.stats.gets.inc();
        if self.faults.is_lost(key) {
            return Err(OsError::NotFound);
        }
        // Under erasure coding the whole object is assembled (fragments
        // are striped, so a range still touches every data fragment);
        // under replication only the requested range moves.
        let (bytes, total_len, sources) = self.load_logical(key)?;
        let start = offset.min(total_len);
        let end = offset.saturating_add(len as u64).min(total_len);
        let slice = match bytes {
            Some(v) => Bytes::copy_from_slice(&v[start as usize..end as usize]),
            None => Bytes::from(vec![0u8; (end - start) as usize]),
        };
        self.stats.bytes_out.add(slice.len() as u64);
        let arrival = port.advance(self.config.spec.net_half_rtt);
        let sources: Vec<(usize, u64)> = if self.config.ec.is_some() {
            sources
        } else {
            sources
                .into_iter()
                .map(|(idx, _)| (idx, slice.len() as u64))
                .collect()
        };
        let done = self.charge_read_sources(arrival, &sources);
        port.wait_until(done);
        Ok(slice)
    }

    fn put_range(&self, port: &Port, key: ObjectKey, offset: u64, data: Bytes) -> OsResult<()> {
        if !self.config.profile.partial_writes {
            return Err(OsError::Unsupported("ranged write"));
        }
        if self.config.ec.is_some() && !(self.config.discard_payload && key.kind == KeyKind::Data) {
            // Erasure-coded objects take full-stripe writes only; callers
            // fall back to read-modify-write of the whole object.
            return Err(OsError::Unsupported(
                "partial write on erasure-coded object",
            ));
        }
        self.faults.check_put(key)?;
        self.stats.puts.inc();
        self.stats.bytes_in.add(data.len() as u64);
        self.charge_write(port, &key, data.len() as u64);
        // Apply to all replicas under their own shard locks.
        self.apply_range_write(key, offset, &data);
        Ok(())
    }

    fn delete(&self, port: &Port, key: ObjectKey) -> OsResult<()> {
        self.stats.deletes.inc();
        self.charge_write(port, &key, 0);
        let mut found = false;
        for idx in self.replica_shards(&key) {
            found |= self.shards[idx].objects.write().remove(&key).is_some();
        }
        if found {
            Ok(())
        } else {
            Err(OsError::NotFound)
        }
    }

    fn head(&self, port: &Port, key: ObjectKey) -> OsResult<u64> {
        if self.faults.is_lost(key) {
            return Err(OsError::NotFound);
        }
        self.charge_read(port, &key, 0);
        // Any reachable copy/fragment knows the logical size.
        for idx in self.placement_shards(&key) {
            if self.faults.is_shard_down(idx) {
                continue;
            }
            if let Some(p) = self.shards[idx].objects.read().get(&key) {
                return Ok(p.logical_len());
            }
        }
        Err(OsError::NotFound)
    }

    fn get_many(&self, port: &Port, keys: &[ObjectKey]) -> Vec<OsResult<Bytes>> {
        if keys.is_empty() {
            return Vec::new();
        }
        // Pipelined: all requests depart at the same arrival time; the
        // caller's port waits for the slowest completion.
        let t0 = port.advance(self.config.spec.net_half_rtt);
        let results = self.get_each(t0, keys);
        let mut done = t0;
        let out = results
            .into_iter()
            .map(|r| {
                r.map(|(bytes, completion)| {
                    done = done.max(completion);
                    bytes
                })
            })
            .collect();
        self.batch_span("store.get_many", t0, done);
        port.wait_until(done);
        out
    }

    fn get_each(&self, arrival: u64, keys: &[ObjectKey]) -> Vec<OsResult<(Bytes, u64)>> {
        self.stats.count_batch(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        for &key in keys {
            self.stats.gets.inc();
            let (bytes, total_len, sources) = match self.load_logical(key) {
                Ok(v) => v,
                Err(e) => {
                    out.push(Err(e));
                    continue;
                }
            };
            self.stats.bytes_out.add(total_len);
            let completion = self.charge_read_sources(arrival, &sources);
            out.push(Ok((
                match bytes {
                    Some(v) => Bytes::from(v),
                    None => Bytes::from(vec![0u8; total_len as usize]),
                },
                completion,
            )));
        }
        out
    }

    fn put_many(&self, port: &Port, items: Vec<(ObjectKey, Bytes)>) -> Vec<OsResult<()>> {
        if items.is_empty() {
            return Vec::new();
        }
        self.stats.count_batch(items.len());
        let t0 = port.advance(self.config.spec.net_half_rtt);
        let mut done = t0;
        let mut out = Vec::with_capacity(items.len());
        for (key, data) in items {
            if let Err(e) = self.faults.check_put(key) {
                out.push(Err(e));
                continue;
            }
            self.stats.puts.inc();
            self.stats.bytes_in.add(data.len() as u64);
            done = done.max(self.charge_write_at(t0, &key, data.len() as u64));
            self.store_object(key, data);
            out.push(Ok(()));
        }
        self.batch_span("store.put_many", t0, done);
        port.wait_until(done + self.config.spec.net_half_rtt);
        out
    }

    fn get_range_many(
        &self,
        port: &Port,
        reqs: &[(ObjectKey, u64, usize)],
    ) -> Vec<OsResult<Bytes>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        if !self.config.profile.ranged_reads {
            return reqs
                .iter()
                .map(|_| Err(OsError::Unsupported("ranged read")))
                .collect();
        }
        self.stats.count_batch(reqs.len());
        // All requests depart together; the caller waits for the slowest.
        let t0 = port.advance(self.config.spec.net_half_rtt);
        let mut done = t0;
        let out = reqs
            .iter()
            .map(|&(key, offset, len)| {
                self.stats.gets.inc();
                if self.faults.is_lost(key) {
                    return Err(OsError::NotFound);
                }
                let (bytes, total_len, sources) = self.load_logical(key)?;
                let start = offset.min(total_len);
                let end = offset.saturating_add(len as u64).min(total_len);
                let slice = match bytes {
                    Some(v) => Bytes::copy_from_slice(&v[start as usize..end as usize]),
                    None => Bytes::from(vec![0u8; (end - start) as usize]),
                };
                self.stats.bytes_out.add(slice.len() as u64);
                // Replication moves only the requested range; EC assembles
                // whole fragments (same rule as get_range).
                let sources: Vec<(usize, u64)> = if self.config.ec.is_some() {
                    sources
                } else {
                    sources
                        .into_iter()
                        .map(|(idx, _)| (idx, slice.len() as u64))
                        .collect()
                };
                done = done.max(self.charge_read_sources(t0, &sources));
                Ok(slice)
            })
            .collect();
        self.batch_span("store.get_range_many", t0, done);
        port.wait_until(done);
        out
    }

    fn put_range_many(
        &self,
        port: &Port,
        items: Vec<(ObjectKey, u64, Bytes)>,
    ) -> Vec<OsResult<()>> {
        if items.is_empty() {
            return Vec::new();
        }
        self.stats.count_batch(items.len());
        let t0 = port.advance(self.config.spec.net_half_rtt);
        let mut done = t0;
        let mut out = Vec::with_capacity(items.len());
        for (key, offset, data) in items {
            if let Err(e) = self.faults.check_put(key) {
                out.push(Err(e));
                continue;
            }
            if self.supports_range_write(&key) {
                self.stats.puts.inc();
                self.stats.bytes_in.add(data.len() as u64);
                done = done.max(self.charge_write_at(t0, &key, data.len() as u64));
                self.apply_range_write(key, offset, &data);
                out.push(Ok(()));
                continue;
            }
            // Whole-object read-modify-write: the read departs with the
            // batch; the rewrite departs at that item's read completion.
            // Items still overlap each other.
            self.stats.gets.inc();
            let (bytes, total_len, sources) = match self.load_logical(key) {
                Ok(v) => v,
                Err(OsError::NotFound) => (Some(Vec::new()), 0, Vec::new()),
                Err(e) => {
                    out.push(Err(e));
                    continue;
                }
            };
            self.stats.bytes_out.add(total_len);
            let t_read = if sources.is_empty() {
                t0
            } else {
                self.charge_read_sources(t0, &sources)
            };
            let mut whole = bytes.unwrap_or_else(|| vec![0u8; total_len as usize]);
            let end = offset as usize + data.len();
            if whole.len() < end {
                whole.resize(end, 0);
            }
            whole[offset as usize..end].copy_from_slice(&data);
            self.stats.puts.inc();
            self.stats.bytes_in.add(whole.len() as u64);
            done = done.max(self.charge_write_at(t_read, &key, whole.len() as u64));
            self.store_object(key, Bytes::from(whole));
            out.push(Ok(()));
        }
        self.batch_span("store.put_range_many", t0, done);
        port.wait_until(done + self.config.spec.net_half_rtt);
        out
    }

    fn delete_many(&self, port: &Port, keys: &[ObjectKey]) -> Vec<OsResult<()>> {
        if keys.is_empty() {
            return Vec::new();
        }
        self.stats.count_batch(keys.len());
        let t0 = port.advance(self.config.spec.net_half_rtt);
        let mut done = t0;
        let out = keys
            .iter()
            .map(|&key| {
                self.stats.deletes.inc();
                done = done.max(self.charge_write_at(t0, &key, 0));
                let mut found = false;
                for idx in self.replica_shards(&key) {
                    found |= self.shards[idx].objects.write().remove(&key).is_some();
                }
                if found {
                    Ok(())
                } else {
                    Err(OsError::NotFound)
                }
            })
            .collect();
        self.batch_span("store.delete_many", t0, done);
        port.wait_until(done + self.config.spec.net_half_rtt);
        out
    }

    fn list(
        &self,
        port: &Port,
        kind: Option<KeyKind>,
        ino: Option<u128>,
    ) -> OsResult<Vec<ObjectKey>> {
        self.stats.lists.inc();
        self.charge_read(port, &ObjectKey::inode(ino.unwrap_or(0)), 0);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for shard in &self.shards {
            for key in shard.objects.read().keys() {
                if kind.is_some_and(|k| k != key.kind) {
                    continue;
                }
                if ino.is_some_and(|i| i != key.ino) {
                    continue;
                }
                if seen.insert(*key) {
                    out.push(*key);
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ObjectCluster {
        ObjectCluster::new(ClusterConfig::test_tiny())
    }

    #[test]
    fn put_get_roundtrip() {
        let c = cluster();
        let port = Port::new();
        let key = ObjectKey::data_chunk(1, 0);
        c.put(&port, key, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(c.get(&port, key).unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(c.head(&port, key).unwrap(), 5);
        assert!(port.now() > 0, "virtual time must advance");
    }

    #[test]
    fn get_missing_is_not_found() {
        let c = cluster();
        let port = Port::new();
        assert_eq!(c.get(&port, ObjectKey::inode(9)), Err(OsError::NotFound));
        assert_eq!(c.head(&port, ObjectKey::inode(9)), Err(OsError::NotFound));
        assert_eq!(c.delete(&port, ObjectKey::inode(9)), Err(OsError::NotFound));
    }

    #[test]
    fn ranged_reads() {
        let c = cluster();
        let port = Port::new();
        let key = ObjectKey::data_chunk(1, 0);
        c.put(&port, key, Bytes::from_static(b"0123456789"))
            .unwrap();
        assert_eq!(
            c.get_range(&port, key, 2, 3).unwrap(),
            Bytes::from_static(b"234")
        );
        // past-EOF truncates / empties
        assert_eq!(
            c.get_range(&port, key, 8, 10).unwrap(),
            Bytes::from_static(b"89")
        );
        assert_eq!(c.get_range(&port, key, 20, 5).unwrap(), Bytes::new());
    }

    #[test]
    fn ranged_write_extends_with_zero_fill() {
        let c = cluster();
        let port = Port::new();
        let key = ObjectKey::data_chunk(2, 0);
        c.put_range(&port, key, 4, Bytes::from_static(b"abcd"))
            .unwrap();
        let data = c.get(&port, key).unwrap();
        assert_eq!(&data[..], b"\0\0\0\0abcd");
        c.put_range(&port, key, 0, Bytes::from_static(b"XY"))
            .unwrap();
        assert_eq!(&c.get(&port, key).unwrap()[..], b"XY\0\0abcd");
    }

    #[test]
    fn s3_profile_rejects_ranged_write() {
        let mut cfg = ClusterConfig::test_tiny();
        cfg.profile = StoreProfile::s3(&cfg.spec);
        let c = ObjectCluster::new(cfg);
        let port = Port::new();
        let key = ObjectKey::data_chunk(1, 0);
        assert_eq!(
            c.put_range(&port, key, 0, Bytes::from_static(b"x")),
            Err(OsError::Unsupported("ranged write"))
        );
        // whole-object put still works
        c.put(&port, key, Bytes::from_static(b"x")).unwrap();
    }

    #[test]
    fn replication_survives_primary_loss() {
        let cfg = ClusterConfig::test_tiny().with_replication(2);
        let c = ObjectCluster::new(cfg);
        let port = Port::new();
        let key = ObjectKey::inode(77);
        c.put(&port, key, Bytes::from_static(b"meta")).unwrap();
        // Both shards hold a copy.
        let copies: usize = c
            .shards
            .iter()
            .map(|s| s.objects.read().contains_key(&key) as usize)
            .sum();
        assert_eq!(copies, 2);
        // Delete removes all copies.
        c.delete(&port, key).unwrap();
        assert_eq!(c.object_count(), 0);
    }

    #[test]
    fn list_filters_by_kind_and_ino() {
        let c = cluster();
        let port = Port::new();
        c.put(&port, ObjectKey::inode(1), Bytes::new()).unwrap();
        c.put(&port, ObjectKey::journal(1, 0), Bytes::new())
            .unwrap();
        c.put(&port, ObjectKey::journal(1, 1), Bytes::new())
            .unwrap();
        c.put(&port, ObjectKey::journal(2, 0), Bytes::new())
            .unwrap();
        let j1 = c.list(&port, Some(KeyKind::Journal), Some(1)).unwrap();
        assert_eq!(j1, vec![ObjectKey::journal(1, 0), ObjectKey::journal(1, 1)]);
        let all_j = c.list(&port, Some(KeyKind::Journal), None).unwrap();
        assert_eq!(all_j.len(), 3);
        let ino1 = c.list(&port, None, Some(1)).unwrap();
        assert_eq!(ino1.len(), 3);
    }

    #[test]
    fn discard_payload_stores_length_only() {
        let cfg = ClusterConfig::test_tiny().with_discard_payload(true);
        let c = ObjectCluster::new(cfg);
        let port = Port::new();
        let key = ObjectKey::data_chunk(1, 0);
        c.put(&port, key, Bytes::from(vec![7u8; 1000])).unwrap();
        assert_eq!(c.head(&port, key).unwrap(), 1000);
        // Contents are zeroed, but length is preserved.
        let data = c.get(&port, key).unwrap();
        assert_eq!(data.len(), 1000);
        assert!(data.iter().all(|&b| b == 0));
        // Metadata objects keep real payloads even in discard mode.
        let meta = ObjectKey::inode(1);
        c.put(&port, meta, Bytes::from_static(b"real")).unwrap();
        assert_eq!(c.get(&port, meta).unwrap(), Bytes::from_static(b"real"));
        // Ranged writes extend the synthetic length.
        c.put_range(&port, key, 2000, Bytes::from(vec![1u8; 50]))
            .unwrap();
        assert_eq!(c.head(&port, key).unwrap(), 2050);
    }

    #[test]
    fn injected_put_failure_surfaces() {
        let c = cluster();
        let port = Port::new();
        c.faults.fail_next_puts(1, None);
        let key = ObjectKey::inode(5);
        assert!(matches!(
            c.put(&port, key, Bytes::new()),
            Err(OsError::Injected(_))
        ));
        assert!(c.put(&port, key, Bytes::new()).is_ok());
    }

    #[test]
    fn lost_object_injection() {
        let c = cluster();
        let port = Port::new();
        let key = ObjectKey::data_chunk(4, 1);
        c.put(&port, key, Bytes::from_static(b"x")).unwrap();
        c.faults.lose_object(key);
        assert_eq!(c.get(&port, key), Err(OsError::NotFound));
        assert_eq!(c.head(&port, key), Err(OsError::NotFound));
        c.faults.clear();
        assert!(c.get(&port, key).is_ok());
    }

    #[test]
    fn virtual_cost_scales_with_bytes() {
        let c = ObjectCluster::new(ClusterConfig::rados(ClusterSpec::aws_paper()));
        let small = Port::new();
        let big = Port::new();
        c.put(
            &small,
            ObjectKey::data_chunk(1, 0),
            Bytes::from(vec![0u8; 1024]),
        )
        .unwrap();
        c.put(
            &big,
            ObjectKey::data_chunk(1, 1),
            Bytes::from(vec![0u8; 64 * 1024 * 1024]),
        )
        .unwrap();
        assert!(big.now() > small.now());
    }

    #[test]
    fn stats_are_tracked() {
        let c = cluster();
        let port = Port::new();
        let key = ObjectKey::data_chunk(1, 0);
        c.put(&port, key, Bytes::from_static(b"abc")).unwrap();
        c.get(&port, key).unwrap();
        c.list(&port, None, None).unwrap();
        c.delete(&port, key).unwrap();
        assert_eq!(c.stats.puts.get(), 1);
        assert_eq!(c.stats.gets.get(), 1);
        assert_eq!(c.stats.deletes.get(), 1);
        assert_eq!(c.stats.lists.get(), 1);
        assert_eq!(c.stats.bytes_in.get(), 3);
        assert_eq!(c.stats.bytes_out.get(), 3);
    }

    #[test]
    fn get_many_is_pipelined_not_serial() {
        // Two identical clusters so one measurement's resource timelines
        // don't queue the other.
        let keys: Vec<ObjectKey> = (0..8).map(|i| ObjectKey::data_chunk(1, i)).collect();
        let mk = || {
            let c = ObjectCluster::new(ClusterConfig::rados(ClusterSpec::aws_paper()));
            let setup = Port::new();
            for &k in &keys {
                c.put(&setup, k, Bytes::from(vec![0u8; 1024])).unwrap();
            }
            for shard in &c.shards {
                shard.op_server.reset();
                shard.disk.reset();
            }
            c.net.reset();
            c
        };
        // Sequential baseline.
        let c_seq = mk();
        let seq = Port::new();
        for &k in &keys {
            c_seq.get(&seq, k).unwrap();
        }
        // Pipelined.
        let c_pipe = mk();
        let pipe = Port::new();
        let results = c_pipe.get_many(&pipe, &keys);
        assert!(results.iter().all(Result::is_ok));
        assert!(pipe.now() < seq.now(), "pipelined must beat sequential");
        // Missing keys report NotFound without failing the batch.
        let r = c_pipe.get_many(&pipe, &[ObjectKey::data_chunk(9, 9)]);
        assert_eq!(r[0], Err(OsError::NotFound));
    }

    #[test]
    fn put_many_stores_all() {
        let c = cluster();
        let port = Port::new();
        let items: Vec<(ObjectKey, Bytes)> = (0..5)
            .map(|i| (ObjectKey::data_chunk(2, i), Bytes::from(vec![i as u8; 10])))
            .collect();
        let results = c.put_many(&port, items);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(c.object_count(), 5);
        assert_eq!(c.get(&port, ObjectKey::data_chunk(2, 3)).unwrap()[0], 3);
    }

    #[test]
    fn erasure_coded_roundtrip_and_reconstruction() {
        let spec = ClusterSpec::test_tiny();
        let cfg = ClusterConfig {
            shards: 6,
            replication: 1,
            profile: StoreProfile::rados(&spec),
            spec,
            discard_payload: false,
            ec: None,
        }
        .with_erasure_coding(4);
        let c = ObjectCluster::new(cfg);
        let port = Port::new();
        let key = ObjectKey::data_chunk(1, 0);
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        c.put(&port, key, Bytes::from(data.clone())).unwrap();
        // 5 fragments stored, each ~250 B — not 5 full copies.
        assert_eq!(c.object_count(), 5);
        assert!(c.stored_bytes() < 1500, "stored {} bytes", c.stored_bytes());
        assert_eq!(c.get(&port, key).unwrap(), Bytes::from(data.clone()));
        assert_eq!(c.head(&port, key).unwrap(), 1000);
        // Ranged read assembles correctly.
        assert_eq!(
            &c.get_range(&port, key, 300, 10).unwrap()[..],
            &data[300..310]
        );

        // Any single shard failure reconstructs.
        let primary = key.shard(6);
        c.faults.fail_shard(primary);
        assert_eq!(c.get(&port, key).unwrap(), Bytes::from(data.clone()));
        assert_eq!(c.head(&port, key).unwrap(), 1000);
        // A second failed shard in the placement breaks reconstruction.
        c.faults.fail_shard((primary + 1) % 6);
        assert_eq!(c.get(&port, key), Err(OsError::InsufficientFragments));
        c.faults.clear();
        assert!(c.get(&port, key).is_ok());
        // Partial writes are full-stripe only.
        assert_eq!(
            c.put_range(&port, key, 0, Bytes::from_static(b"x")),
            Err(OsError::Unsupported(
                "partial write on erasure-coded object"
            ))
        );
        // Delete removes every fragment.
        c.delete(&port, key).unwrap();
        assert_eq!(c.object_count(), 0);
    }

    #[test]
    fn replication_fails_over_on_shard_down() {
        let cfg = ClusterConfig::test_tiny().with_replication(2);
        let c = ObjectCluster::new(cfg);
        let port = Port::new();
        let key = ObjectKey::inode(7);
        c.put(&port, key, Bytes::from_static(b"meta")).unwrap();
        let primary = key.shard(2);
        c.faults.fail_shard(primary);
        assert_eq!(c.get(&port, key).unwrap(), Bytes::from_static(b"meta"));
        assert_eq!(c.head(&port, key).unwrap(), 4);
        // Both copies down: gone.
        c.faults.fail_shard((primary + 1) % 2);
        assert_eq!(c.get(&port, key), Err(OsError::NotFound));
        c.faults.restore_shard(primary);
        assert!(c.get(&port, key).is_ok());
    }

    #[test]
    fn ec_write_costs_less_than_replication() {
        // Writing 1 MB with 4+1 EC moves 1.25 MB; with 2x replication it
        // moves 2 MB — EC completion must be cheaper on a fresh cluster.
        let spec = ClusterSpec::aws_paper();
        let data = Bytes::from(vec![7u8; 1024 * 1024]);
        let ec_cluster =
            ObjectCluster::new(ClusterConfig::rados(spec.clone()).with_erasure_coding(4));
        let rep_cluster = ObjectCluster::new(ClusterConfig::rados(spec));
        let ec_port = Port::new();
        let rep_port = Port::new();
        ec_cluster
            .put(&ec_port, ObjectKey::data_chunk(1, 0), data.clone())
            .unwrap();
        rep_cluster
            .put(&rep_port, ObjectKey::data_chunk(1, 0), data)
            .unwrap();
        assert!(
            ec_port.now() < rep_port.now(),
            "EC {} vs replication {}",
            ec_port.now(),
            rep_port.now()
        );
    }

    #[test]
    fn get_range_many_is_pipelined_not_serial() {
        let reqs: Vec<(ObjectKey, u64, usize)> = (0..8)
            .map(|i| (ObjectKey::data_chunk(1, i), 128, 512))
            .collect();
        let mk = || {
            let c = ObjectCluster::new(ClusterConfig::rados(ClusterSpec::aws_paper()));
            let setup = Port::new();
            for &(k, ..) in &reqs {
                c.put(&setup, k, Bytes::from(vec![9u8; 1024])).unwrap();
            }
            for shard in &c.shards {
                shard.op_server.reset();
                shard.disk.reset();
            }
            c.net.reset();
            c
        };
        let c_seq = mk();
        let seq = Port::new();
        for &(k, off, len) in &reqs {
            c_seq.get_range(&seq, k, off, len).unwrap();
        }
        let c_pipe = mk();
        let pipe = Port::new();
        let results = c_pipe.get_range_many(&pipe, &reqs);
        for r in &results {
            assert_eq!(r.as_ref().unwrap().len(), 512);
        }
        assert!(pipe.now() < seq.now(), "pipelined must beat sequential");
        // Missing keys report NotFound without failing the batch.
        let r = c_pipe.get_range_many(&pipe, &[(ObjectKey::data_chunk(9, 9), 0, 4)]);
        assert_eq!(r[0], Err(OsError::NotFound));
    }

    #[test]
    fn put_range_many_is_pipelined_not_serial() {
        let items: Vec<(ObjectKey, u64, Bytes)> = (0..8)
            .map(|i| {
                (
                    ObjectKey::data_chunk(3, i),
                    256,
                    Bytes::from(vec![i as u8; 512]),
                )
            })
            .collect();
        let mk = || ObjectCluster::new(ClusterConfig::rados(ClusterSpec::aws_paper()));
        let c_seq = mk();
        let seq = Port::new();
        for (k, off, d) in items.clone() {
            c_seq.put_range(&seq, k, off, d).unwrap();
        }
        let c_pipe = mk();
        let pipe = Port::new();
        let results = c_pipe.put_range_many(&pipe, items);
        assert!(results.iter().all(Result::is_ok));
        assert!(pipe.now() < seq.now(), "pipelined must beat sequential");
        // Both clusters end up with identical contents.
        let p = Port::new();
        for i in 0..8 {
            let k = ObjectKey::data_chunk(3, i);
            assert_eq!(c_pipe.get(&p, k).unwrap(), c_seq.get(&p, k).unwrap());
        }
    }

    #[test]
    fn put_range_many_s3_degrades_to_whole_object_rmw() {
        let mut cfg = ClusterConfig::test_tiny();
        cfg.profile = StoreProfile::s3(&cfg.spec);
        let c = ObjectCluster::new(cfg);
        let port = Port::new();
        let key = ObjectKey::data_chunk(1, 0);
        c.put(&port, key, Bytes::from_static(b"0123456789"))
            .unwrap();
        let fresh = ObjectKey::data_chunk(1, 1);
        // put_range would be Unsupported here; put_range_many must succeed
        // by rewriting the whole object (and creating missing ones).
        let results = c.put_range_many(
            &port,
            vec![
                (key, 2, Bytes::from_static(b"AB")),
                (fresh, 4, Bytes::from_static(b"xy")),
            ],
        );
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(&c.get(&port, key).unwrap()[..], b"01AB456789");
        assert_eq!(&c.get(&port, fresh).unwrap()[..], b"\0\0\0\0xy");
    }

    #[test]
    fn delete_many_removes_all_and_reports_missing() {
        let c = cluster();
        let port = Port::new();
        let keys: Vec<ObjectKey> = (0..4).map(|i| ObjectKey::data_chunk(5, i)).collect();
        for &k in &keys {
            c.put(&port, k, Bytes::from_static(b"z")).unwrap();
        }
        let mut with_missing = keys.clone();
        with_missing.push(ObjectKey::data_chunk(5, 99));
        let results = c.delete_many(&port, &with_missing);
        assert!(results[..4].iter().all(Result::is_ok));
        assert_eq!(results[4], Err(OsError::NotFound));
        assert_eq!(c.object_count(), 0);
    }

    #[test]
    fn batch_stats_count_calls_and_items() {
        let c = cluster();
        let port = Port::new();
        let keys: Vec<ObjectKey> = (0..3).map(|i| ObjectKey::data_chunk(6, i)).collect();
        let items: Vec<(ObjectKey, Bytes)> = keys
            .iter()
            .map(|&k| (k, Bytes::from_static(b"q")))
            .collect();
        c.put_many(&port, items);
        c.get_many(&port, &keys);
        c.get_range_many(&port, &[(keys[0], 0, 1)]);
        c.put_range_many(&port, vec![(keys[0], 0, Bytes::from_static(b"r"))]);
        c.delete_many(&port, &keys);
        assert_eq!(c.stats.batch_calls.get(), 5);
        assert_eq!(c.stats.batch_items.get(), 3 + 3 + 1 + 1 + 3);
    }

    #[test]
    fn concurrent_clients_see_consistent_store() {
        use std::sync::Arc;
        let c = Arc::new(cluster());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let port = Port::new();
                    for j in 0..50u64 {
                        let key = ObjectKey::data_chunk(i as u128 + 1, j);
                        c.put(&port, key, Bytes::from(vec![i as u8; 16])).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.object_count(), 8 * 50);
    }
}
