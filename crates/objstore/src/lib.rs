//! Distributed object storage substrate.
//!
//! ArkFS runs on top of "any distributed object storage system such as
//! Ceph RADOS or an S3-compatible system" (§I). This crate provides that
//! substrate: a sharded, replicated, in-memory object cluster behind a
//! REST-shaped [`ObjectStore`] trait, with two semantic *profiles*:
//!
//! * [`StoreProfile::rados`] — low per-op service time, supports partial
//!   (ranged) writes and appends, like Ceph RADOS.
//! * [`StoreProfile::s3`] — HTTP-scale per-op service time, whole-object
//!   PUT only (a ranged write returns `Unsupported` and the caller must
//!   read-modify-write), like Amazon S3. Ranged GET is allowed, as on S3.
//!
//! Virtual-time costs (network, op service, disk bandwidth) are charged to
//! the caller's [`arkfs_simkit::Port`]; functional behaviour is real.

pub mod cluster;
pub mod ec;
pub mod error;
pub mod fault;
pub mod key;
pub mod profile;
pub mod rest;
pub mod store;

pub use cluster::{ClusterConfig, ObjectCluster};
pub use ec::EcScheme;
pub use error::{OsError, OsResult};
pub use fault::FaultPlan;
pub use key::{KeyKind, ObjectKey};
pub use profile::StoreProfile;
pub use rest::{RestRequest, RestResponse};
pub use store::ObjectStore;
