//! Behavioural simulators of the file systems the paper compares against
//! (§IV-A): CephFS with FUSE or kernel mounts and 1..N metadata servers,
//! MarFS's interactive FUSE interface over two GPFS metadata nodes, and
//! the S3-backed S3FS and goofys.
//!
//! Each baseline implements [`arkfs_vfs::Vfs`] over the same
//! [`arkfs_objstore::ObjectCluster`] as ArkFS, with the architecture-level
//! behaviour the paper attributes its numbers to:
//!
//! * **CephFS** — every metadata operation crosses the network to a
//!   centralized MDS whose service degrades under concurrency (Fig. 1);
//!   multiple MDSs partition the namespace dynamically, adding forwarded
//!   requests and migration overhead (§IV-B); the FUSE mount adds
//!   user↔kernel costs and a serialized LOOKUP lock; data I/O goes
//!   straight to the object store through a page-cache-like write-back
//!   cache with 8 MB (kernel) or 128 KB (FUSE) read-ahead.
//! * **MarFS** — interactive FUSE interface, two dedicated metadata
//!   nodes, no metadata caching; small-file READ returns errors, exactly
//!   as observed in §IV-B.
//! * **S3FS** — object key is the full path (renames rewrite objects), a
//!   slow local *disk cache* stages all data (§IV-B: "this slow disk
//!   cache causes a substantial performance gap"), permission checks are
//!   not enforced.
//! * **goofys** — S3-backed, sequential-read optimized with a 400 MB
//!   read-ahead window, streaming writes, weak POSIX.

pub mod cephfs;
pub mod datapath;
pub mod goofys;
pub mod marfs;
pub mod mds;
pub mod ns;
pub mod pathfs;
pub mod s3fs;

pub use cephfs::{CephClient, CephFs, MountType};
pub use goofys::GoofysFs;
pub use marfs::MarFs;
pub use mds::MdsCluster;
pub use s3fs::S3Fs;
