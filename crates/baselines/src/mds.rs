//! Metadata server cluster cost model.
//!
//! A centralized MDS serves one metadata operation at a time; its
//! effective service time inflates with the number of requests in flight
//! (lock contention, cache thrash), which is what makes Figure 1's
//! throughput *collapse* rather than merely saturate. With multiple
//! MDSs, CephFS partitions the namespace dynamically: a fraction of
//! requests are forwarded between servers (extra round trip + second
//! service) and subtrees periodically migrate, stalling two servers —
//! the overheads §IV-B blames for CephFS-K (16 MDS) barely beating
//! 1 MDS on mdtest-hard.

use arkfs_simkit::timeline::ContentionModel;
use arkfs_simkit::{ClusterSpec, Nanos, Port, SharedResource};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning of the MDS behaviour model.
#[derive(Debug, Clone)]
pub struct MdsModel {
    /// Base service time per metadata op.
    pub op_service: Nanos,
    /// Per-in-flight-request service inflation (collapse behaviour).
    pub contention_alpha: f64,
    /// Cap on the inflation factor.
    pub contention_cap: f64,
    /// With >1 MDS: forward every n-th request to another server.
    pub forward_every: u64,
    /// With >1 MDS: every n-th request triggers a subtree migration.
    pub migrate_every: u64,
    /// Stall caused by one migration (charged to two servers).
    pub migrate_cost: Nanos,
}

impl MdsModel {
    /// Calibrated against the CephFS results in §IV.
    pub fn ceph(spec: &ClusterSpec) -> Self {
        MdsModel {
            op_service: spec.mds_op_service,
            contention_alpha: 0.02,
            contention_cap: 12.0,
            forward_every: 2,
            migrate_every: 2048,
            migrate_cost: 40 * arkfs_simkit::MSEC,
        }
    }

    /// MarFS's two GPFS NSD metadata nodes: slower per-op service, no
    /// dynamic partitioning (static, no forwarding/migration).
    pub fn marfs(spec: &ClusterSpec) -> Self {
        MdsModel {
            op_service: spec.mds_op_service * 3,
            contention_alpha: 0.08,
            contention_cap: 48.0,
            forward_every: u64::MAX,
            migrate_every: u64::MAX,
            migrate_cost: 0,
        }
    }
}

/// A cluster of metadata servers.
pub struct MdsCluster {
    servers: Vec<SharedResource>,
    model: MdsModel,
    net_half_rtt: Nanos,
    ops: AtomicU64,
}

impl MdsCluster {
    pub fn new(n: usize, model: MdsModel, spec: &ClusterSpec) -> Self {
        assert!(n > 0);
        let contention = ContentionModel {
            alpha: model.contention_alpha,
            max_factor: model.contention_cap,
        };
        MdsCluster {
            servers: (0..n)
                .map(|_| SharedResource::new("mds", contention))
                .collect(),
            model,
            net_half_rtt: spec.net_half_rtt,
            ops: AtomicU64::new(0),
        }
    }

    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    pub fn ops_served(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Reset resource timelines between benchmark phases.
    pub fn reset(&self) {
        for s in &self.servers {
            s.reset();
        }
        self.ops.store(0, Ordering::Relaxed);
    }

    /// Charge one metadata operation on the directory identified by
    /// `dir_hint` to the caller's port: network round trip, service at
    /// the authoritative server, plus multi-MDS forwarding/migration.
    pub fn metadata_op(&self, port: &Port, dir_hint: u64) {
        let seq = self.ops.fetch_add(1, Ordering::Relaxed);
        let n = self.servers.len();
        let primary = (dir_hint % n as u64) as usize;
        let t0 = port.advance(self.net_half_rtt);
        let mut done = self.servers[primary].reserve(t0, self.model.op_service);
        if n > 1 {
            if (seq + 1).is_multiple_of(self.model.forward_every) {
                // Request landed on the wrong server: forward.
                let other = (primary + 1) % n;
                let t1 = done + self.net_half_rtt;
                done = self.servers[other].reserve(t1, self.model.op_service);
            }
            if seq % self.model.migrate_every == self.model.migrate_every - 1 {
                // Dynamic subtree partitioning migrates a subtree,
                // stalling the two servers involved.
                let other = (primary + 1) % n;
                let m1 = self.servers[primary].reserve(done, self.model.migrate_cost);
                let m2 = self.servers[other].reserve(done, self.model.migrate_cost);
                done = m1.max(m2);
            }
        }
        port.wait_until(done + self.net_half_rtt);
    }

    /// Charge a batch of metadata operations issued in one shot: the
    /// caller pays one network half-RTT to get the batch onto the wire,
    /// each op is serviced by its authoritative server (ops for the
    /// same server still queue behind each other), and the caller waits
    /// for the slowest completion plus the return half-RTT. This grants
    /// the baselines the same max-of-completions pricing as ArkFS's
    /// batched object path, so flush-time comparisons stay apples to
    /// apples. Forwarding and migration penalties still apply per op.
    pub fn metadata_ops_batched(&self, port: &Port, dir_hints: &[u64]) {
        if dir_hints.is_empty() {
            return;
        }
        let n = self.servers.len();
        let t0 = port.advance(self.net_half_rtt);
        let mut latest = t0;
        for &hint in dir_hints {
            let seq = self.ops.fetch_add(1, Ordering::Relaxed);
            let primary = (hint % n as u64) as usize;
            let mut done = self.servers[primary].reserve(t0, self.model.op_service);
            if n > 1 {
                if (seq + 1).is_multiple_of(self.model.forward_every) {
                    let other = (primary + 1) % n;
                    let t1 = done + self.net_half_rtt;
                    done = self.servers[other].reserve(t1, self.model.op_service);
                }
                if seq % self.model.migrate_every == self.model.migrate_every - 1 {
                    let other = (primary + 1) % n;
                    let m1 = self.servers[primary].reserve(done, self.model.migrate_cost);
                    let m2 = self.servers[other].reserve(done, self.model.migrate_cost);
                    done = m1.max(m2);
                }
            }
            latest = latest.max(done);
        }
        port.wait_until(latest + self.net_half_rtt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_simkit::SEC;

    fn spec() -> ClusterSpec {
        ClusterSpec::aws_paper()
    }

    #[test]
    fn single_op_costs_rtt_plus_service() {
        let spec = spec();
        let mds = MdsCluster::new(1, MdsModel::ceph(&spec), &spec);
        let port = Port::new();
        mds.metadata_op(&port, 0);
        assert_eq!(port.now(), spec.net_rtt() + spec.mds_op_service);
        assert_eq!(mds.ops_served(), 1);
    }

    #[test]
    fn throughput_collapses_under_concurrency() {
        // Aggregate ops/sec with 2 clients must exceed ops/sec with 64
        // clients over the same total op count (the Fig. 1 shape).
        let spec = spec();
        let rate = |clients: usize| -> f64 {
            let mds = MdsCluster::new(1, MdsModel::ceph(&spec), &spec);
            let total_ops = 2048;
            let per_client = total_ops / clients;
            let mut end = 0u64;
            let ports: Vec<Port> = (0..clients).map(|_| Port::new()).collect();
            for round in 0..per_client {
                let _ = round;
                for p in &ports {
                    mds.metadata_op(p, 0);
                }
            }
            for p in &ports {
                end = end.max(p.now());
            }
            total_ops as f64 / (end as f64 / SEC as f64)
        };
        let few = rate(2);
        let many = rate(64);
        assert!(
            few > many * 1.5,
            "expected collapse: 2 clients {few:.0} ops/s vs 64 clients {many:.0} ops/s"
        );
    }

    #[test]
    fn multi_mds_forwards_and_migrates() {
        let spec = spec();
        let model = MdsModel {
            forward_every: 2,
            migrate_every: 4,
            migrate_cost: 1_000_000,
            ..MdsModel::ceph(&spec)
        };
        let mds = MdsCluster::new(4, model, &spec);
        let port = Port::new();
        for i in 0..8 {
            mds.metadata_op(&port, i);
        }
        // Forwarded + migrated ops must make this strictly slower than
        // 8 plain ops on a 4-server cluster.
        let plain = MdsCluster::new(4, MdsModel::marfs(&spec), &spec);
        let p2 = Port::new();
        for i in 0..8 {
            plain.metadata_op(&p2, i);
        }
        assert!(port.now() > spec.net_rtt() * 8);
        assert!(mds.ops_served() == 8);
    }

    #[test]
    fn ops_spread_across_servers_by_dir() {
        let spec = spec();
        let mds = MdsCluster::new(4, MdsModel::marfs(&spec), &spec);
        let port = Port::new();
        // 4 different directories land on 4 different servers: no
        // queueing, all ops complete in one service time.
        for dir in 0..4u64 {
            let p = Port::new();
            mds.metadata_op(&p, dir);
            assert_eq!(p.now(), spec.net_rtt() + spec.mds_op_service * 3);
        }
        // Same directory serializes.
        mds.metadata_op(&port, 0);
        mds.metadata_op(&port, 0);
        assert!(port.now() >= spec.mds_op_service * 6);
    }

    #[test]
    fn batched_ops_pay_max_of_completions() {
        let spec = spec();
        // 4 servers, no forwarding/migration: 4 ops on 4 distinct
        // servers cost one RTT + one service time, not four.
        let mds = MdsCluster::new(4, MdsModel::marfs(&spec), &spec);
        let port = Port::new();
        mds.metadata_ops_batched(&port, &[0, 1, 2, 3]);
        assert_eq!(port.now(), spec.net_rtt() + spec.mds_op_service * 3);
        assert_eq!(mds.ops_served(), 4);

        // Same server: the batch serializes at the server but still
        // pays only one round trip.
        let serial = Port::new();
        mds.metadata_ops_batched(&serial, &[4, 4, 4, 4]);
        assert!(serial.now() >= spec.net_rtt() + spec.mds_op_service * 12);

        // Empty batch is free.
        let free = Port::new();
        mds.metadata_ops_batched(&free, &[]);
        assert_eq!(free.now(), 0);
    }

    #[test]
    fn reset_clears_counters() {
        let spec = spec();
        let mds = MdsCluster::new(1, MdsModel::ceph(&spec), &spec);
        mds.metadata_op(&Port::new(), 0);
        mds.reset();
        assert_eq!(mds.ops_served(), 0);
        let p = Port::new();
        mds.metadata_op(&p, 0);
        assert_eq!(p.now(), spec.net_rtt() + spec.mds_op_service);
    }
}
