//! MarFS simulator: the *interactive interface* (FUSE mount) over two
//! dedicated GPFS metadata nodes and an object data tier (§IV-A).
//!
//! The paper could not use pftool and measured MarFS through its FUSE
//! interactive mount, which is slow for metadata (every request crosses
//! FUSE and the GPFS metadata nodes, no client caching) and **returns
//! errors on the mdtest-hard READ phase** — reproduced here verbatim.

use crate::mds::{MdsCluster, MdsModel};
use crate::ns::Namespace;
use arkfs::prt::Prt;
use arkfs_objstore::ObjectStore;
use arkfs_simkit::{ClusterSpec, Port, SharedResource};
use arkfs_vfs::{
    Acl, Credentials, DirEntry, FileHandle, FileType, FsError, FsResult, Ino, OpenFlags, SetAttr,
    Stat, Vfs,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared MarFS deployment state.
pub struct MarShared {
    ns: Mutex<Namespace>,
    mds: MdsCluster,
    prt: Prt,
    spec: ClusterSpec,
}

/// One MarFS interactive (FUSE) client.
pub struct MarFs {
    shared: Arc<MarShared>,
    port: Port,
    fuse_lock: SharedResource,
    handles: Mutex<HashMap<u64, (Ino, u64, bool)>>, // ino, size, wrote
    next_handle: AtomicU64,
}

impl MarFs {
    /// Stand up a deployment (call once) and mount clients from it.
    pub fn deployment(
        store: Arc<dyn ObjectStore>,
        spec: ClusterSpec,
        chunk: u64,
    ) -> Arc<MarShared> {
        Arc::new(MarShared {
            ns: Mutex::new(Namespace::new()),
            mds: MdsCluster::new(2, MdsModel::marfs(&spec), &spec),
            prt: Prt::new(store, chunk),
            spec,
        })
    }

    pub fn client(shared: &Arc<MarShared>) -> Arc<MarFs> {
        Arc::new(MarFs {
            shared: Arc::clone(shared),
            port: Port::new(),
            fuse_lock: SharedResource::ideal("marfs-fuse"),
            handles: Mutex::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
        })
    }

    pub fn port(&self) -> &Port {
        &self.port
    }

    /// The deployment's telemetry (shared with the object store).
    pub fn telemetry(&self) -> Option<Arc<arkfs_telemetry::Telemetry>> {
        Some(Arc::clone(self.shared.prt.telemetry()))
    }

    fn charge(&self, path: &str) {
        // Heavy FUSE interactive path: one user↔kernel hop per component
        // plus the operation, then the GPFS metadata nodes.
        let comps = path.chars().filter(|&c| c == '/').count().max(1);
        let cost = self.shared.spec.fuse_op_cost * 2 * (comps as u64 + 1);
        let done = self.fuse_lock.reserve(self.port.now(), cost);
        self.port.wait_until(done);
        let hint = path.len() as u64;
        self.shared.mds.metadata_op(&self.port, hint);
    }
}

impl Vfs for MarFs {
    fn mkdir(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<Stat> {
        self.charge(path);
        self.shared
            .ns
            .lock()
            .mkdir(ctx, path, mode, self.port.now())
    }

    fn rmdir(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.charge(path);
        self.shared.ns.lock().rmdir(ctx, path, self.port.now())
    }

    fn create(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<FileHandle> {
        self.charge(path);
        let ino = self
            .shared
            .ns
            .lock()
            .create(ctx, path, mode, self.port.now())?;
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(id, (ino, 0, false));
        Ok(FileHandle(id))
    }

    fn open(&self, ctx: &Credentials, path: &str, flags: OpenFlags) -> FsResult<FileHandle> {
        self.charge(path);
        let (ino, size) = {
            let ns = self.shared.ns.lock();
            let ino = ns.resolve(ctx, path)?;
            let node = ns.node(ino)?;
            if node.ftype == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            (ino, node.size)
        };
        let _ = flags;
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(id, (ino, size, false));
        Ok(FileHandle(id))
    }

    fn close(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.fsync(ctx, fh)?;
        self.handles
            .lock()
            .remove(&fh.0)
            .ok_or(FsError::BadHandle)?;
        Ok(())
    }

    fn read(
        &self,
        _ctx: &Credentials,
        _fh: FileHandle,
        _offset: u64,
        _buf: &mut [u8],
    ) -> FsResult<usize> {
        // "MarFS returns errors when we perform this phase in our
        // environment" (§IV-B, mdtest-hard READ).
        Err(FsError::Unsupported("marfs interactive read"))
    }

    fn write(
        &self,
        _ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        let ino = {
            let handles = self.handles.lock();
            handles.get(&fh.0).ok_or(FsError::BadHandle)?.0
        };
        // Interactive writes go straight to the object tier.
        self.shared.prt.write_data(&self.port, ino, offset, data)?;
        let mut handles = self.handles.lock();
        if let Some(h) = handles.get_mut(&fh.0) {
            h.1 = h.1.max(offset + data.len() as u64);
            h.2 = true;
        }
        Ok(data.len())
    }

    fn fsync(&self, _ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        let (ino, size, wrote) = {
            let handles = self.handles.lock();
            *handles.get(&fh.0).ok_or(FsError::BadHandle)?
        };
        if wrote {
            self.charge("/");
            self.shared.ns.lock().set_size(ino, size, self.port.now())?;
            if let Some(h) = self.handles.lock().get_mut(&fh.0) {
                h.2 = false;
            }
        }
        Ok(())
    }

    fn stat(&self, ctx: &Credentials, path: &str) -> FsResult<Stat> {
        self.charge(path);
        self.shared.ns.lock().stat(ctx, path)
    }

    fn readdir(&self, ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>> {
        self.charge(path);
        self.shared.ns.lock().readdir(ctx, path)
    }

    fn unlink(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.charge(path);
        let (ino, size) = self.shared.ns.lock().unlink(ctx, path, self.port.now())?;
        self.shared.prt.delete_data(&self.port, ino, size)?;
        Ok(())
    }

    fn rename(&self, ctx: &Credentials, from: &str, to: &str) -> FsResult<()> {
        self.charge(from);
        self.charge(to);
        self.shared.ns.lock().rename(ctx, from, to, self.port.now())
    }

    fn truncate(&self, ctx: &Credentials, path: &str, size: u64) -> FsResult<()> {
        self.charge(path);
        let mut ns = self.shared.ns.lock();
        let ino = ns.resolve(ctx, path)?;
        let old = ns.set_size(ino, size, self.port.now())?;
        drop(ns);
        self.shared.prt.truncate_data(&self.port, ino, old, size)
    }

    fn setattr(&self, ctx: &Credentials, path: &str, attr: &SetAttr) -> FsResult<Stat> {
        self.charge(path);
        self.shared
            .ns
            .lock()
            .setattr(ctx, path, attr, self.port.now())
    }

    fn symlink(&self, ctx: &Credentials, path: &str, target: &str) -> FsResult<Stat> {
        self.charge(path);
        self.shared
            .ns
            .lock()
            .symlink(ctx, path, target, self.port.now())
    }

    fn readlink(&self, ctx: &Credentials, path: &str) -> FsResult<String> {
        self.charge(path);
        self.shared.ns.lock().readlink(ctx, path)
    }

    fn set_acl(&self, ctx: &Credentials, path: &str, acl: &Acl) -> FsResult<()> {
        self.charge(path);
        self.shared
            .ns
            .lock()
            .set_acl(ctx, path, acl, self.port.now())
    }

    fn get_acl(&self, ctx: &Credentials, path: &str) -> FsResult<Acl> {
        self.charge(path);
        self.shared.ns.lock().get_acl(ctx, path)
    }

    fn access(&self, ctx: &Credentials, path: &str, mode: u8) -> FsResult<()> {
        self.charge(path);
        self.shared.ns.lock().access(ctx, path, mode)
    }

    fn sync_all(&self, _ctx: &Credentials) -> FsResult<()> {
        // Data is unbuffered (writes go straight to the object tier),
        // but written handles may still carry un-pushed size updates.
        // Flush them as one FUSE crossing plus one batched GPFS-MDS
        // flight (max-of-completions), matching the batched flush the
        // other systems get.
        let pending: Vec<(Ino, u64)> = {
            let mut handles = self.handles.lock();
            handles
                .values_mut()
                .filter(|h| h.2)
                .map(|h| {
                    h.2 = false;
                    (h.0, h.1)
                })
                .collect()
        };
        if !pending.is_empty() {
            let cost = self.shared.spec.fuse_op_cost * 2;
            let done = self.fuse_lock.reserve(self.port.now(), cost);
            self.port.wait_until(done);
            let hints: Vec<u64> = pending.iter().map(|&(ino, _)| ino as u64).collect();
            self.shared.mds.metadata_ops_batched(&self.port, &hints);
            for (ino, size) in pending {
                self.shared.ns.lock().set_size(ino, size, self.port.now())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use arkfs_vfs::write_file;

    fn client() -> Arc<MarFs> {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let shared = MarFs::deployment(store, ClusterSpec::test_tiny(), 64);
        MarFs::client(&shared)
    }

    #[test]
    fn metadata_and_write_work() {
        let c = client();
        let ctx = Credentials::root();
        c.mkdir(&ctx, "/d", 0o755).unwrap();
        write_file(&*c, &ctx, "/d/f", b"marfs").unwrap();
        assert_eq!(c.stat(&ctx, "/d/f").unwrap().size, 5);
        assert_eq!(c.readdir(&ctx, "/d").unwrap().len(), 1);
        c.unlink(&ctx, "/d/f").unwrap();
        assert!(c.port().now() > 0);
    }

    #[test]
    fn reads_return_errors_like_the_paper_observed() {
        let c = client();
        let ctx = Credentials::root();
        write_file(&*c, &ctx, "/f", b"data").unwrap();
        let fh = c.open(&ctx, "/f", OpenFlags::RDONLY).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            c.read(&ctx, fh, 0, &mut buf),
            Err(FsError::Unsupported("marfs interactive read"))
        ));
    }
}
