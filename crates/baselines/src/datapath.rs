//! Shared chunked, cached data path for the baseline file systems: a
//! page-cache-like write-back cache with CephFS-style read-ahead over
//! chunked data objects. (ArkFS has its own variant wired into its file
//! leases; the baselines share this one.)

use arkfs::cache::DataCache;
use arkfs::prt::map_os_err;
use arkfs_objstore::{ObjectKey, ObjectStore, OsError};
use arkfs_simkit::Port;
use arkfs_vfs::{FsResult, Ino};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-handle read-ahead state.
#[derive(Debug, Default, Clone, Copy)]
pub struct RaState {
    pub window: u64,
    pub last_pos: u64,
}

/// Chunked cached file I/O over an object store.
pub struct DataPath {
    store: Arc<dyn ObjectStore>,
    pub chunk_size: u64,
    pub max_readahead: u64,
    pub full_at_zero: bool,
}

impl DataPath {
    pub fn new(store: Arc<dyn ObjectStore>, chunk_size: u64, max_readahead: u64) -> Self {
        assert!(chunk_size > 0);
        DataPath {
            store,
            chunk_size,
            max_readahead,
            full_at_zero: true,
        }
    }

    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }
}

/// A [`DataCache`] wired to the store's `cache.hit.count` /
/// `cache.miss.count` registry counters, so baselines report cache
/// behaviour through the same telemetry names as ArkFS clients.
pub(crate) fn counted_cache(store: &Arc<dyn ObjectStore>, entries: usize) -> DataCache {
    let mut cache = DataCache::new(entries);
    if let Some(t) = store.telemetry() {
        cache.attach_counters(
            t.registry.counter("cache.hit.count"),
            t.registry.counter("cache.miss.count"),
        );
    }
    cache
}

impl DataPath {
    fn write_back(&self, port: &Port, evicted: Vec<arkfs::cache::Evicted>) -> FsResult<()> {
        if evicted.is_empty() {
            return Ok(());
        }
        let items: Vec<(ObjectKey, Bytes)> = evicted
            .into_iter()
            .map(|e| (ObjectKey::data_chunk(e.ino, e.chunk), Bytes::from(e.data)))
            .collect();
        for r in self.store.put_many(port, items) {
            r.map_err(map_os_err)?;
        }
        Ok(())
    }

    /// Cached read with read-ahead; updates `ra` for sequentiality.
    #[allow(clippy::too_many_arguments)]
    pub fn read(
        &self,
        port: &Port,
        cache: &Mutex<DataCache>,
        ino: Ino,
        offset: u64,
        buf: &mut [u8],
        size: u64,
        ra: &mut RaState,
    ) -> FsResult<usize> {
        if offset >= size || buf.is_empty() {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        if offset == 0 && self.full_at_zero {
            ra.window = self.max_readahead;
        } else if offset == ra.last_pos && offset != 0 {
            ra.window = (ra.window.max(self.chunk_size) * 2).min(self.max_readahead);
        } else if offset != ra.last_pos {
            ra.window = 0;
        }
        // Fill missing chunks (read range + read-ahead) pipelined.
        let first = offset / self.chunk_size;
        let ra_end = (offset + want as u64).saturating_add(ra.window).min(size);
        let last = ra_end.div_ceil(self.chunk_size).max(first + 1);
        let missing: Vec<u64> = {
            let c = cache.lock();
            (first..last).filter(|&ch| !c.contains(ino, ch)).collect()
        };
        if !missing.is_empty() {
            // Request-relevant chunks are synchronous; the rest of the
            // window is asynchronous read-ahead — the reader only waits
            // when it touches a chunk before its completion.
            let last_needed = (offset + want as u64 - 1) / self.chunk_size;
            let keys: Vec<ObjectKey> = missing
                .iter()
                .map(|&ch| ObjectKey::data_chunk(ino, ch))
                .collect();
            let depart = port.now() + 50_000; // one-way network latency
            let results = self.store.get_each(depart, &keys);
            let mut evicted = Vec::new();
            let mut needed_done = port.now();
            {
                let mut c = cache.lock();
                for (&chunk, result) in missing.iter().zip(results).rev() {
                    let chunk_start = chunk * self.chunk_size;
                    let logical = (size - chunk_start).min(self.chunk_size) as usize;
                    let (data, ready_at) = match result {
                        Ok((bytes, completion)) => {
                            let mut v = bytes.to_vec();
                            if v.len() < logical {
                                v.resize(logical, 0);
                            }
                            (v, completion)
                        }
                        Err(OsError::NotFound) => (vec![0u8; logical], depart),
                        Err(e) => return Err(map_os_err(e)),
                    };
                    if chunk <= last_needed {
                        needed_done = needed_done.max(ready_at);
                        evicted.extend(c.insert_clean(ino, chunk, data));
                    } else {
                        evicted.extend(c.insert_prefetched(ino, chunk, data, ready_at));
                    }
                }
            }
            port.wait_until(needed_done);
            self.write_back(port, evicted)?;
        }
        // Copy out; chunks evicted in between come straight from the
        // store.
        let mut filled = 0usize;
        while filled < want {
            let pos = offset + filled as u64;
            let chunk = pos / self.chunk_size;
            let within = (pos % self.chunk_size) as usize;
            let n = (self.chunk_size as usize - within).min(want - filled);
            let hit = {
                let mut c = cache.lock();
                match c.get_ready(ino, chunk) {
                    Some((data, ready_at)) => {
                        let out = &mut buf[filled..filled + n];
                        let avail = data.len().saturating_sub(within);
                        let take = avail.min(n);
                        out[..take].copy_from_slice(&data[within..within + take]);
                        out[take..].fill(0);
                        Some(ready_at)
                    }
                    None => None,
                }
            };
            let hit = match hit {
                Some(ready_at) => {
                    port.wait_until(ready_at);
                    true
                }
                None => false,
            };
            if !hit {
                match self.store.get_range(
                    port,
                    ObjectKey::data_chunk(ino, chunk),
                    within as u64,
                    n,
                ) {
                    Ok(data) => {
                        let out = &mut buf[filled..filled + n];
                        out[..data.len()].copy_from_slice(&data);
                        out[data.len()..].fill(0);
                    }
                    Err(OsError::NotFound) => buf[filled..filled + n].fill(0),
                    Err(e) => return Err(map_os_err(e)),
                }
            }
            filled += n;
        }
        ra.last_pos = offset + filled as u64;
        Ok(filled)
    }

    /// Write-back cached write. `size_before` is the pre-write file size
    /// (for read-modify detection on partial chunk overwrites).
    pub fn write(
        &self,
        port: &Port,
        cache: &Mutex<DataCache>,
        ino: Ino,
        offset: u64,
        data: &[u8],
        size_before: u64,
    ) -> FsResult<()> {
        // Split into per-chunk pieces up front, fetch every
        // read-modify-write fill in one pipelined multi-GET, apply the
        // whole span in one cache pass, and flush all evictions as a
        // single write-back batch.
        let mut pieces: Vec<(u64, usize, &[u8])> = Vec::new();
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let chunk = pos / self.chunk_size;
            let within = (pos % self.chunk_size) as usize;
            let n = (self.chunk_size as usize - within).min(data.len() - written);
            pieces.push((chunk, within, &data[written..written + n]));
            written += n;
        }
        let need_fill: Vec<u64> = {
            let c = cache.lock();
            pieces
                .iter()
                .filter(|&&(chunk, within, piece)| {
                    let covers_whole = within == 0 && piece.len() == self.chunk_size as usize;
                    !covers_whole
                        && chunk * self.chunk_size < size_before
                        && !c.contains(ino, chunk)
                })
                .map(|&(chunk, ..)| chunk)
                .collect()
        };
        let mut fills = HashMap::new();
        if !need_fill.is_empty() {
            let keys: Vec<ObjectKey> = need_fill
                .iter()
                .map(|&ch| ObjectKey::data_chunk(ino, ch))
                .collect();
            for (&chunk, result) in need_fill.iter().zip(self.store.get_many(port, &keys)) {
                match result {
                    Ok(bytes) => {
                        fills.insert(chunk, bytes.to_vec());
                    }
                    Err(OsError::NotFound) => {}
                    Err(e) => return Err(map_os_err(e)),
                }
            }
        }
        let evicted = cache.lock().write_many(ino, fills, &pieces);
        self.write_back(port, evicted)
    }

    /// Flush one file's dirty chunks to the store.
    pub fn flush(&self, port: &Port, cache: &Mutex<DataCache>, ino: Ino) -> FsResult<()> {
        let dirty = cache.lock().take_dirty(ino);
        if dirty.is_empty() {
            return Ok(());
        }
        let items: Vec<(ObjectKey, Bytes)> = dirty
            .into_iter()
            .map(|(chunk, data)| (ObjectKey::data_chunk(ino, chunk), Bytes::from(data)))
            .collect();
        for r in self.store.put_many(port, items) {
            r.map_err(map_os_err)?;
        }
        Ok(())
    }

    /// Flush everything (global sync).
    pub fn flush_all(&self, port: &Port, cache: &Mutex<DataCache>) -> FsResult<()> {
        let dirty = cache.lock().take_all_dirty();
        self.write_back(port, dirty)
    }

    /// Truncate the data objects of a file from `old_size` down to
    /// `new_size`: drop trailing chunks and trim the boundary chunk.
    pub fn truncate(
        &self,
        port: &Port,
        cache: &Mutex<DataCache>,
        ino: Ino,
        old_size: u64,
        new_size: u64,
    ) -> FsResult<()> {
        if new_size >= old_size {
            return Ok(());
        }
        self.flush(port, cache, ino)?;
        cache.lock().invalidate_file(ino);
        let first_dead = new_size.div_ceil(self.chunk_size);
        let last = old_size.div_ceil(self.chunk_size);
        let dead: Vec<ObjectKey> = (first_dead..last)
            .map(|ch| ObjectKey::data_chunk(ino, ch))
            .collect();
        if !dead.is_empty() {
            for r in self.store.delete_many(port, &dead) {
                match r {
                    Ok(()) | Err(OsError::NotFound) => {}
                    Err(e) => return Err(map_os_err(e)),
                }
            }
        }
        if !new_size.is_multiple_of(self.chunk_size) && new_size / self.chunk_size < last {
            let boundary = new_size / self.chunk_size;
            let keep = (new_size % self.chunk_size) as usize;
            let key = ObjectKey::data_chunk(ino, boundary);
            match self.store.get(port, key) {
                Ok(data) if data.len() > keep => {
                    self.store
                        .put(port, key, data.slice(..keep))
                        .map_err(map_os_err)?;
                }
                Ok(_) | Err(OsError::NotFound) => {}
                Err(e) => return Err(map_os_err(e)),
            }
        }
        Ok(())
    }

    /// Drop cached chunks and delete the data objects of a file.
    pub fn delete(
        &self,
        port: &Port,
        cache: &Mutex<DataCache>,
        ino: Ino,
        size: u64,
    ) -> FsResult<()> {
        cache.lock().invalidate_file(ino);
        let keys: Vec<ObjectKey> = (0..size.div_ceil(self.chunk_size))
            .map(|ch| ObjectKey::data_chunk(ino, ch))
            .collect();
        if keys.is_empty() {
            return Ok(());
        }
        for r in self.store.delete_many(port, &keys) {
            match r {
                Ok(()) | Err(OsError::NotFound) => {}
                Err(e) => return Err(map_os_err(e)),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};

    fn setup() -> (DataPath, Mutex<DataCache>, Port) {
        let store: Arc<dyn ObjectStore> = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        (
            DataPath::new(store, 64, 256),
            Mutex::new(DataCache::new(8)),
            Port::new(),
        )
    }

    #[test]
    fn write_flush_read_roundtrip() {
        let (dp, cache, port) = setup();
        let payload: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        dp.write(&port, &cache, 7, 0, &payload, 0).unwrap();
        dp.flush(&port, &cache, 7).unwrap();
        let mut ra = RaState::default();
        let mut buf = vec![0u8; 300];
        let n = dp
            .read(&port, &cache, 7, 0, &mut buf, 300, &mut ra)
            .unwrap();
        assert_eq!(n, 300);
        assert_eq!(buf, payload);
    }

    #[test]
    fn readahead_window_grows_and_resets() {
        let (dp, cache, port) = setup();
        let payload = vec![3u8; 1024];
        dp.write(&port, &cache, 7, 0, &payload, 0).unwrap();
        dp.flush(&port, &cache, 7).unwrap();
        cache.lock().invalidate_file(7);
        let mut ra = RaState::default();
        let mut buf = vec![0u8; 64];
        dp.read(&port, &cache, 7, 0, &mut buf, 1024, &mut ra)
            .unwrap();
        assert_eq!(ra.window, 256, "offset 0 jumps to max window");
        // Random access resets the window.
        dp.read(&port, &cache, 7, 512, &mut buf, 1024, &mut ra)
            .unwrap();
        assert_eq!(ra.window, 0);
        // Sequential access doubles it.
        dp.read(&port, &cache, 7, 576, &mut buf, 1024, &mut ra)
            .unwrap();
        assert_eq!(ra.window, 128);
        dp.read(&port, &cache, 7, 640, &mut buf, 1024, &mut ra)
            .unwrap();
        assert_eq!(ra.window, 256);
    }

    #[test]
    fn partial_overwrite_preserves_surroundings() {
        let (dp, cache, port) = setup();
        dp.write(&port, &cache, 7, 0, &[1u8; 128], 0).unwrap();
        dp.flush(&port, &cache, 7).unwrap();
        cache.lock().invalidate_file(7);
        // Overwrite 10 bytes in the middle of chunk 0 (needs RMW).
        dp.write(&port, &cache, 7, 20, &[9u8; 10], 128).unwrap();
        dp.flush(&port, &cache, 7).unwrap();
        let mut ra = RaState::default();
        let mut buf = vec![0u8; 128];
        cache.lock().invalidate_file(7);
        dp.read(&port, &cache, 7, 0, &mut buf, 128, &mut ra)
            .unwrap();
        assert!(buf[..20].iter().all(|&b| b == 1));
        assert!(buf[20..30].iter().all(|&b| b == 9));
        assert!(buf[30..].iter().all(|&b| b == 1));
    }

    #[test]
    fn delete_removes_objects_and_cache() {
        let (dp, cache, port) = setup();
        dp.write(&port, &cache, 7, 0, &[1u8; 200], 0).unwrap();
        dp.flush(&port, &cache, 7).unwrap();
        dp.delete(&port, &cache, 7, 200).unwrap();
        let mut ra = RaState::default();
        let mut buf = vec![5u8; 64];
        dp.read(&port, &cache, 7, 0, &mut buf, 200, &mut ra)
            .unwrap();
        assert!(buf.iter().all(|&b| b == 0), "deleted data reads as zeros");
    }

    #[test]
    fn flush_all_covers_multiple_files() {
        let (dp, cache, port) = setup();
        dp.write(&port, &cache, 1, 0, b"one", 0).unwrap();
        dp.write(&port, &cache, 2, 0, b"two", 0).unwrap();
        dp.flush_all(&port, &cache).unwrap();
        assert_eq!(cache.lock().dirty_count(), 0);
        let head = dp.store().head(&port, ObjectKey::data_chunk(1, 0)).unwrap();
        assert_eq!(head, 3);
    }
}
