//! Shared "bucket" model for the S3-backed file systems (S3FS, goofys):
//! a flat path-keyed index over whole-file objects.
//!
//! This reproduces the properties §II-C criticizes: "as the object's key
//! is treated as a full pathname, renaming of a directory leads to a
//! situation where all the files under the directory are rewritten", and
//! "permission check is not done rigorously".

use arkfs::prt::map_os_err;
use arkfs_objstore::{ObjectKey, ObjectStore, OsError};
use arkfs_simkit::{Nanos, Port};
use arkfs_vfs::{path as vpath, DirEntry, FileType, FsError, FsResult, Ino};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index entry for one key in the bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketEntry {
    pub ino: Ino,
    pub is_dir: bool,
    pub size: u64,
    pub mtime: Nanos,
}

/// One mounted bucket, shared by every client of a deployment.
pub struct Bucket {
    index: Mutex<BTreeMap<String, BucketEntry>>,
    next_ino: AtomicU64,
    store: Arc<dyn ObjectStore>,
    /// Upload part / data object size.
    pub part_size: u64,
}

impl Bucket {
    pub fn new(store: Arc<dyn ObjectStore>, part_size: u64) -> Arc<Self> {
        assert!(part_size > 0);
        Arc::new(Bucket {
            index: Mutex::new(BTreeMap::new()),
            next_ino: AtomicU64::new(2),
            store,
            part_size,
        })
    }

    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    fn alloc_ino(&self) -> Ino {
        self.next_ino.fetch_add(1, Ordering::Relaxed) as Ino
    }

    fn canonical(path: &str) -> FsResult<String> {
        Ok(vpath::join(&vpath::components(path)?))
    }

    /// Does the parent prefix exist as a directory (or the root)?
    fn parent_ok(index: &BTreeMap<String, BucketEntry>, path: &str) -> bool {
        match path.rfind('/') {
            Some(0) | None => true,
            Some(idx) => index.get(&path[..idx]).is_some_and(|e| e.is_dir),
        }
    }

    pub fn lookup(&self, path: &str) -> FsResult<BucketEntry> {
        let path = Self::canonical(path)?;
        if path == "/" {
            return Ok(BucketEntry {
                ino: 1,
                is_dir: true,
                size: 0,
                mtime: 0,
            });
        }
        self.index
            .lock()
            .get(&path)
            .copied()
            .ok_or(FsError::NotFound)
    }

    /// HEAD the marker object (charges one S3 op) then return the entry.
    pub fn stat(&self, port: &Port, path: &str) -> FsResult<BucketEntry> {
        let entry = self.lookup(path)?;
        let _ = self.store.head(port, ObjectKey::inode(entry.ino));
        Ok(entry)
    }

    pub fn mkdir(&self, port: &Port, path: &str, now: Nanos) -> FsResult<BucketEntry> {
        let path = Self::canonical(path)?;
        let ino = self.alloc_ino();
        {
            let mut index = self.index.lock();
            if !Self::parent_ok(&index, &path) {
                return Err(FsError::NotFound);
            }
            if index.contains_key(&path) {
                return Err(FsError::AlreadyExists);
            }
            index.insert(
                path,
                BucketEntry {
                    ino,
                    is_dir: true,
                    size: 0,
                    mtime: now,
                },
            );
        }
        // Directory marker object ("dir/" key on real S3).
        self.store
            .put(port, ObjectKey::inode(ino), Bytes::new())
            .map_err(map_os_err)?;
        Ok(BucketEntry {
            ino,
            is_dir: true,
            size: 0,
            mtime: now,
        })
    }

    pub fn create(&self, port: &Port, path: &str, now: Nanos) -> FsResult<BucketEntry> {
        let path = Self::canonical(path)?;
        let ino = self.alloc_ino();
        {
            let mut index = self.index.lock();
            if !Self::parent_ok(&index, &path) {
                return Err(FsError::NotFound);
            }
            if index.contains_key(&path) {
                return Err(FsError::AlreadyExists);
            }
            index.insert(
                path.clone(),
                BucketEntry {
                    ino,
                    is_dir: false,
                    size: 0,
                    mtime: now,
                },
            );
        }
        self.store
            .put(port, ObjectKey::inode(ino), Bytes::new())
            .map_err(map_os_err)?;
        Ok(BucketEntry {
            ino,
            is_dir: false,
            size: 0,
            mtime: now,
        })
    }

    pub fn set_size(&self, path: &str, size: u64, now: Nanos) -> FsResult<()> {
        let path = Self::canonical(path)?;
        let mut index = self.index.lock();
        let entry = index.get_mut(&path).ok_or(FsError::NotFound)?;
        entry.size = size;
        entry.mtime = now;
        Ok(())
    }

    /// List direct children of a directory (charges one LIST).
    pub fn readdir(&self, port: &Port, path: &str) -> FsResult<Vec<DirEntry>> {
        let path = Self::canonical(path)?;
        if path != "/" && !self.lookup(&path)?.is_dir {
            return Err(FsError::NotADirectory);
        }
        let _ = self
            .store
            .list(port, Some(arkfs_objstore::KeyKind::Inode), None);
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let index = self.index.lock();
        let mut out = Vec::new();
        for (key, entry) in index.range(prefix.clone()..) {
            if !key.starts_with(&prefix) {
                break;
            }
            let rest = &key[prefix.len()..];
            if rest.is_empty() || rest.contains('/') {
                continue; // deeper than one level
            }
            out.push(DirEntry {
                name: rest.to_string(),
                ino: entry.ino,
                ftype: if entry.is_dir {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
            });
        }
        Ok(out)
    }

    pub fn unlink(&self, port: &Port, path: &str) -> FsResult<BucketEntry> {
        let path = Self::canonical(path)?;
        let entry = {
            let mut index = self.index.lock();
            let entry = *index.get(&path).ok_or(FsError::NotFound)?;
            if entry.is_dir {
                return Err(FsError::IsADirectory);
            }
            index.remove(&path);
            entry
        };
        let _ = self.store.delete(port, ObjectKey::inode(entry.ino));
        self.delete_data(port, entry.ino, entry.size)?;
        Ok(entry)
    }

    pub fn rmdir(&self, port: &Port, path: &str) -> FsResult<()> {
        let path = Self::canonical(path)?;
        let entry = self.lookup(&path)?;
        if !entry.is_dir {
            return Err(FsError::NotADirectory);
        }
        {
            let mut index = self.index.lock();
            let prefix = format!("{path}/");
            if index
                .range(prefix.clone()..)
                .next()
                .is_some_and(|(k, _)| k.starts_with(&prefix))
            {
                return Err(FsError::NotEmpty);
            }
            index.remove(&path);
        }
        let _ = self.store.delete(port, ObjectKey::inode(entry.ino));
        Ok(())
    }

    /// Rename: every object under the source prefix is COPIED to a fresh
    /// key and the original deleted — the S3FS full-rewrite behaviour.
    /// Returns the number of bytes rewritten.
    pub fn rename(&self, port: &Port, from: &str, to: &str, now: Nanos) -> FsResult<u64> {
        let from = Self::canonical(from)?;
        let to = Self::canonical(to)?;
        if from == to {
            return Ok(0);
        }
        let moves: Vec<(String, String, BucketEntry)> = {
            let index = self.index.lock();
            if !index.contains_key(&from) {
                return Err(FsError::NotFound);
            }
            if index.contains_key(&to) {
                return Err(FsError::AlreadyExists);
            }
            let prefix = format!("{from}/");
            index
                .iter()
                .filter(|(k, _)| *k == &from || k.starts_with(&prefix))
                .map(|(k, e)| {
                    let suffix = &k[from.len()..];
                    (k.clone(), format!("{to}{suffix}"), *e)
                })
                .collect()
        };
        let mut rewritten = 0u64;
        let mut updates = Vec::with_capacity(moves.len());
        for (old_key, new_key, entry) in moves {
            let new_ino = self.alloc_ino();
            if !entry.is_dir && entry.size > 0 {
                // Server-side copy still reads + writes every object.
                let chunks = entry.size.div_ceil(self.part_size);
                let keys: Vec<ObjectKey> = (0..chunks)
                    .map(|i| ObjectKey::data_chunk(entry.ino, i))
                    .collect();
                let datas = self.store.get_many(port, &keys);
                let mut puts = Vec::new();
                for (i, d) in datas.into_iter().enumerate() {
                    match d {
                        Ok(bytes) => {
                            rewritten += bytes.len() as u64;
                            puts.push((ObjectKey::data_chunk(new_ino, i as u64), bytes));
                        }
                        Err(OsError::NotFound) => {}
                        Err(e) => return Err(map_os_err(e)),
                    }
                }
                for r in self.store.put_many(port, puts) {
                    r.map_err(map_os_err)?;
                }
                self.delete_data(port, entry.ino, entry.size)?;
            }
            let _ = self.store.delete(port, ObjectKey::inode(entry.ino));
            self.store
                .put(port, ObjectKey::inode(new_ino), Bytes::new())
                .map_err(map_os_err)?;
            updates.push((
                old_key,
                new_key,
                BucketEntry {
                    ino: new_ino,
                    mtime: now,
                    ..entry
                },
            ));
        }
        let mut index = self.index.lock();
        for (old_key, new_key, entry) in updates {
            index.remove(&old_key);
            index.insert(new_key, entry);
        }
        Ok(rewritten)
    }

    /// Delete the data objects of a file.
    pub fn delete_data(&self, port: &Port, ino: Ino, size: u64) -> FsResult<()> {
        let keys: Vec<ObjectKey> = (0..size.div_ceil(self.part_size))
            .map(|i| ObjectKey::data_chunk(ino, i))
            .collect();
        if keys.is_empty() {
            return Ok(());
        }
        for r in self.store.delete_many(port, &keys) {
            match r {
                Ok(()) | Err(OsError::NotFound) => {}
                Err(e) => return Err(map_os_err(e)),
            }
        }
        Ok(())
    }

    /// Upload a whole file as part objects (multipart upload).
    pub fn upload(&self, port: &Port, ino: Ino, data: &[u8]) -> FsResult<()> {
        let mut puts = Vec::new();
        let mut off = 0usize;
        let mut part = 0u64;
        while off < data.len() {
            let n = (self.part_size as usize).min(data.len() - off);
            puts.push((
                ObjectKey::data_chunk(ino, part),
                Bytes::copy_from_slice(&data[off..off + n]),
            ));
            off += n;
            part += 1;
        }
        for r in self.store.put_many(port, puts) {
            r.map_err(map_os_err)?;
        }
        Ok(())
    }

    /// Download a whole file from its part objects.
    pub fn download(&self, port: &Port, ino: Ino, size: u64) -> FsResult<Vec<u8>> {
        let chunks = size.div_ceil(self.part_size);
        let keys: Vec<ObjectKey> = (0..chunks).map(|i| ObjectKey::data_chunk(ino, i)).collect();
        let mut out = Vec::with_capacity(size as usize);
        for r in self.store.get_many(port, &keys) {
            match r {
                Ok(bytes) => out.extend_from_slice(&bytes),
                Err(OsError::NotFound) => {}
                Err(e) => return Err(map_os_err(e)),
            }
        }
        out.resize(size as usize, 0);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};

    fn bucket() -> Arc<Bucket> {
        Bucket::new(Arc::new(ObjectCluster::new(ClusterConfig::test_tiny())), 64)
    }

    #[test]
    fn create_stat_list_delete() {
        let b = bucket();
        let port = Port::new();
        b.mkdir(&port, "/d", 0).unwrap();
        b.create(&port, "/d/f", 1).unwrap();
        b.set_size("/d/f", 10, 2).unwrap();
        assert_eq!(b.stat(&port, "/d/f").unwrap().size, 10);
        let entries = b.readdir(&port, "/d").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "f");
        // Nested entries don't show up in a shallower listing.
        b.mkdir(&port, "/d/sub", 0).unwrap();
        b.create(&port, "/d/sub/deep", 0).unwrap();
        assert_eq!(b.readdir(&port, "/d").unwrap().len(), 2);
        assert_eq!(b.readdir(&port, "/").unwrap().len(), 1);
        b.unlink(&port, "/d/f").unwrap();
        assert_eq!(b.stat(&port, "/d/f").err(), Some(FsError::NotFound));
        assert_eq!(b.rmdir(&port, "/d").err(), Some(FsError::NotEmpty));
        b.unlink(&port, "/d/sub/deep").unwrap();
        b.rmdir(&port, "/d/sub").unwrap();
        b.rmdir(&port, "/d").unwrap();
    }

    #[test]
    fn create_needs_parent() {
        let b = bucket();
        let port = Port::new();
        assert_eq!(
            b.create(&port, "/missing/f", 0).err(),
            Some(FsError::NotFound)
        );
        b.create(&port, "/top", 0).unwrap();
        assert_eq!(
            b.create(&port, "/top", 0).err(),
            Some(FsError::AlreadyExists)
        );
        // A file is not a valid parent.
        assert_eq!(b.create(&port, "/top/f", 0).err(), Some(FsError::NotFound));
    }

    #[test]
    fn upload_download_roundtrip() {
        let b = bucket();
        let port = Port::new();
        let e = b.create(&port, "/f", 0).unwrap();
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        b.upload(&port, e.ino, &data).unwrap();
        b.set_size("/f", 200, 1).unwrap();
        assert_eq!(b.download(&port, e.ino, 200).unwrap(), data);
    }

    #[test]
    fn directory_rename_rewrites_every_object() {
        let b = bucket();
        let port = Port::new();
        b.mkdir(&port, "/old", 0).unwrap();
        let mut total = 0u64;
        for i in 0..5 {
            let e = b.create(&port, &format!("/old/f{i}"), 0).unwrap();
            let data = vec![i as u8; 100];
            b.upload(&port, e.ino, &data).unwrap();
            b.set_size(&format!("/old/f{i}"), 100, 0).unwrap();
            total += 100;
        }
        let rewritten = b.rename(&port, "/old", "/new", 1).unwrap();
        assert_eq!(
            rewritten, total,
            "every byte under the directory is rewritten"
        );
        assert_eq!(b.readdir(&port, "/new").unwrap().len(), 5);
        assert_eq!(b.stat(&port, "/old").err(), Some(FsError::NotFound));
        // Data is intact under the new keys.
        let e = b.stat(&port, "/new/f3").unwrap();
        assert_eq!(b.download(&port, e.ino, 100).unwrap(), vec![3u8; 100]);
    }

    #[test]
    fn file_rename_rewrites_its_data() {
        let b = bucket();
        let port = Port::new();
        let e = b.create(&port, "/a", 0).unwrap();
        b.upload(&port, e.ino, &[7u8; 130]).unwrap();
        b.set_size("/a", 130, 0).unwrap();
        let rewritten = b.rename(&port, "/a", "/b", 1).unwrap();
        assert_eq!(rewritten, 130);
        assert_eq!(
            b.rename(&port, "/nope", "/x", 1).err(),
            Some(FsError::NotFound)
        );
    }
}
