//! A centralized in-memory namespace: the functional state held by a
//! metadata server cluster (CephFS MDS, MarFS's GPFS nodes).
//!
//! All methods take full paths and perform resolution + POSIX permission
//! checks internally, mirroring a server that owns the whole hierarchy.

use arkfs_vfs::{
    path as vpath, perm, Acl, Credentials, DirEntry, FileType, FsError, FsResult, Ino, Nanos,
    SetAttr, Stat, AM_EXEC, AM_READ, AM_WRITE, ROOT_INO,
};
use std::collections::{BTreeMap, HashMap};

/// One node in the tree.
#[derive(Debug, Clone)]
pub struct Node {
    pub ino: Ino,
    pub ftype: FileType,
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub nlink: u32,
    pub size: u64,
    pub atime: Nanos,
    pub mtime: Nanos,
    pub ctime: Nanos,
    pub acl: Acl,
    pub symlink_target: String,
    children: BTreeMap<String, Ino>,
}

impl Node {
    fn new(ino: Ino, ftype: FileType, mode: u32, uid: u32, gid: u32, now: Nanos) -> Self {
        Node {
            ino,
            ftype,
            mode: mode & 0o7777,
            uid,
            gid,
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            size: 0,
            atime: now,
            mtime: now,
            ctime: now,
            acl: Acl::default(),
            symlink_target: String::new(),
            children: BTreeMap::new(),
        }
    }

    pub fn stat(&self) -> Stat {
        Stat {
            ino: self.ino,
            ftype: self.ftype,
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            nlink: self.nlink,
            size: self.size,
            atime: self.atime,
            mtime: self.mtime,
            ctime: self.ctime,
        }
    }
}

/// The whole hierarchy, owned by one logical metadata service.
#[derive(Debug)]
pub struct Namespace {
    nodes: HashMap<Ino, Node>,
    next_ino: u128,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT_INO,
            Node::new(ROOT_INO, FileType::Directory, 0o755, 0, 0, 0),
        );
        Namespace {
            nodes,
            next_ino: ROOT_INO + 1,
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        ino
    }

    pub fn node(&self, ino: Ino) -> FsResult<&Node> {
        self.nodes.get(&ino).ok_or(FsError::Stale)
    }

    fn node_mut(&mut self, ino: Ino) -> FsResult<&mut Node> {
        self.nodes.get_mut(&ino).ok_or(FsError::Stale)
    }

    fn check(&self, ctx: &Credentials, node: &Node, want: u8) -> FsResult<()> {
        perm::check_access(ctx, node.uid, node.gid, node.mode, &node.acl, want)
    }

    /// Resolve a path to its inode, checking exec on every directory
    /// walked through (but not on the final component).
    pub fn resolve(&self, ctx: &Credentials, path: &str) -> FsResult<Ino> {
        let comps = vpath::components(path)?;
        let mut cur = ROOT_INO;
        for comp in comps {
            let node = self.node(cur)?;
            if node.ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            self.check(ctx, node, AM_EXEC)?;
            cur = *node.children.get(comp).ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    /// Resolve the parent directory of a path; returns (parent ino, name).
    fn resolve_parent<'p>(&self, ctx: &Credentials, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (parents, name) = vpath::split_parent(path)?;
        let parent_path = vpath::join(&parents);
        let parent = self.resolve(ctx, &parent_path)?;
        let node = self.node(parent)?;
        if node.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        self.check(ctx, node, AM_EXEC)?;
        Ok((parent, name))
    }

    pub fn stat(&self, ctx: &Credentials, path: &str) -> FsResult<Stat> {
        Ok(self.node(self.resolve(ctx, path)?)?.stat())
    }

    pub fn mkdir(
        &mut self,
        ctx: &Credentials,
        path: &str,
        mode: u32,
        now: Nanos,
    ) -> FsResult<Stat> {
        let (parent, name) = self.resolve_parent(ctx, path)?;
        vpath::validate_name(name)?;
        self.check(ctx, self.node(parent)?, AM_WRITE | AM_EXEC)?;
        if self.node(parent)?.children.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.alloc_ino();
        let node = Node::new(ino, FileType::Directory, mode, ctx.uid, ctx.gid, now);
        let stat = node.stat();
        self.nodes.insert(ino, node);
        let p = self.node_mut(parent)?;
        p.children.insert(name.to_string(), ino);
        p.nlink += 1;
        p.mtime = now;
        Ok(stat)
    }

    /// Create a regular file (exclusive). Returns its inode number.
    pub fn create(
        &mut self,
        ctx: &Credentials,
        path: &str,
        mode: u32,
        now: Nanos,
    ) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(ctx, path)?;
        vpath::validate_name(name)?;
        self.check(ctx, self.node(parent)?, AM_WRITE | AM_EXEC)?;
        if self.node(parent)?.children.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.alloc_ino();
        self.nodes.insert(
            ino,
            Node::new(ino, FileType::Regular, mode, ctx.uid, ctx.gid, now),
        );
        let p = self.node_mut(parent)?;
        p.children.insert(name.to_string(), ino);
        p.mtime = now;
        Ok(ino)
    }

    pub fn symlink(
        &mut self,
        ctx: &Credentials,
        path: &str,
        target: &str,
        now: Nanos,
    ) -> FsResult<Stat> {
        let (parent, name) = self.resolve_parent(ctx, path)?;
        vpath::validate_name(name)?;
        self.check(ctx, self.node(parent)?, AM_WRITE | AM_EXEC)?;
        if self.node(parent)?.children.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.alloc_ino();
        let mut node = Node::new(ino, FileType::Symlink, 0o777, ctx.uid, ctx.gid, now);
        node.symlink_target = target.to_string();
        node.size = target.len() as u64;
        let stat = node.stat();
        self.nodes.insert(ino, node);
        let p = self.node_mut(parent)?;
        p.children.insert(name.to_string(), ino);
        p.mtime = now;
        Ok(stat)
    }

    pub fn readlink(&self, ctx: &Credentials, path: &str) -> FsResult<String> {
        let node = self.node(self.resolve(ctx, path)?)?;
        if node.ftype != FileType::Symlink {
            return Err(FsError::InvalidArgument);
        }
        Ok(node.symlink_target.clone())
    }

    pub fn readdir(&self, ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>> {
        let node = self.node(self.resolve(ctx, path)?)?;
        if node.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        self.check(ctx, node, AM_READ)?;
        node.children
            .iter()
            .map(|(name, &ino)| {
                Ok(DirEntry {
                    name: name.clone(),
                    ino,
                    ftype: self.node(ino)?.ftype,
                })
            })
            .collect()
    }

    /// Unlink a file/symlink; returns (ino, size) so the caller can drop
    /// the data objects.
    pub fn unlink(&mut self, ctx: &Credentials, path: &str, now: Nanos) -> FsResult<(Ino, u64)> {
        let (parent, name) = self.resolve_parent(ctx, path)?;
        let &ino = self
            .node(parent)?
            .children
            .get(name)
            .ok_or(FsError::NotFound)?;
        let victim = self.node(ino)?;
        if victim.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let victim_uid = victim.uid;
        let size = victim.size;
        let p = self.node(parent)?;
        perm::check_delete(ctx, p.uid, p.gid, p.mode, &p.acl, victim_uid)?;
        self.node_mut(parent)?.children.remove(name);
        self.node_mut(parent)?.mtime = now;
        self.nodes.remove(&ino);
        Ok((ino, size))
    }

    pub fn rmdir(&mut self, ctx: &Credentials, path: &str, now: Nanos) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(ctx, path)?;
        let &ino = self
            .node(parent)?
            .children
            .get(name)
            .ok_or(FsError::NotFound)?;
        let victim = self.node(ino)?;
        if victim.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        if !victim.children.is_empty() {
            return Err(FsError::NotEmpty);
        }
        let victim_uid = victim.uid;
        let p = self.node(parent)?;
        perm::check_delete(ctx, p.uid, p.gid, p.mode, &p.acl, victim_uid)?;
        self.node_mut(parent)?.children.remove(name);
        let p = self.node_mut(parent)?;
        p.nlink = p.nlink.saturating_sub(1);
        p.mtime = now;
        self.nodes.remove(&ino);
        Ok(())
    }

    pub fn rename(&mut self, ctx: &Credentials, from: &str, to: &str, now: Nanos) -> FsResult<()> {
        let from_comps = vpath::components(from)?;
        let to_comps = vpath::components(to)?;
        if from_comps == to_comps {
            return Ok(());
        }
        if from_comps.is_empty() || to_comps.is_empty() {
            return Err(FsError::InvalidArgument);
        }
        if vpath::is_prefix_of(&from_comps, &to_comps) {
            return Err(FsError::InvalidArgument);
        }
        let (src_parent, src_name) = self.resolve_parent(ctx, from)?;
        let (dst_parent, dst_name) = self.resolve_parent(ctx, to)?;
        let &ino = self
            .node(src_parent)?
            .children
            .get(src_name)
            .ok_or(FsError::NotFound)?;
        let moving = self.node(ino)?;
        let moving_is_dir = moving.ftype == FileType::Directory;
        let moving_uid = moving.uid;
        let sp = self.node(src_parent)?;
        perm::check_delete(ctx, sp.uid, sp.gid, sp.mode, &sp.acl, moving_uid)?;
        self.check(ctx, self.node(dst_parent)?, AM_WRITE | AM_EXEC)?;
        // Target handling.
        if let Some(&target) = self.node(dst_parent)?.children.get(dst_name) {
            let t = self.node(target)?;
            match (moving_is_dir, t.ftype == FileType::Directory) {
                (false, true) => return Err(FsError::IsADirectory),
                (true, false) => return Err(FsError::NotADirectory),
                (true, true) if !t.children.is_empty() => return Err(FsError::NotEmpty),
                _ => {
                    self.nodes.remove(&target);
                    if moving_is_dir {
                        let dp = self.node_mut(dst_parent)?;
                        dp.nlink = dp.nlink.saturating_sub(1);
                    }
                }
            }
        }
        self.node_mut(src_parent)?.children.remove(src_name);
        self.node_mut(src_parent)?.mtime = now;
        self.node_mut(dst_parent)?
            .children
            .insert(dst_name.to_string(), ino);
        self.node_mut(dst_parent)?.mtime = now;
        if moving_is_dir && src_parent != dst_parent {
            let sp = self.node_mut(src_parent)?;
            sp.nlink = sp.nlink.saturating_sub(1);
            self.node_mut(dst_parent)?.nlink += 1;
        }
        self.node_mut(ino)?.ctime = now;
        Ok(())
    }

    pub fn set_size(&mut self, ino: Ino, size: u64, now: Nanos) -> FsResult<u64> {
        let node = self.node_mut(ino)?;
        let old = node.size;
        node.size = size;
        node.mtime = now;
        Ok(old)
    }

    pub fn setattr(
        &mut self,
        ctx: &Credentials,
        path: &str,
        attr: &SetAttr,
        now: Nanos,
    ) -> FsResult<Stat> {
        let ino = self.resolve(ctx, path)?;
        let owner = self.node(ino)?.uid;
        let changing_owner = attr.uid.is_some() || attr.gid.is_some();
        perm::check_setattr(ctx, owner, changing_owner)?;
        let node = self.node_mut(ino)?;
        if let Some(mode) = attr.mode {
            node.mode = mode & 0o7777;
        }
        if let Some(uid) = attr.uid {
            node.uid = uid;
        }
        if let Some(gid) = attr.gid {
            node.gid = gid;
        }
        if let Some(atime) = attr.atime {
            node.atime = atime;
        }
        if let Some(mtime) = attr.mtime {
            node.mtime = mtime;
        }
        node.ctime = now;
        Ok(node.stat())
    }

    pub fn set_acl(
        &mut self,
        ctx: &Credentials,
        path: &str,
        acl: &Acl,
        now: Nanos,
    ) -> FsResult<()> {
        let ino = self.resolve(ctx, path)?;
        let owner = self.node(ino)?.uid;
        perm::check_setattr(ctx, owner, false)?;
        let node = self.node_mut(ino)?;
        node.acl = acl.clone();
        node.ctime = now;
        Ok(())
    }

    pub fn get_acl(&self, ctx: &Credentials, path: &str) -> FsResult<Acl> {
        Ok(self.node(self.resolve(ctx, path)?)?.acl.clone())
    }

    pub fn access(&self, ctx: &Credentials, path: &str, want: u8) -> FsResult<()> {
        let node = self.node(self.resolve(ctx, path)?)?;
        self.check(ctx, node, want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Credentials {
        Credentials::root()
    }

    #[test]
    fn basic_tree_operations() {
        let mut ns = Namespace::new();
        let ctx = root();
        ns.mkdir(&ctx, "/a", 0o755, 1).unwrap();
        let ino = ns.create(&ctx, "/a/f", 0o644, 2).unwrap();
        assert_eq!(ns.stat(&ctx, "/a/f").unwrap().ino, ino);
        ns.set_size(ino, 100, 3).unwrap();
        assert_eq!(ns.stat(&ctx, "/a/f").unwrap().size, 100);
        let entries = ns.readdir(&ctx, "/a").unwrap();
        assert_eq!(entries.len(), 1);
        let (gone, size) = ns.unlink(&ctx, "/a/f", 4).unwrap();
        assert_eq!((gone, size), (ino, 100));
        ns.rmdir(&ctx, "/a", 5).unwrap();
        assert!(ns.is_empty());
    }

    #[test]
    fn duplicate_and_missing_errors() {
        let mut ns = Namespace::new();
        let ctx = root();
        ns.mkdir(&ctx, "/a", 0o755, 0).unwrap();
        assert_eq!(
            ns.mkdir(&ctx, "/a", 0o755, 0).err(),
            Some(FsError::AlreadyExists)
        );
        ns.create(&ctx, "/a/f", 0o644, 0).unwrap();
        assert_eq!(
            ns.create(&ctx, "/a/f", 0o644, 0).err(),
            Some(FsError::AlreadyExists)
        );
        assert_eq!(ns.stat(&ctx, "/zz").err(), Some(FsError::NotFound));
        assert_eq!(ns.unlink(&ctx, "/a", 0).err(), Some(FsError::IsADirectory));
        assert_eq!(
            ns.rmdir(&ctx, "/a/f", 0).err(),
            Some(FsError::NotADirectory)
        );
        assert_eq!(ns.rmdir(&ctx, "/a", 0).err(), Some(FsError::NotEmpty));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut ns = Namespace::new();
        let ctx = root();
        ns.mkdir(&ctx, "/d1", 0o755, 0).unwrap();
        ns.mkdir(&ctx, "/d2", 0o755, 0).unwrap();
        let f = ns.create(&ctx, "/d1/f", 0o644, 0).unwrap();
        ns.rename(&ctx, "/d1/f", "/d2/g", 1).unwrap();
        assert_eq!(ns.stat(&ctx, "/d2/g").unwrap().ino, f);
        assert_eq!(ns.stat(&ctx, "/d1/f").err(), Some(FsError::NotFound));
        // Replace an existing file.
        let f2 = ns.create(&ctx, "/d2/h", 0o644, 0).unwrap();
        ns.rename(&ctx, "/d2/g", "/d2/h", 2).unwrap();
        assert_eq!(ns.stat(&ctx, "/d2/h").unwrap().ino, f);
        assert!(ns.node(f2).is_err());
        // Directory onto non-empty directory fails.
        ns.mkdir(&ctx, "/d3", 0o755, 0).unwrap();
        assert_eq!(
            ns.rename(&ctx, "/d3", "/d2", 3).err(),
            Some(FsError::NotEmpty)
        );
        // Into own subtree fails.
        ns.mkdir(&ctx, "/d3/sub", 0o755, 0).unwrap();
        assert_eq!(
            ns.rename(&ctx, "/d3", "/d3/sub/x", 3).err(),
            Some(FsError::InvalidArgument)
        );
        // Directory nlink bookkeeping.
        ns.rename(&ctx, "/d3", "/d2/d3moved", 4).unwrap();
        assert_eq!(ns.stat(&ctx, "/d2").unwrap().nlink, 3);
    }

    #[test]
    fn permissions_enforced() {
        let mut ns = Namespace::new();
        let ctx = root();
        let alice = Credentials::user(100);
        ns.mkdir(&ctx, "/locked", 0o700, 0).unwrap();
        assert_eq!(
            ns.create(&alice, "/locked/f", 0o644, 0).err(),
            Some(FsError::PermissionDenied)
        );
        assert_eq!(ns.stat(&alice, "/locked").unwrap().mode, 0o700); // stat of the dir itself ok
        assert_eq!(
            ns.readdir(&alice, "/locked").err(),
            Some(FsError::PermissionDenied)
        );
        // setattr by non-owner.
        ns.create(&ctx, "/f", 0o644, 0).unwrap();
        assert_eq!(
            ns.setattr(&alice, "/f", &SetAttr::chmod(0o777), 0).err(),
            Some(FsError::NotPermitted)
        );
    }

    #[test]
    fn symlinks_work() {
        let mut ns = Namespace::new();
        let ctx = root();
        ns.symlink(&ctx, "/ln", "/target", 0).unwrap();
        assert_eq!(ns.readlink(&ctx, "/ln").unwrap(), "/target");
        ns.create(&ctx, "/plain", 0o644, 0).unwrap();
        assert_eq!(
            ns.readlink(&ctx, "/plain").err(),
            Some(FsError::InvalidArgument)
        );
    }

    #[test]
    fn acl_support() {
        use arkfs_vfs::AclEntry;
        let mut ns = Namespace::new();
        let ctx = root();
        let bob = Credentials::user(7);
        ns.create(&ctx, "/f", 0o600, 0).unwrap();
        assert!(ns.access(&bob, "/f", AM_READ).is_err());
        ns.set_acl(&ctx, "/f", &Acl::new(vec![AclEntry::user(7, 0o4)]), 1)
            .unwrap();
        ns.access(&bob, "/f", AM_READ).unwrap();
        assert_eq!(ns.get_acl(&ctx, "/f").unwrap().entries.len(), 1);
    }
}
