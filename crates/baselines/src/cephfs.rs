//! CephFS simulator: centralized MDS cluster + direct OSD data path.
//!
//! Two mount types, as benchmarked in §IV: `CephFS-K` (kernel client:
//! metadata ops hit the MDS over the network, lookups served by kernel
//! caps/dcache) and `CephFS-F` (FUSE client: extra user↔kernel round
//! trips per request, the serialized FUSE LOOKUP lock, and a 128 KB
//! default max read-ahead instead of 8 MB).

use crate::datapath::{DataPath, RaState};
use crate::mds::{MdsCluster, MdsModel};
use crate::ns::Namespace;
use arkfs::cache::DataCache;
use arkfs_objstore::ObjectStore;
use arkfs_simkit::{ClusterSpec, Port, SharedResource};
use arkfs_vfs::{
    path as vpath, Acl, Credentials, DirEntry, FileHandle, FileType, FsError, FsResult, FsStats,
    OpenFlags, SetAttr, Stat, Vfs, AM_READ, AM_WRITE,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the client is mounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MountType {
    /// In-kernel client: no FUSE overhead, 8 MB max read-ahead.
    Kernel,
    /// FUSE client: per-request user↔kernel cost, serialized LOOKUP
    /// lock, 128 KB max read-ahead.
    Fuse,
}

/// One CephFS deployment: the shared MDS cluster + namespace + object
/// store ("OSDs").
pub struct CephFs {
    ns: Mutex<Namespace>,
    mds: MdsCluster,
    store: Arc<dyn ObjectStore>,
    spec: ClusterSpec,
    chunk_size: u64,
    /// The single ceph-fuse daemon all FUSE-mounted processes of a client
    /// node share: it serves one request at a time ("FUSE holds an
    /// exclusive kernel lock until the operation is completed by the
    /// user-space FUSE daemon", §IV-B).
    fuse_daemon: SharedResource,
}

impl CephFs {
    pub fn new(
        store: Arc<dyn ObjectStore>,
        mds_count: usize,
        spec: ClusterSpec,
        chunk_size: u64,
    ) -> Arc<Self> {
        let mds = MdsCluster::new(mds_count, MdsModel::ceph(&spec), &spec);
        Arc::new(CephFs {
            ns: Mutex::new(Namespace::new()),
            mds,
            store,
            spec,
            chunk_size,
            fuse_daemon: SharedResource::ideal("ceph-fuse"),
        })
    }

    pub fn mds(&self) -> &MdsCluster {
        &self.mds
    }

    /// Mount a new client.
    pub fn client(self: &Arc<Self>, mount: MountType) -> Arc<CephClient> {
        let max_ra = match mount {
            MountType::Kernel => 8 * 1024 * 1024,
            MountType::Fuse => 128 * 1024,
        };
        let max_ra = max_ra.min(self.chunk_size * 128);
        Arc::new(CephClient {
            shared: Arc::clone(self),
            mount,
            port: Port::new(),
            data: DataPath::new(Arc::clone(&self.store), self.chunk_size, max_ra),
            cache: Mutex::new(crate::datapath::counted_cache(&self.store, 256)),
            handles: Mutex::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
        })
    }
}

struct Handle {
    ino: arkfs_vfs::Ino,
    path: String,
    flags: OpenFlags,
    size: u64,
    wrote: bool,
    ra: RaState,
}

/// A mounted CephFS client.
pub struct CephClient {
    shared: Arc<CephFs>,
    mount: MountType,
    port: Port,
    data: DataPath,
    cache: Mutex<DataCache>,
    handles: Mutex<HashMap<u64, Handle>>,
    next_handle: AtomicU64,
}

fn dir_hint(path: &str) -> u64 {
    let parent = match path.rfind('/') {
        Some(0) | None => "/",
        Some(idx) => &path[..idx],
    };
    let mut h: u64 = 0xcbf29ce484222325;
    for b in parent.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl CephClient {
    pub fn port(&self) -> &Port {
        &self.port
    }

    /// Flush and drop the page cache (fio drop-caches step).
    pub fn drop_data_cache(&self) -> FsResult<()> {
        self.data.flush_all(&self.port, &self.cache)?;
        *self.cache.lock() = crate::datapath::counted_cache(&self.shared.store, 256);
        Ok(())
    }

    /// The shared store's telemetry, if the backend exposes one.
    pub fn telemetry(&self) -> Option<Arc<arkfs_telemetry::Telemetry>> {
        self.shared.store.telemetry().cloned()
    }

    pub fn mount(&self) -> MountType {
        self.mount
    }

    /// Charge one metadata operation on `path` (FUSE overhead + MDS
    /// round trip).
    fn charge_meta(&self, path: &str) {
        if self.mount == MountType::Fuse {
            let comps = vpath::components(path).map(|c| c.len()).unwrap_or(1);
            // One LOOKUP per component plus the operation itself, each
            // crossing user↔kernel and serialized at the single shared
            // ceph-fuse daemon of the client node.
            let cost = 3 * self.shared.spec.fuse_op_cost * (comps as u64 + 1);
            let done = self.shared.fuse_daemon.reserve(self.port.now(), cost);
            self.port.wait_until(done);
        }
        self.shared.mds.metadata_op(&self.port, dir_hint(path));
    }

    fn charge_io(&self) {
        if self.mount == MountType::Fuse {
            let done = self
                .shared
                .fuse_daemon
                .reserve(self.port.now(), self.shared.spec.fuse_op_cost);
            self.port.wait_until(done);
        }
    }

    fn handle_view(&self, fh: FileHandle) -> FsResult<(arkfs_vfs::Ino, u64, OpenFlags)> {
        let handles = self.handles.lock();
        let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
        Ok((h.ino, h.size, h.flags))
    }
}

impl Vfs for CephClient {
    fn mkdir(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<Stat> {
        self.charge_meta(path);
        self.shared
            .ns
            .lock()
            .mkdir(ctx, path, mode, self.port.now())
    }

    fn rmdir(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.charge_meta(path);
        self.shared.ns.lock().rmdir(ctx, path, self.port.now())
    }

    fn create(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<FileHandle> {
        self.charge_meta(path);
        let ino = self
            .shared
            .ns
            .lock()
            .create(ctx, path, mode, self.port.now())?;
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(
            id,
            Handle {
                ino,
                path: path.to_string(),
                flags: OpenFlags::RDWR,
                size: 0,
                wrote: false,
                ra: RaState::default(),
            },
        );
        Ok(FileHandle(id))
    }

    fn open(&self, ctx: &Credentials, path: &str, flags: OpenFlags) -> FsResult<FileHandle> {
        self.charge_meta(path);
        let (ino, mut size, ftype) = {
            let ns = self.shared.ns.lock();
            let ino = ns.resolve(ctx, path)?;
            let node = ns.node(ino)?;
            let mut want = 0u8;
            if flags.readable() {
                want |= AM_READ;
            }
            if flags.writable() {
                want |= AM_WRITE;
            }
            arkfs_vfs::perm::check_access(ctx, node.uid, node.gid, node.mode, &node.acl, want)?;
            (ino, node.size, node.ftype)
        };
        match ftype {
            FileType::Directory => return Err(FsError::IsADirectory),
            FileType::Symlink => {
                let target = self.shared.ns.lock().readlink(ctx, path)?;
                return self.open(ctx, &target, flags);
            }
            FileType::Regular => {}
        }
        if flags.is_trunc() && flags.writable() && size > 0 {
            self.shared.ns.lock().set_size(ino, 0, self.port.now())?;
            self.data.delete(&self.port, &self.cache, ino, size)?;
            size = 0;
        }
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(
            id,
            Handle {
                ino,
                path: path.to_string(),
                flags,
                size,
                wrote: false,
                ra: RaState::default(),
            },
        );
        Ok(FileHandle(id))
    }

    fn close(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.fsync(ctx, fh)?;
        self.handles
            .lock()
            .remove(&fh.0)
            .ok_or(FsError::BadHandle)?;
        Ok(())
    }

    fn read(
        &self,
        _ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize> {
        self.charge_io();
        let (ino, size, flags) = self.handle_view(fh)?;
        if !flags.readable() {
            return Err(FsError::BadAccessMode);
        }
        let mut ra = {
            let handles = self.handles.lock();
            handles.get(&fh.0).map(|h| h.ra).unwrap_or_default()
        };
        let n = self
            .data
            .read(&self.port, &self.cache, ino, offset, buf, size, &mut ra)?;
        if let Some(h) = self.handles.lock().get_mut(&fh.0) {
            h.ra = ra;
        }
        Ok(n)
    }

    fn write(
        &self,
        _ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        self.charge_io();
        let (ino, size, flags) = self.handle_view(fh)?;
        if !flags.writable() {
            return Err(FsError::BadAccessMode);
        }
        let offset = if flags.is_append() { size } else { offset };
        self.data
            .write(&self.port, &self.cache, ino, offset, data, size)?;
        let mut handles = self.handles.lock();
        if let Some(h) = handles.get_mut(&fh.0) {
            h.size = h.size.max(offset + data.len() as u64);
            h.wrote = true;
        }
        Ok(data.len())
    }

    fn fsync(&self, _ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.charge_io();
        let (ino, size, wrote, path) = {
            let handles = self.handles.lock();
            let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
            (h.ino, h.size, h.wrote, h.path.clone())
        };
        self.data.flush(&self.port, &self.cache, ino)?;
        if wrote {
            // Size/mtime updates flow through the MDS.
            self.charge_meta(&path);
            self.shared.ns.lock().set_size(ino, size, self.port.now())?;
            if let Some(h) = self.handles.lock().get_mut(&fh.0) {
                h.wrote = false;
            }
        }
        Ok(())
    }

    fn stat(&self, ctx: &Credentials, path: &str) -> FsResult<Stat> {
        self.charge_meta(path);
        let mut st = self.shared.ns.lock().stat(ctx, path)?;
        for h in self.handles.lock().values() {
            if h.ino == st.ino {
                st.size = st.size.max(h.size);
            }
        }
        Ok(st)
    }

    fn readdir(&self, ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>> {
        self.charge_meta(path);
        self.shared.ns.lock().readdir(ctx, path)
    }

    fn unlink(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.charge_meta(path);
        let (ino, size) = self.shared.ns.lock().unlink(ctx, path, self.port.now())?;
        self.data.delete(&self.port, &self.cache, ino, size)?;
        Ok(())
    }

    fn rename(&self, ctx: &Credentials, from: &str, to: &str) -> FsResult<()> {
        self.charge_meta(from);
        self.charge_meta(to);
        self.shared.ns.lock().rename(ctx, from, to, self.port.now())
    }

    fn truncate(&self, ctx: &Credentials, path: &str, size: u64) -> FsResult<()> {
        self.charge_meta(path);
        let (ino, old) = {
            let mut ns = self.shared.ns.lock();
            let ino = ns.resolve(ctx, path)?;
            if ns.node(ino)?.ftype == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            let old = ns.set_size(ino, size, self.port.now())?;
            (ino, old)
        };
        if size < old {
            self.data
                .truncate(&self.port, &self.cache, ino, old, size)?;
        }
        let mut handles = self.handles.lock();
        for h in handles.values_mut() {
            if h.ino == ino {
                h.size = size;
            }
        }
        Ok(())
    }

    fn setattr(&self, ctx: &Credentials, path: &str, attr: &SetAttr) -> FsResult<Stat> {
        self.charge_meta(path);
        self.shared
            .ns
            .lock()
            .setattr(ctx, path, attr, self.port.now())
    }

    fn symlink(&self, ctx: &Credentials, path: &str, target: &str) -> FsResult<Stat> {
        self.charge_meta(path);
        self.shared
            .ns
            .lock()
            .symlink(ctx, path, target, self.port.now())
    }

    fn readlink(&self, ctx: &Credentials, path: &str) -> FsResult<String> {
        self.charge_meta(path);
        self.shared.ns.lock().readlink(ctx, path)
    }

    fn set_acl(&self, ctx: &Credentials, path: &str, acl: &Acl) -> FsResult<()> {
        self.charge_meta(path);
        self.shared
            .ns
            .lock()
            .set_acl(ctx, path, acl, self.port.now())
    }

    fn get_acl(&self, ctx: &Credentials, path: &str) -> FsResult<Acl> {
        self.charge_meta(path);
        self.shared.ns.lock().get_acl(ctx, path)
    }

    fn access(&self, ctx: &Credentials, path: &str, mode: u8) -> FsResult<()> {
        self.charge_meta(path);
        self.shared.ns.lock().access(ctx, path, mode)
    }

    fn sync_all(&self, _ctx: &Credentials) -> FsResult<()> {
        self.data.flush_all(&self.port, &self.cache)?;
        let pending: Vec<(arkfs_vfs::Ino, u64, String)> = {
            let mut handles = self.handles.lock();
            handles
                .values_mut()
                .filter(|h| h.wrote)
                .map(|h| {
                    h.wrote = false;
                    (h.ino, h.size, h.path.clone())
                })
                .collect()
        };
        if !pending.is_empty() {
            // The kernel client coalesces dirty caps into one MDS
            // request flight at fsync; grant the FUSE daemon the same
            // single crossing. Batched with max-of-completions pricing
            // like ArkFS's metadata flush, so the comparison stays fair.
            if self.mount == MountType::Fuse {
                let cost = 3 * self.shared.spec.fuse_op_cost * 2;
                let done = self.shared.fuse_daemon.reserve(self.port.now(), cost);
                self.port.wait_until(done);
            }
            let hints: Vec<u64> = pending.iter().map(|(_, _, p)| dir_hint(p)).collect();
            self.shared.mds.metadata_ops_batched(&self.port, &hints);
            for (ino, size, _) in pending {
                self.shared.ns.lock().set_size(ino, size, self.port.now())?;
            }
        }
        Ok(())
    }

    fn statfs(&self, _ctx: &Credentials) -> FsResult<FsStats> {
        self.charge_meta("/");
        let inodes = self.shared.ns.lock().len() as u64;
        let (store_objects, store_bytes) = self.shared.store.usage();
        Ok(FsStats {
            inodes,
            store_objects,
            store_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use arkfs_vfs::{read_file, write_file};

    fn deployment(mds: usize) -> Arc<CephFs> {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        CephFs::new(store, mds, ClusterSpec::test_tiny(), 64)
    }

    #[test]
    fn full_posix_roundtrip_kernel_mount() {
        let fs = deployment(1);
        let c = fs.client(MountType::Kernel);
        let ctx = Credentials::root();
        c.mkdir(&ctx, "/d", 0o755).unwrap();
        write_file(&*c, &ctx, "/d/f", b"ceph data").unwrap();
        assert_eq!(read_file(&*c, &ctx, "/d/f").unwrap(), b"ceph data");
        assert_eq!(c.stat(&ctx, "/d/f").unwrap().size, 9);
        c.rename(&ctx, "/d/f", "/d/g").unwrap();
        assert_eq!(c.readdir(&ctx, "/d").unwrap()[0].name, "g");
        c.unlink(&ctx, "/d/g").unwrap();
        c.rmdir(&ctx, "/d").unwrap();
        assert!(c.port().now() > 0);
    }

    #[test]
    fn fuse_mount_is_slower_than_kernel() {
        let ctx = Credentials::root();
        let run = |mount| {
            let fs = deployment(1);
            let c = fs.client(mount);
            c.mkdir(&ctx, "/d", 0o755).unwrap();
            for i in 0..50 {
                write_file(&*c, &ctx, &format!("/d/f{i}"), b"").unwrap();
            }
            c.port().now()
        };
        let kernel = run(MountType::Kernel);
        let fuse = run(MountType::Fuse);
        assert!(fuse > kernel, "FUSE {fuse} must exceed kernel {kernel}");
    }

    #[test]
    fn multiple_clients_share_namespace() {
        let fs = deployment(1);
        let c1 = fs.client(MountType::Kernel);
        let c2 = fs.client(MountType::Kernel);
        let ctx = Credentials::root();
        c1.mkdir(&ctx, "/shared", 0o755).unwrap();
        write_file(&*c1, &ctx, "/shared/x", b"hello").unwrap();
        assert_eq!(read_file(&*c2, &ctx, "/shared/x").unwrap(), b"hello");
    }

    #[test]
    fn truncate_and_open_trunc() {
        let fs = deployment(1);
        let c = fs.client(MountType::Kernel);
        let ctx = Credentials::root();
        write_file(&*c, &ctx, "/t", &[5u8; 100]).unwrap();
        let fh = c.open(&ctx, "/t", OpenFlags::WRONLY.truncate()).unwrap();
        c.close(&ctx, fh).unwrap();
        assert_eq!(c.stat(&ctx, "/t").unwrap().size, 0);
    }

    #[test]
    fn mds_ops_are_counted() {
        let fs = deployment(1);
        let c = fs.client(MountType::Kernel);
        let ctx = Credentials::root();
        c.mkdir(&ctx, "/d", 0o755).unwrap();
        let before = fs.mds().ops_served();
        c.stat(&ctx, "/d").unwrap();
        assert_eq!(fs.mds().ops_served(), before + 1);
    }

    #[test]
    fn symlink_follow_on_open() {
        let fs = deployment(1);
        let c = fs.client(MountType::Kernel);
        let ctx = Credentials::root();
        write_file(&*c, &ctx, "/real", b"data").unwrap();
        c.symlink(&ctx, "/ln", "/real").unwrap();
        assert_eq!(read_file(&*c, &ctx, "/ln").unwrap(), b"data");
        assert_eq!(c.readlink(&ctx, "/ln").unwrap(), "/real");
    }
}
