//! goofys simulator: S3-backed, "extremely optimized for sequential
//! reads; the max read-ahead size is set to 400 MB" (§IV-B), streaming
//! multipart writes, weak POSIX (non-sequential writes rejected, as in
//! real goofys).

use crate::datapath::{DataPath, RaState};
use crate::pathfs::Bucket;
use arkfs::cache::DataCache;
use arkfs::prt::map_os_err;
use arkfs_objstore::ObjectKey;
use arkfs_simkit::{ClusterSpec, Port};
use arkfs_vfs::{
    Acl, Credentials, DirEntry, FileHandle, FileType, FsError, FsResult, Ino, OpenFlags, SetAttr,
    Stat, Vfs,
};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// goofys' famous read-ahead window.
pub const GOOFYS_READAHEAD: u64 = 400 * 1024 * 1024;

struct GoofysHandle {
    path: String,
    ino: Ino,
    size: u64,
    /// Streaming upload state: bytes buffered past the last full part.
    pending: Vec<u8>,
    next_part: u64,
    uploaded: u64,
    wrote: bool,
    ra: RaState,
}

/// One goofys client.
pub struct GoofysFs {
    bucket: Arc<Bucket>,
    spec: ClusterSpec,
    port: Port,
    data: DataPath,
    cache: Mutex<DataCache>,
    handles: Mutex<HashMap<u64, GoofysHandle>>,
    next_handle: AtomicU64,
}

impl GoofysFs {
    pub fn new(bucket: Arc<Bucket>, spec: ClusterSpec) -> Arc<Self> {
        Self::with_readahead(bucket, spec, GOOFYS_READAHEAD)
    }

    pub fn with_readahead(bucket: Arc<Bucket>, spec: ClusterSpec, readahead: u64) -> Arc<Self> {
        let part = bucket.part_size;
        let readahead = readahead.min(part * 1024);
        let data = DataPath::new(Arc::clone(bucket.store()), part, readahead);
        // Enough cache entries to hold a full read-ahead window.
        let entries = ((readahead / part) as usize + 8).max(16);
        let cache = crate::datapath::counted_cache(bucket.store(), entries);
        Arc::new(GoofysFs {
            bucket,
            spec,
            port: Port::new(),
            data,
            cache: Mutex::new(cache),
            handles: Mutex::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
        })
    }

    pub fn port(&self) -> &Port {
        &self.port
    }

    /// Drop the read cache (fio drop-caches step). goofys caches are
    /// read-only, so nothing needs flushing.
    pub fn drop_data_cache(&self) {
        let entries = {
            let c = self.cache.lock();
            let _ = &*c;
            ((self.data.max_readahead / self.bucket.part_size) as usize + 8).max(16)
        };
        *self.cache.lock() = crate::datapath::counted_cache(self.bucket.store(), entries);
    }

    /// The bucket store's telemetry, if the backend exposes one.
    pub fn telemetry(&self) -> Option<Arc<arkfs_telemetry::Telemetry>> {
        self.bucket.store().telemetry().cloned()
    }

    fn fuse(&self) {
        self.port.advance(self.spec.fuse_op_cost);
    }

    fn make_stat(entry: &crate::pathfs::BucketEntry) -> Stat {
        Stat {
            ino: entry.ino,
            ftype: if entry.is_dir {
                FileType::Directory
            } else {
                FileType::Regular
            },
            mode: 0o777,
            uid: 0,
            gid: 0,
            nlink: 1,
            size: entry.size,
            atime: entry.mtime,
            mtime: entry.mtime,
            ctime: entry.mtime,
        }
    }

    /// Flush full parts accumulated in the streaming buffer.
    fn stream_parts(&self, fh: FileHandle, finalize: bool) -> FsResult<()> {
        let part_size = self.bucket.part_size as usize;
        let puts: Vec<(ObjectKey, Bytes)> = {
            let mut handles = self.handles.lock();
            let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
            let mut puts = Vec::new();
            while h.pending.len() >= part_size || (finalize && !h.pending.is_empty()) {
                let n = part_size.min(h.pending.len());
                let part: Vec<u8> = h.pending.drain(..n).collect();
                h.uploaded += part.len() as u64;
                puts.push((ObjectKey::data_chunk(h.ino, h.next_part), Bytes::from(part)));
                h.next_part += 1;
            }
            puts
        };
        if puts.is_empty() {
            // Nothing accumulated a full part yet — don't charge a
            // store round trip for an empty flush.
            return Ok(());
        }
        for r in self.data.store().put_many(&self.port, puts) {
            r.map_err(map_os_err)?;
        }
        Ok(())
    }
}

impl Vfs for GoofysFs {
    fn mkdir(&self, _ctx: &Credentials, path: &str, _mode: u32) -> FsResult<Stat> {
        self.fuse();
        let entry = self.bucket.mkdir(&self.port, path, self.port.now())?;
        Ok(Self::make_stat(&entry))
    }

    fn rmdir(&self, _ctx: &Credentials, path: &str) -> FsResult<()> {
        self.fuse();
        self.bucket.rmdir(&self.port, path)
    }

    fn create(&self, _ctx: &Credentials, path: &str, _mode: u32) -> FsResult<FileHandle> {
        self.fuse();
        let entry = self.bucket.create(&self.port, path, self.port.now())?;
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(
            id,
            GoofysHandle {
                path: path.to_string(),
                ino: entry.ino,
                size: 0,
                pending: Vec::new(),
                next_part: 0,
                uploaded: 0,
                wrote: false,
                ra: RaState::default(),
            },
        );
        Ok(FileHandle(id))
    }

    fn open(&self, _ctx: &Credentials, path: &str, flags: OpenFlags) -> FsResult<FileHandle> {
        self.fuse();
        let entry = self.bucket.stat(&self.port, path)?;
        if entry.is_dir {
            return Err(FsError::IsADirectory);
        }
        if flags.is_trunc() && flags.writable() {
            self.bucket.delete_data(&self.port, entry.ino, entry.size)?;
            self.bucket.set_size(path, 0, self.port.now())?;
        }
        let size = if flags.is_trunc() && flags.writable() {
            0
        } else {
            entry.size
        };
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(
            id,
            GoofysHandle {
                path: path.to_string(),
                ino: entry.ino,
                size,
                pending: Vec::new(),
                next_part: 0,
                uploaded: 0,
                wrote: false,
                ra: RaState::default(),
            },
        );
        Ok(FileHandle(id))
    }

    fn close(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.fsync(ctx, fh)?;
        self.handles
            .lock()
            .remove(&fh.0)
            .ok_or(FsError::BadHandle)?;
        Ok(())
    }

    fn read(
        &self,
        _ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize> {
        self.fuse();
        let (ino, size) = {
            let handles = self.handles.lock();
            let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
            (h.ino, h.size)
        };
        let mut ra = {
            let handles = self.handles.lock();
            handles.get(&fh.0).map(|h| h.ra).unwrap_or_default()
        };
        let n = self
            .data
            .read(&self.port, &self.cache, ino, offset, buf, size, &mut ra)?;
        if let Some(h) = self.handles.lock().get_mut(&fh.0) {
            h.ra = ra;
        }
        Ok(n)
    }

    fn write(
        &self,
        _ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        self.fuse();
        {
            let mut handles = self.handles.lock();
            let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
            // Real goofys only supports sequential writes to new objects.
            if offset != h.size {
                return Err(FsError::Unsupported("goofys non-sequential write"));
            }
            h.pending.extend_from_slice(data);
            h.size += data.len() as u64;
            h.wrote = true;
        }
        self.stream_parts(fh, false)?;
        Ok(data.len())
    }

    fn fsync(&self, _ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.stream_parts(fh, true)?;
        let (wrote, size, path) = {
            let mut handles = self.handles.lock();
            let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
            let wrote = h.wrote;
            h.wrote = false;
            (wrote, h.size, h.path.clone())
        };
        if wrote {
            self.bucket.set_size(&path, size, self.port.now())?;
        }
        Ok(())
    }

    fn stat(&self, _ctx: &Credentials, path: &str) -> FsResult<Stat> {
        self.fuse();
        let entry = self.bucket.stat(&self.port, path)?;
        let mut st = Self::make_stat(&entry);
        for h in self.handles.lock().values() {
            if h.ino == st.ino {
                st.size = st.size.max(h.size);
            }
        }
        Ok(st)
    }

    fn readdir(&self, _ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>> {
        self.fuse();
        self.bucket.readdir(&self.port, path)
    }

    fn unlink(&self, _ctx: &Credentials, path: &str) -> FsResult<()> {
        self.fuse();
        let entry = self.bucket.unlink(&self.port, path)?;
        self.cache.lock().invalidate_file(entry.ino);
        Ok(())
    }

    fn rename(&self, _ctx: &Credentials, from: &str, to: &str) -> FsResult<()> {
        self.fuse();
        self.bucket.rename(&self.port, from, to, self.port.now())?;
        Ok(())
    }

    fn truncate(&self, _ctx: &Credentials, _path: &str, _size: u64) -> FsResult<()> {
        Err(FsError::Unsupported("goofys truncate"))
    }

    fn setattr(&self, _ctx: &Credentials, path: &str, _attr: &SetAttr) -> FsResult<Stat> {
        self.fuse();
        let entry = self.bucket.stat(&self.port, path)?;
        Ok(Self::make_stat(&entry))
    }

    fn symlink(&self, _ctx: &Credentials, _path: &str, _target: &str) -> FsResult<Stat> {
        Err(FsError::Unsupported("goofys symlink"))
    }

    fn readlink(&self, _ctx: &Credentials, _path: &str) -> FsResult<String> {
        Err(FsError::Unsupported("goofys readlink"))
    }

    fn set_acl(&self, _ctx: &Credentials, _path: &str, _acl: &Acl) -> FsResult<()> {
        Err(FsError::Unsupported("goofys acl"))
    }

    fn get_acl(&self, _ctx: &Credentials, path: &str) -> FsResult<Acl> {
        self.bucket.lookup(path)?;
        Ok(Acl::default())
    }

    fn access(&self, _ctx: &Credentials, path: &str, _mode: u8) -> FsResult<()> {
        self.bucket.lookup(path)?;
        Ok(())
    }

    fn sync_all(&self, ctx: &Credentials) -> FsResult<()> {
        let ids: Vec<u64> = self.handles.lock().keys().copied().collect();
        for id in ids {
            self.fsync(ctx, FileHandle(id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster, StoreProfile};
    use arkfs_vfs::{read_file, write_file};

    fn client() -> Arc<GoofysFs> {
        let mut cfg = ClusterConfig::test_tiny();
        cfg.profile = StoreProfile::s3(&cfg.spec);
        let store = Arc::new(ObjectCluster::new(cfg));
        let bucket = Bucket::new(store, 64);
        GoofysFs::with_readahead(bucket, ClusterSpec::test_tiny(), 256)
    }

    #[test]
    fn sequential_write_then_read() {
        let c = client();
        let ctx = Credentials::root();
        c.mkdir(&ctx, "/d", 0o755).unwrap();
        let payload: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        write_file(&*c, &ctx, "/d/f", &payload).unwrap();
        assert_eq!(read_file(&*c, &ctx, "/d/f").unwrap(), payload);
    }

    #[test]
    fn non_sequential_writes_rejected() {
        let c = client();
        let ctx = Credentials::root();
        let fh = c.create(&ctx, "/f", 0o644).unwrap();
        c.write(&ctx, fh, 0, b"abc").unwrap();
        assert!(matches!(
            c.write(&ctx, fh, 100, b"x"),
            Err(FsError::Unsupported("goofys non-sequential write"))
        ));
        c.close(&ctx, fh).unwrap();
    }

    #[test]
    fn parts_stream_during_write() {
        let c = client();
        let ctx = Credentials::root();
        let fh = c.create(&ctx, "/big", 0o644).unwrap();
        // 200 bytes with 64-byte parts: 3 parts stream before close.
        c.write(&ctx, fh, 0, &[1u8; 200]).unwrap();
        let uploaded = {
            let handles = c.handles.lock();
            handles.values().next().unwrap().uploaded
        };
        assert_eq!(uploaded, 192, "three full parts uploaded eagerly");
        c.close(&ctx, fh).unwrap();
        assert_eq!(c.stat(&ctx, "/big").unwrap().size, 200);
    }

    #[test]
    fn weak_posix_surface() {
        let c = client();
        let ctx = Credentials::root();
        assert!(matches!(
            c.truncate(&ctx, "/x", 0),
            Err(FsError::Unsupported(_))
        ));
        assert!(matches!(
            c.symlink(&ctx, "/a", "/b"),
            Err(FsError::Unsupported(_))
        ));
    }
}
