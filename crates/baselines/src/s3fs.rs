//! S3FS simulator: "just a FUSE-based wrapper layer over the Amazon S3
//! cloud storage" (§II-C).
//!
//! The properties that shape its numbers in Figure 6(b):
//! * a slow local **disk cache** stages every byte twice — on write, data
//!   lands on disk and is uploaded at fsync; on read, the whole object is
//!   downloaded to disk before a single byte is served;
//! * whole-object semantics — partial writes rewrite the object,
//!   renames copy it ([`Bucket::rename`]);
//! * permission checks "not done rigorously" — none are enforced.

use crate::pathfs::Bucket;
use arkfs_simkit::{BandwidthResource, ClusterSpec, Port};
use arkfs_vfs::{
    Acl, Credentials, DirEntry, FileHandle, FileType, FsError, FsResult, Ino, Nanos, OpenFlags,
    SetAttr, Stat, Vfs,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default bandwidth of the local disk-cache device. The paper's client
/// nodes stage through node-local EBS shared by all benchmark processes,
/// so the per-process share is well below a dedicated volume.
pub const S3FS_DISK_BW: u64 = 120_000_000;

struct S3Handle {
    path: String,
    ino: Ino,
    size: u64,
    buf: Vec<u8>,
    loaded: bool,
    dirty: bool,
}

/// One S3FS client (its own FUSE daemon + disk cache).
pub struct S3Fs {
    bucket: Arc<Bucket>,
    spec: ClusterSpec,
    port: Port,
    disk: BandwidthResource,
    handles: Mutex<HashMap<u64, S3Handle>>,
    next_handle: AtomicU64,
}

impl S3Fs {
    pub fn new(bucket: Arc<Bucket>, spec: ClusterSpec) -> Arc<Self> {
        Self::with_disk_bw(bucket, spec, S3FS_DISK_BW)
    }

    pub fn with_disk_bw(bucket: Arc<Bucket>, spec: ClusterSpec, disk_bw: u64) -> Arc<Self> {
        Arc::new(S3Fs {
            bucket,
            spec,
            port: Port::new(),
            disk: BandwidthResource::new("s3fs-disk", disk_bw),
            handles: Mutex::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
        })
    }

    pub fn port(&self) -> &Port {
        &self.port
    }

    /// The bucket store's telemetry, if the backend exposes one.
    pub fn telemetry(&self) -> Option<Arc<arkfs_telemetry::Telemetry>> {
        self.bucket.store().telemetry().cloned()
    }

    fn fuse(&self) {
        self.port.advance(self.spec.fuse_op_cost);
    }

    fn disk_io(&self, bytes: u64) {
        let done = self.disk.transfer(self.port.now(), bytes);
        self.port.wait_until(done);
    }

    fn now(&self) -> Nanos {
        self.port.now()
    }

    fn make_stat(entry: &crate::pathfs::BucketEntry) -> Stat {
        Stat {
            ino: entry.ino,
            ftype: if entry.is_dir {
                FileType::Directory
            } else {
                FileType::Regular
            },
            // S3FS fakes liberal modes; checks are not rigorous.
            mode: 0o777,
            uid: 0,
            gid: 0,
            nlink: 1,
            size: entry.size,
            atime: entry.mtime,
            mtime: entry.mtime,
            ctime: entry.mtime,
        }
    }

    /// Pull the whole object into the disk cache on first touch.
    fn ensure_loaded(&self, fh: FileHandle) -> FsResult<()> {
        let (ino, size, loaded) = {
            let handles = self.handles.lock();
            let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
            (h.ino, h.size, h.loaded)
        };
        if loaded {
            return Ok(());
        }
        let data = self.bucket.download(&self.port, ino, size)?;
        self.disk_io(size); // staging write to the disk cache
        let mut handles = self.handles.lock();
        let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
        h.buf = data;
        h.loaded = true;
        Ok(())
    }
}

impl Vfs for S3Fs {
    fn mkdir(&self, _ctx: &Credentials, path: &str, _mode: u32) -> FsResult<Stat> {
        self.fuse();
        let entry = self.bucket.mkdir(&self.port, path, self.now())?;
        Ok(Self::make_stat(&entry))
    }

    fn rmdir(&self, _ctx: &Credentials, path: &str) -> FsResult<()> {
        self.fuse();
        self.bucket.rmdir(&self.port, path)
    }

    fn create(&self, _ctx: &Credentials, path: &str, _mode: u32) -> FsResult<FileHandle> {
        self.fuse();
        let entry = self.bucket.create(&self.port, path, self.now())?;
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles.lock().insert(
            id,
            S3Handle {
                path: path.to_string(),
                ino: entry.ino,
                size: 0,
                buf: Vec::new(),
                loaded: true,
                dirty: false,
            },
        );
        Ok(FileHandle(id))
    }

    fn open(&self, _ctx: &Credentials, path: &str, flags: OpenFlags) -> FsResult<FileHandle> {
        self.fuse();
        let entry = self.bucket.stat(&self.port, path)?;
        if entry.is_dir {
            return Err(FsError::IsADirectory);
        }
        let id = self.next_handle.fetch_add(1, Ordering::Relaxed);
        let trunc = flags.is_trunc() && flags.writable();
        self.handles.lock().insert(
            id,
            S3Handle {
                path: path.to_string(),
                ino: entry.ino,
                size: if trunc { 0 } else { entry.size },
                buf: Vec::new(),
                loaded: trunc,
                dirty: trunc,
            },
        );
        Ok(FileHandle(id))
    }

    fn close(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.fsync(ctx, fh)?;
        self.handles
            .lock()
            .remove(&fh.0)
            .ok_or(FsError::BadHandle)?;
        Ok(())
    }

    fn read(
        &self,
        _ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize> {
        self.fuse();
        self.ensure_loaded(fh)?;
        let handles = self.handles.lock();
        let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
        if offset >= h.buf.len() as u64 {
            return Ok(0);
        }
        let n = buf.len().min(h.buf.len() - offset as usize);
        buf[..n].copy_from_slice(&h.buf[offset as usize..offset as usize + n]);
        drop(handles);
        self.disk_io(n as u64); // served from the disk cache
        Ok(n)
    }

    fn write(
        &self,
        _ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        self.fuse();
        self.ensure_loaded(fh)?;
        self.disk_io(data.len() as u64); // staged on disk
        let mut handles = self.handles.lock();
        let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
        let end = offset as usize + data.len();
        if h.buf.len() < end {
            h.buf.resize(end, 0);
        }
        h.buf[offset as usize..end].copy_from_slice(data);
        h.size = h.size.max(end as u64);
        h.dirty = true;
        Ok(data.len())
    }

    fn fsync(&self, _ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        let (ino, dirty, size, path, data) = {
            let mut handles = self.handles.lock();
            let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
            let dirty = h.dirty;
            h.dirty = false;
            (
                h.ino,
                dirty,
                h.size,
                h.path.clone(),
                if dirty { h.buf.clone() } else { Vec::new() },
            )
        };
        if dirty {
            // Read back from the disk cache, then upload the whole object.
            self.disk_io(size);
            self.bucket.upload(&self.port, ino, &data)?;
            self.bucket.set_size(&path, size, self.now())?;
        }
        Ok(())
    }

    fn stat(&self, _ctx: &Credentials, path: &str) -> FsResult<Stat> {
        self.fuse();
        let entry = self.bucket.stat(&self.port, path)?;
        let mut st = Self::make_stat(&entry);
        for h in self.handles.lock().values() {
            if h.ino == st.ino {
                st.size = st.size.max(h.size);
            }
        }
        Ok(st)
    }

    fn readdir(&self, _ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>> {
        self.fuse();
        self.bucket.readdir(&self.port, path)
    }

    fn unlink(&self, _ctx: &Credentials, path: &str) -> FsResult<()> {
        self.fuse();
        self.bucket.unlink(&self.port, path)?;
        Ok(())
    }

    fn rename(&self, _ctx: &Credentials, from: &str, to: &str) -> FsResult<()> {
        self.fuse();
        self.bucket.rename(&self.port, from, to, self.now())?;
        Ok(())
    }

    fn truncate(&self, _ctx: &Credentials, path: &str, size: u64) -> FsResult<()> {
        self.fuse();
        let entry = self.bucket.stat(&self.port, path)?;
        if entry.is_dir {
            return Err(FsError::IsADirectory);
        }
        // Whole-object rewrite.
        let mut data = self.bucket.download(&self.port, entry.ino, entry.size)?;
        data.resize(size as usize, 0);
        self.bucket.upload(&self.port, entry.ino, &data)?;
        if size < entry.size {
            // Drop now-orphaned tail parts in one batched multi-DELETE.
            let keep = size.div_ceil(self.bucket.part_size);
            let dead: Vec<arkfs_objstore::ObjectKey> =
                (keep..entry.size.div_ceil(self.bucket.part_size))
                    .map(|part| arkfs_objstore::ObjectKey::data_chunk(entry.ino, part))
                    .collect();
            if !dead.is_empty() {
                let _ = self.bucket.store().delete_many(&self.port, &dead);
            }
        }
        self.bucket.set_size(path, size, self.now())
    }

    fn setattr(&self, _ctx: &Credentials, path: &str, attr: &SetAttr) -> FsResult<Stat> {
        self.fuse();
        // S3FS stores attrs as object metadata; modes are not enforced.
        let entry = self.bucket.stat(&self.port, path)?;
        let mut st = Self::make_stat(&entry);
        if let Some(mode) = attr.mode {
            st.mode = mode;
        }
        Ok(st)
    }

    fn symlink(&self, _ctx: &Credentials, _path: &str, _target: &str) -> FsResult<Stat> {
        Err(FsError::Unsupported("s3fs symlink"))
    }

    fn readlink(&self, _ctx: &Credentials, _path: &str) -> FsResult<String> {
        Err(FsError::Unsupported("s3fs readlink"))
    }

    fn set_acl(&self, _ctx: &Credentials, _path: &str, _acl: &Acl) -> FsResult<()> {
        Err(FsError::Unsupported("s3fs acl"))
    }

    fn get_acl(&self, _ctx: &Credentials, path: &str) -> FsResult<Acl> {
        self.bucket.stat(&self.port, path)?;
        Ok(Acl::default())
    }

    fn access(&self, _ctx: &Credentials, path: &str, _mode: u8) -> FsResult<()> {
        // "Permission check is not done rigorously" — existence only.
        self.bucket.lookup(path)?;
        Ok(())
    }

    fn sync_all(&self, ctx: &Credentials) -> FsResult<()> {
        let ids: Vec<u64> = self.handles.lock().keys().copied().collect();
        for id in ids {
            self.fsync(ctx, FileHandle(id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster, StoreProfile};
    use arkfs_vfs::{read_file, write_file};

    fn client() -> Arc<S3Fs> {
        let mut cfg = ClusterConfig::test_tiny();
        cfg.profile = StoreProfile::s3(&cfg.spec);
        let store = Arc::new(ObjectCluster::new(cfg));
        let bucket = Bucket::new(store, 64);
        S3Fs::new(bucket, ClusterSpec::test_tiny())
    }

    #[test]
    fn write_read_roundtrip_through_disk_cache() {
        let c = client();
        let ctx = Credentials::root();
        c.mkdir(&ctx, "/d", 0o755).unwrap();
        let payload: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        write_file(&*c, &ctx, "/d/f", &payload).unwrap();
        assert_eq!(read_file(&*c, &ctx, "/d/f").unwrap(), payload);
        assert!(c.port().now() > 0);
    }

    #[test]
    fn random_write_rewrites_whole_object() {
        let c = client();
        let ctx = Credentials::root();
        write_file(&*c, &ctx, "/f", &[1u8; 200]).unwrap();
        let fh = c.open(&ctx, "/f", OpenFlags::RDWR).unwrap();
        c.write(&ctx, fh, 50, &[9u8; 10]).unwrap();
        c.close(&ctx, fh).unwrap();
        let data = read_file(&*c, &ctx, "/f").unwrap();
        assert_eq!(data.len(), 200);
        assert!(data[50..60].iter().all(|&b| b == 9));
        assert!(data[..50].iter().all(|&b| b == 1));
    }

    #[test]
    fn permissive_access() {
        let c = client();
        let nobody = Credentials::user(999);
        write_file(&*c, &nobody, "/f", b"x").unwrap();
        c.access(&nobody, "/f", 0o7).unwrap();
        assert_eq!(c.stat(&nobody, "/f").unwrap().mode, 0o777);
    }

    #[test]
    fn truncate_whole_object() {
        let c = client();
        let ctx = Credentials::root();
        write_file(&*c, &ctx, "/t", &[7u8; 150]).unwrap();
        c.truncate(&ctx, "/t", 70).unwrap();
        let data = read_file(&*c, &ctx, "/t").unwrap();
        assert_eq!(data.len(), 70);
        assert!(data.iter().all(|&b| b == 7));
    }
}
