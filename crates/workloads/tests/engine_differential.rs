//! Differential property tests: the discrete-event engine and the
//! legacy one-OS-thread-per-client pool must be *functionally*
//! equivalent drivers. Both execute the same per-client op streams
//! against real file system code; only the interleaving discipline
//! differs (causal virtual-time order vs. host scheduler whim). So for
//! any workload the final namespace and every client's per-op outcome
//! sequence must be identical — on both object-store profiles, since
//! S3's whole-object rewrite semantics exercise different error paths
//! than RADOS.

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster, StoreProfile};
use arkfs_vfs::{Credentials, FileType};
use arkfs_workloads::fio::{fio, FioConfig};
use arkfs_workloads::mdtest::{mdtest_easy, mdtest_hard, MdtestEasyConfig, MdtestHardConfig};
use arkfs_workloads::{gen_iter, run_ops, Drive, Op, OpGen, SimClient};
use std::sync::Arc;

fn cluster_config(profile: &str) -> ClusterConfig {
    let mut cfg = ClusterConfig::test_tiny();
    if profile == "s3" {
        cfg.profile = StoreProfile::s3(&cfg.spec);
    }
    cfg
}

fn ark_fleet(profile: &str, n: usize) -> Vec<Arc<dyn SimClient>> {
    let store = Arc::new(ObjectCluster::new(cluster_config(profile)));
    let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
    (0..n)
        .map(|_| cluster.client() as Arc<dyn SimClient>)
        .collect()
}

/// Recursive namespace dump: every path with its type, size, and link
/// count, sorted. Two runs that produce the same dump ended in the same
/// file system state.
fn namespace_dump(client: &Arc<dyn SimClient>) -> Vec<String> {
    let ctx = Credentials::root();
    let mut out = Vec::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        let mut entries = client.readdir(&ctx, &dir).expect("readdir");
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for e in entries {
            let path = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{dir}/{}", e.name)
            };
            let st = client.stat(&ctx, &path).expect("stat");
            out.push(format!("{path} {:?} {} {}", st.ftype, st.size, st.nlink));
            if e.ftype == FileType::Directory {
                stack.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Mixed op streams with deliberate error cases (stats of files another
/// client may not have created yet in wall-clock order, double creates,
/// unlinks of absent paths) so outcome sequences actually discriminate.
fn mixed_gens(n: usize, per: u64) -> Vec<Box<dyn OpGen>> {
    (0..n)
        .map(|i| {
            gen_iter((0..per).flat_map(move |j| {
                [
                    Op::Create {
                        path: format!("/mix/p{i}-f{j}"),
                    },
                    // Duplicate create: always an error.
                    Op::Create {
                        path: format!("/mix/p{i}-f{j}"),
                    },
                    Op::Stat {
                        path: format!("/mix/p{i}-f{j}"),
                    },
                    // Absent path: always an error.
                    Op::Unlink {
                        path: format!("/mix/p{i}-missing{j}"),
                    },
                ]
                .into_iter()
            }))
        })
        .collect()
}

#[test]
fn engine_and_threads_agree_on_mixed_ops_both_profiles() {
    for profile in ["rados", "s3"] {
        let run = |drive: Drive| {
            let clients = ark_fleet(profile, 4);
            clients[0]
                .mkdir(&Credentials::root(), "/mix", 0o755)
                .unwrap();
            let report = run_ops(&clients, mixed_gens(4, 8), drive, None);
            (report.outcomes, namespace_dump(&clients[0]))
        };
        let (eng_out, eng_ns) = run(Drive::Engine);
        let (thr_out, thr_ns) = run(Drive::Threads);
        assert_eq!(eng_out, thr_out, "per-client outcomes diverge on {profile}");
        assert_eq!(eng_ns, thr_ns, "final namespace diverges on {profile}");
        assert!(!eng_ns.is_empty());
    }
}

#[test]
fn engine_and_threads_agree_on_mdtest_easy_both_profiles() {
    for profile in ["rados", "s3"] {
        let run = |drive: Drive| {
            let clients = ark_fleet(profile, 3);
            let cfg = MdtestEasyConfig {
                files_total: 24,
                create_only: true,
                drive,
            };
            let result = mdtest_easy(&clients, &cfg).unwrap();
            (result.errors, namespace_dump(&clients[0]))
        };
        let (eng_err, eng_ns) = run(Drive::Engine);
        let (thr_err, thr_ns) = run(Drive::Threads);
        assert_eq!(eng_err, thr_err, "errors diverge on {profile}");
        assert_eq!(eng_ns, thr_ns, "namespace diverges on {profile}");
        // 24 files + parent + 3 per-proc dirs.
        assert_eq!(eng_ns.len(), 28);
    }
}

#[test]
fn engine_and_threads_agree_on_mdtest_hard() {
    let run = |drive: Drive| {
        let clients = ark_fleet("rados", 4);
        let cfg = MdtestHardConfig {
            files_total: 32,
            dirs: 4,
            file_size: 96,
            seed: 9,
            drive,
        };
        // WRITE/STAT/READ run; DELETE too — final namespace is the
        // empty directory pool, so also compare per-phase error counts.
        let result = mdtest_hard(&clients, &cfg).unwrap();
        (result.errors, namespace_dump(&clients[0]))
    };
    let (eng_err, eng_ns) = run(Drive::Engine);
    let (thr_err, thr_ns) = run(Drive::Threads);
    assert_eq!(eng_err, thr_err);
    assert_eq!(eng_ns, thr_ns);
}

#[test]
fn engine_and_threads_agree_on_fio() {
    let run = |drive: Drive| {
        let clients = ark_fleet("rados", 2);
        let cfg = FioConfig {
            file_size: 4096,
            request_size: 512,
            drive,
        };
        let r = fio(&clients, &cfg).unwrap();
        (r.bytes, namespace_dump(&clients[0]))
    };
    let (eng_bytes, eng_ns) = run(Drive::Engine);
    let (thr_bytes, thr_ns) = run(Drive::Threads);
    assert_eq!(eng_bytes, thr_bytes);
    assert_eq!(eng_ns, thr_ns);
}

#[test]
fn engine_runs_are_bit_identical_across_repeats() {
    // Beyond thread-vs-engine equivalence: the engine alone must be
    // fully deterministic, including virtual-time phase results.
    let run = || {
        let clients = ark_fleet("rados", 4);
        let cfg = MdtestEasyConfig {
            files_total: 32,
            create_only: false,
            drive: Drive::Engine,
        };
        let result = mdtest_easy(&clients, &cfg).unwrap();
        (result.phases, namespace_dump(&clients[0]))
    };
    assert_eq!(run(), run());
}
