//! Sampled causal tracing must be deterministic: the sampling decision
//! is a modulus on the per-client op sequence (never the seeded RNG
//! streams), every span carries virtual-time stamps, and the event
//! engine interleaves clients in causal order — so two identical runs
//! must produce *identical* span graphs, span for span, and therefore
//! identical critical-path attributions. This is what lets the traced
//! fig9 curve regenerate byte-for-byte.

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_telemetry::{critpath, SpanEvent};
use arkfs_vfs::{Credentials, Vfs};
use arkfs_workloads::{gen_iter, run_ops, Drive, Op, OpGen, SimClient, Zipf};
use std::sync::Arc;

const CLIENTS: usize = 256;
const DIRS: usize = 32;
const OPS_PER_CLIENT: u64 = 16;
const SAMPLE_EVERY: u64 = 8;

/// One fig9-style run: 256 engine-driven clients create into a
/// zipf-skewed directory pool with head-sampled tracing on. Returns the
/// full span graph.
fn traced_run() -> Vec<SpanEvent> {
    let ctx = Credentials::root();
    let config = ArkConfig::default();
    let store_cfg = ClusterConfig::rados(config.spec.clone()).with_discard_payload(true);
    let cluster = ArkCluster::new(config, Arc::new(ObjectCluster::new(store_cfg)));
    cluster.telemetry().tracer.set_sample_every(SAMPLE_EVERY);
    cluster.telemetry().tracer.set_enabled(true);

    let admin = cluster.client();
    admin.mkdir(&ctx, "/zipf", 0o755).unwrap();
    for d in 0..DIRS {
        admin.mkdir(&ctx, &format!("/zipf/d{d}"), 0o755).unwrap();
    }
    admin.sync_all(&ctx).unwrap();
    admin.release_all(&ctx).unwrap();

    let clients: Vec<Arc<dyn SimClient>> = (0..CLIENTS)
        .map(|_| cluster.client() as Arc<dyn SimClient>)
        .collect();
    let gens: Vec<Box<dyn OpGen>> = (0..CLIENTS)
        .map(|i| {
            let mut zipf = Zipf::new(DIRS, 0.9, 0xF19 ^ (i as u64).wrapping_mul(0x9E37));
            gen_iter((0..OPS_PER_CLIENT).map(move |j| Op::Create {
                path: format!("/zipf/d{}/c{i}-f{j}", zipf.sample()),
            }))
        })
        .collect();
    let report = run_ops(&clients, gens, Drive::Engine, None);
    assert_eq!(report.total_errors(), 0, "zipf creates failed");
    for c in &clients {
        let _ = c.sync_all(&ctx);
    }
    cluster.telemetry().tracer.events()
}

#[test]
fn sampled_traced_runs_produce_identical_span_graphs() {
    let a = traced_run();
    let b = traced_run();
    assert!(
        a.iter().any(|s| s.trace_id != 0),
        "sampling produced no causal spans"
    );
    assert_eq!(a.len(), b.len(), "span counts diverge between runs");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "span {i} diverges between identical runs");
    }
    // Identical graphs must analyze identically. The sampled trace
    // count is itself deterministic: each workload op is a traced
    // create followed by a traced close, so a client's op sequence
    // alternates create (even seq) / close (odd seq) and sampling every
    // 8th seq lands on creates only — 2*16/8 = 4 per client.
    let bd_a = critpath::analyze(&a);
    let bd_b = critpath::analyze(&b);
    assert_eq!(bd_a, bd_b);
    let creates = bd_a.iter().filter(|x| x.root_name == "op.create").count();
    let expected = CLIENTS * (2 * OPS_PER_CLIENT as usize / SAMPLE_EVERY as usize);
    assert_eq!(creates, expected);
    for x in &bd_a {
        assert_eq!(x.segs.iter().sum::<u64>(), x.total);
    }
}
