//! Seeded Zipf-distributed directory popularity.
//!
//! A deep-learning dataset directory does not spread file churn
//! uniformly: a handful of class/shard directories absorb most of the
//! small-file storm (FalconFS's motivating workload), which is exactly
//! the regime that stresses hot-directory partitioning and commit-lane
//! backpressure. [`Zipf`] samples ranks `0..n` with
//! `P(k) ∝ 1 / (k+1)^s`, deterministically per seed, via inverse-CDF
//! binary search — O(log n) per sample, O(n) setup.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seeded Zipf(n, s) sampler over ranks `0..n` (rank 0 hottest).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[k]` = P(rank <= k); last is 1.0.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s >= 0` (`s = 0`
    /// is uniform; the bench default `s = 0.9` is web/dataset-like
    /// skew).
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw the next rank in `0..n`.
    pub fn sample(&mut self) -> usize {
        // 53-bit uniform in [0, 1).
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(n: usize, s: f64, seed: u64, draws: usize) -> Vec<u64> {
        let mut z = Zipf::new(n, s, seed);
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[z.sample()] += 1;
        }
        counts
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(counts(64, 0.9, 7, 10_000), counts(64, 0.9, 7, 10_000));
        assert_ne!(counts(64, 0.9, 7, 10_000), counts(64, 0.9, 8, 10_000));
    }

    #[test]
    fn skew_matches_exponent() {
        // s = 0.9 over 256 ranks: rank 0 gets ~13.5% of the mass
        // (1 / H_{256,0.9}); uniform would give 0.39%.
        let c = counts(256, 0.9, 42, 100_000);
        let hot = c[0] as f64 / 100_000.0;
        assert!(hot > 0.10 && hot < 0.18, "rank-0 share {hot}");
        // Monotone head: the top ranks dominate the tail.
        let head: u64 = c[..16].iter().sum();
        let tail: u64 = c[240..].iter().sum();
        assert!(head > 20 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let c = counts(16, 0.0, 3, 160_000);
        for (k, &v) in c.iter().enumerate() {
            let share = v as f64 / 160_000.0;
            assert!((share - 1.0 / 16.0).abs() < 0.01, "rank {k} share {share}");
        }
    }

    #[test]
    fn all_ranks_reachable_and_bounded() {
        let mut z = Zipf::new(4, 2.0, 1);
        let mut seen = [false; 4];
        for _ in 0..100_000 {
            seen[z.sample()] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        assert_eq!(z.ranks(), 4);
    }
}
