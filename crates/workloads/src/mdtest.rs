//! The mdtest benchmark in its two IO500 configurations (§IV-B).
//!
//! * **mdtest-easy** — CREATE / STAT / DELETE of empty files, each
//!   process working in its own leaf directory.
//! * **mdtest-hard** — WRITE / STAT / READ / DELETE of 3901-byte files
//!   spread over a shared directory pool, each operation hitting an
//!   arbitrary directory ("simulating the usage in a shared directory
//!   environment").
//!
//! `fsync()` is called after each phase, flushing all modifications to
//! the underlying storage, exactly as in §IV-B.
//!
//! Each phase is expressed as one resumable op generator per process
//! (see [`crate::ops`]) and driven by [`run_ops`] — by default on the
//! discrete-event engine, which multiplexes the whole fleet on one host
//! thread in causal virtual-time order and makes every phase
//! deterministic; `Drive::Threads` keeps the legacy
//! one-OS-thread-per-client pool as a differential oracle.

use crate::client::{barrier, SimClient};
use crate::drive::{run_ops, Drive};
use crate::ops::{gen_iter, Op, OpGen};
use arkfs_simkit::{PhaseResult, ThroughputMeter};
use arkfs_vfs::{Credentials, FsResult};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// mdtest-easy parameters.
#[derive(Debug, Clone)]
pub struct MdtestEasyConfig {
    /// Total files across all processes (paper: 1 million).
    pub files_total: u64,
    /// Only run the CREATE phase (the Fig. 1 / Fig. 7 scalability test).
    pub create_only: bool,
    /// Which driver executes the op generators.
    pub drive: Drive,
}

impl Default for MdtestEasyConfig {
    fn default() -> Self {
        MdtestEasyConfig {
            files_total: 1_000_000,
            create_only: false,
            drive: Drive::Engine,
        }
    }
}

/// mdtest-hard parameters.
#[derive(Debug, Clone)]
pub struct MdtestHardConfig {
    pub files_total: u64,
    /// Shared directory pool size.
    pub dirs: usize,
    /// Bytes written per file (IO500 default: 3901).
    pub file_size: usize,
    pub seed: u64,
    /// Which driver executes the op generators.
    pub drive: Drive,
}

impl Default for MdtestHardConfig {
    fn default() -> Self {
        MdtestHardConfig {
            files_total: 1_000_000,
            dirs: 16,
            file_size: 3901,
            seed: 42,
            drive: Drive::Engine,
        }
    }
}

/// Result of one mdtest run: one [`PhaseResult`] per phase, plus the
/// per-phase error counts (MarFS returns errors in the READ phase).
#[derive(Debug, Clone)]
pub struct MdtestResult {
    pub phases: Vec<PhaseResult>,
    pub errors: Vec<u64>,
}

impl MdtestResult {
    pub fn phase(&self, name: &str) -> Option<&PhaseResult> {
        self.phases.iter().find(|p| p.name == name)
    }
}

fn ctx() -> Credentials {
    Credentials::root()
}

/// One benchmark phase across the fleet: drives one op generator per
/// process (built by `gen_of(proc)`) and meters aggregate throughput.
/// Returns (result, errors).
fn run_phase(
    clients: &[Arc<dyn SimClient>],
    name: &str,
    per_proc: u64,
    drive: Drive,
    gen_of: impl Fn(usize) -> Box<dyn OpGen>,
) -> (PhaseResult, u64) {
    let meter = ThroughputMeter::new();
    let starts: Vec<u64> = clients.iter().map(|c| c.port().now()).collect();
    let gens: Vec<Box<dyn OpGen>> = (0..clients.len()).map(&gen_of).collect();
    let report = run_ops(clients, gens, drive, Some(&meter));
    debug_assert!(report.ops.iter().all(|&n| n == per_proc));
    // fsync after each phase (§IV-B).
    for (i, c) in clients.iter().enumerate() {
        let _ = c.sync_all(&ctx());
        meter.record_span(per_proc, starts[i], c.port().now());
    }
    barrier(clients);
    (meter.finish(name), report.total_errors())
}

/// Unmetered setup: run one op stream per process through the same
/// driver as the metered phases (so setup ordering is as deterministic
/// as the run itself), ignoring errors like the old threaded setup did.
fn run_setup(
    clients: &[Arc<dyn SimClient>],
    drive: Drive,
    gen_of: impl Fn(usize) -> Box<dyn OpGen>,
) {
    let gens: Vec<Box<dyn OpGen>> = (0..clients.len()).map(&gen_of).collect();
    let _ = run_ops(clients, gens, drive, None);
}

/// Run mdtest-easy over the fleet. Directory layout: each process works
/// in its own leaf directory `/mdtest-easy/p<i>`.
pub fn mdtest_easy(
    clients: &[Arc<dyn SimClient>],
    cfg: &MdtestEasyConfig,
) -> FsResult<MdtestResult> {
    assert!(!clients.is_empty());
    let per_proc = (cfg.files_total / clients.len() as u64).max(1);
    // Setup (unmetered): the shared parent, then each process creates its
    // own leaf directory so it becomes that directory's leader.
    clients[0].mkdir(&ctx(), "/mdtest-easy", 0o755)?;
    run_setup(clients, cfg.drive, |i| {
        gen_iter(std::iter::once(Op::Mkdir {
            path: format!("/mdtest-easy/p{i}"),
        }))
    });

    let mut phases = Vec::new();
    let mut errors = Vec::new();

    let (create, e) = run_phase(clients, "create", per_proc, cfg.drive, |i| {
        gen_iter((0..per_proc).map(move |j| Op::Create {
            path: format!("/mdtest-easy/p{i}/f{j}"),
        }))
    });
    phases.push(create);
    errors.push(e);

    if !cfg.create_only {
        let (stat, e) = run_phase(clients, "stat", per_proc, cfg.drive, |i| {
            gen_iter((0..per_proc).map(move |j| Op::Stat {
                path: format!("/mdtest-easy/p{i}/f{j}"),
            }))
        });
        phases.push(stat);
        errors.push(e);

        let (delete, e) = run_phase(clients, "delete", per_proc, cfg.drive, |i| {
            gen_iter((0..per_proc).map(move |j| Op::Unlink {
                path: format!("/mdtest-easy/p{i}/f{j}"),
            }))
        });
        phases.push(delete);
        errors.push(e);
    }
    Ok(MdtestResult { phases, errors })
}

/// CREATE phase with each process spreading its files round-robin over
/// `dirs_per_proc` directories it leads itself. With more led
/// directories than commit lanes, async seals of co-laned directories
/// land on the same lane — the workload where grouped sealing (one
/// batched flight carrying every co-laned directory's due
/// transactions) amortizes against per-dir flights. Setup (unmetered)
/// creates the per-process directories.
pub fn fanned_dir_create(
    clients: &[Arc<dyn SimClient>],
    dirs_per_proc: u64,
    files_total: u64,
) -> FsResult<MdtestResult> {
    assert!(!clients.is_empty() && dirs_per_proc > 0);
    let per_proc = (files_total / clients.len() as u64).max(1);
    clients[0].mkdir(&ctx(), "/fan", 0o755)?;
    run_setup(clients, Drive::Engine, |i| {
        gen_iter((0..dirs_per_proc).map(move |d| Op::Mkdir {
            path: format!("/fan/p{i}-d{d}"),
        }))
    });
    let (create, e) = run_phase(clients, "create", per_proc, Drive::Engine, |i| {
        gen_iter((0..per_proc).map(move |j| {
            let d = j % dirs_per_proc;
            Op::Create {
                path: format!("/fan/p{i}-d{d}/f{j}"),
            }
        }))
    });
    Ok(MdtestResult {
        phases: vec![create],
        errors: vec![e],
    })
}

/// CREATE phase into ONE shared directory: every process creates empty
/// files into the same directory — the hot-directory worst case that
/// partitioned dentry leadership targets (Fig. 8). The caller creates
/// `dir` beforehand (choosing its partition count); `before_sync` runs
/// after the last create and before the per-client durability barriers,
/// so in-flight state (e.g. per-partition sealed-depth gauges) can be
/// observed before the drain zeroes it.
pub fn shared_dir_create(
    clients: &[Arc<dyn SimClient>],
    dir: &str,
    files_total: u64,
    drive: Drive,
    before_sync: impl FnOnce(),
) -> FsResult<MdtestResult> {
    assert!(!clients.is_empty());
    let per_proc = (files_total / clients.len() as u64).max(1);
    let meter = ThroughputMeter::new();
    let starts: Vec<u64> = clients.iter().map(|c| c.port().now()).collect();
    let gens: Vec<Box<dyn OpGen>> = (0..clients.len())
        .map(|i| {
            let dir = dir.to_string();
            gen_iter((0..per_proc).map(move |j| Op::Create {
                path: format!("{dir}/p{i}-f{j}"),
            }))
        })
        .collect();
    let report = run_ops(clients, gens, drive, Some(&meter));
    before_sync();
    for (i, c) in clients.iter().enumerate() {
        let _ = c.sync_all(&ctx());
        meter.record_span(per_proc, starts[i], c.port().now());
    }
    barrier(clients);
    Ok(MdtestResult {
        phases: vec![meter.finish("create")],
        errors: vec![report.total_errors()],
    })
}

/// Run mdtest-hard over the fleet: small writes into a shared directory
/// pool, arbitrary directory per file.
pub fn mdtest_hard(
    clients: &[Arc<dyn SimClient>],
    cfg: &MdtestHardConfig,
) -> FsResult<MdtestResult> {
    assert!(!clients.is_empty());
    let per_proc = (cfg.files_total / clients.len() as u64).max(1);
    clients[0].mkdir(&ctx(), "/mdtest-hard", 0o755)?;
    for k in 0..cfg.dirs {
        clients[0].mkdir(&ctx(), &format!("/mdtest-hard/d{k}"), 0o755)?;
    }

    // Deterministic file→directory placement shared by all phases.
    let dirs = cfg.dirs;
    let seed = cfg.seed;
    let path_of = move |proc: usize, j: u64| {
        let mut rng = StdRng::seed_from_u64(seed ^ (proc as u64) << 32 ^ j);
        let d = rng.random_range(0..dirs);
        format!("/mdtest-hard/d{d}/p{proc}-f{j}")
    };
    let size = cfg.file_size;

    let mut phases = Vec::new();
    let mut errors = Vec::new();

    let (write, e) = run_phase(clients, "write", per_proc, cfg.drive, |i| {
        gen_iter((0..per_proc).map(move |j| Op::CreateWrite {
            path: path_of(i, j),
            size,
            fill: 0xA5,
        }))
    });
    phases.push(write);
    errors.push(e);

    let (stat, e) = run_phase(clients, "stat", per_proc, cfg.drive, |i| {
        gen_iter((0..per_proc).map(move |j| Op::Stat {
            path: path_of(i, j),
        }))
    });
    phases.push(stat);
    errors.push(e);

    let (read, e) = run_phase(clients, "read", per_proc, cfg.drive, |i| {
        gen_iter((0..per_proc).map(move |j| Op::OpenRead {
            path: path_of(i, j),
            size,
        }))
    });
    phases.push(read);
    errors.push(e);

    let (delete, e) = run_phase(clients, "delete", per_proc, cfg.drive, |i| {
        gen_iter((0..per_proc).map(move |j| Op::Unlink {
            path: path_of(i, j),
        }))
    });
    phases.push(delete);
    errors.push(e);

    Ok(MdtestResult { phases, errors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs::{ArkCluster, ArkConfig};
    use arkfs_objstore::{ClusterConfig, ObjectCluster};

    fn ark_fleet(n: usize) -> Vec<Arc<dyn SimClient>> {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        (0..n)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect()
    }

    #[test]
    fn mdtest_easy_runs_all_phases() {
        let fleet = ark_fleet(4);
        let cfg = MdtestEasyConfig {
            files_total: 64,
            create_only: false,
            drive: Drive::Engine,
        };
        let result = mdtest_easy(&fleet, &cfg).unwrap();
        assert_eq!(result.phases.len(), 3);
        assert_eq!(result.errors, vec![0, 0, 0]);
        for phase in &result.phases {
            assert_eq!(phase.ops, 64);
            assert!(phase.ops_per_sec() > 0.0, "{} throughput", phase.name);
        }
        // After DELETE the per-process dirs are empty.
        assert!(fleet[0]
            .readdir(&Credentials::root(), "/mdtest-easy/p0")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn mdtest_easy_create_only() {
        let fleet = ark_fleet(2);
        let cfg = MdtestEasyConfig {
            files_total: 16,
            create_only: true,
            drive: Drive::Engine,
        };
        let result = mdtest_easy(&fleet, &cfg).unwrap();
        assert_eq!(result.phases.len(), 1);
        assert_eq!(result.phases[0].name, "create");
    }

    #[test]
    fn mdtest_easy_is_deterministic_on_the_engine() {
        let run = || {
            let fleet = ark_fleet(4);
            let cfg = MdtestEasyConfig {
                files_total: 64,
                create_only: true,
                drive: Drive::Engine,
            };
            let r = mdtest_easy(&fleet, &cfg).unwrap();
            r.phases[0].clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mdtest_hard_round_trips_data() {
        let fleet = ark_fleet(4);
        let cfg = MdtestHardConfig {
            files_total: 32,
            dirs: 4,
            file_size: 128,
            seed: 7,
            drive: Drive::Engine,
        };
        let result = mdtest_hard(&fleet, &cfg).unwrap();
        assert_eq!(result.phases.len(), 4);
        assert_eq!(result.errors, vec![0, 0, 0, 0]);
        let names: Vec<&str> = result.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["write", "stat", "read", "delete"]);
        assert!(result.phase("write").unwrap().ops_per_sec() > 0.0);
    }

    #[test]
    fn mdtest_hard_counts_read_errors() {
        use arkfs_baselines::MarFs;
        use arkfs_simkit::ClusterSpec;
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let shared = MarFs::deployment(store, ClusterSpec::test_tiny(), 64);
        let fleet: Vec<Arc<dyn SimClient>> = (0..2)
            .map(|_| MarFs::client(&shared) as Arc<dyn SimClient>)
            .collect();
        let cfg = MdtestHardConfig {
            files_total: 8,
            dirs: 2,
            file_size: 64,
            seed: 1,
            drive: Drive::Engine,
        };
        let result = mdtest_hard(&fleet, &cfg).unwrap();
        // Every READ fails on MarFS's interactive interface.
        assert_eq!(result.errors[2], 8);
        assert_eq!(result.errors[0], 0);
    }
}
