//! Resumable workload operations.
//!
//! A workload driver used to be a closure handed one `(client, index)`
//! pair at a time by a thread pool. To run on the discrete-event engine
//! it is instead expressed as an *op generator*: a resumable state
//! machine yielding one [`Op`] per call, which the driver (engine or
//! legacy thread pool, see [`crate::drive`]) executes against the
//! client. One `Op` is one *metered unit* — exactly the granularity the
//! old per-`(client, index)` closures metered (a CREATE "op" in mdtest
//! is create + close), so latency percentiles mean the same thing under
//! either driver.

use arkfs_simkit::Nanos;
use arkfs_vfs::{Credentials, FileHandle, FsError, FsResult, OpenFlags};

/// One metered workload operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Create a directory (setup phases).
    Mkdir { path: String },
    /// Create an empty file and close it (mdtest CREATE).
    Create { path: String },
    /// Create, write `size` bytes of `fill`, close (mdtest-hard WRITE).
    CreateWrite { path: String, size: usize, fill: u8 },
    /// Stat a path (mdtest STAT).
    Stat { path: String },
    /// Open read-only, read the whole `size` bytes at offset 0, close
    /// (mdtest-hard READ). Short reads are errors.
    OpenRead { path: String, size: usize },
    /// Unlink a file (mdtest DELETE).
    Unlink { path: String },
    /// Create a file and hold its handle open (fio setup).
    OpenCreate { path: String },
    /// Open an existing file read-only and hold its handle (fio read).
    Open { path: String },
    /// Write `len` bytes of `fill` at `off` on the held handle.
    Write { off: u64, len: usize, fill: u8 },
    /// Read `len` bytes at `off` on the held handle; short reads are
    /// errors except at `eof` (the file's known size).
    Read { off: u64, len: usize, eof: u64 },
    /// fsync the held handle.
    Fsync,
    /// Close the held handle.
    Close,
    /// Drop clean cached data (between fio phases).
    DropCaches,
    /// Client-wide durability barrier.
    SyncAll,
    /// Advance the client's virtual clock without touching the file
    /// system (think time).
    Think { cost: Nanos },
    /// Execute the inner op without recording a latency sample —
    /// setup/teardown that belongs to a metered phase's timeline (it
    /// still advances the clock and counts toward the span) but not to
    /// its per-op latency distribution, e.g. fio's create/fsync around
    /// the metered write requests.
    Unmetered(Box<Op>),
}

/// A resumable per-client op stream: the state machine form of a
/// workload driver. Implementations are plain iterating state (an index
/// into a deterministic schedule), so a generator suspended mid-stream
/// costs a few words — the property that lets one host thread hold
/// 100k of them.
pub trait OpGen: Send {
    /// The next operation for this client, or `None` when exhausted.
    fn next_op(&mut self) -> Option<Op>;
}

/// Wrap any iterator of ops as a generator, so drivers can be written
/// as lazy iterator chains (paths are formatted on demand, never
/// pre-materialized for a whole phase).
pub struct IterGen<I>(pub I);

impl<I: Iterator<Item = Op> + Send> OpGen for IterGen<I> {
    fn next_op(&mut self) -> Option<Op> {
        self.0.next()
    }
}

impl OpGen for Box<dyn OpGen> {
    fn next_op(&mut self) -> Option<Op> {
        (**self).next_op()
    }
}

/// Box a lazy iterator of ops as a generator.
pub fn gen_iter<I>(iter: I) -> Box<dyn OpGen>
where
    I: Iterator<Item = Op> + Send + 'static,
{
    Box::new(IterGen(iter))
}

/// Per-client executor state: the (at most one) held file handle and a
/// reusable I/O buffer, so stepping 100k clients does not allocate per
/// op.
#[derive(Debug, Default)]
pub struct OpState {
    held: Option<FileHandle>,
    buf: Vec<u8>,
}

impl OpState {
    pub fn new() -> Self {
        Self::default()
    }

    fn fill_buf(&mut self, len: usize, fill: u8) -> &[u8] {
        if self.buf.len() < len {
            self.buf.resize(len, fill);
        }
        // Cheap refill only when the pattern changes.
        if self.buf.first() != Some(&fill) {
            self.buf.iter_mut().for_each(|b| *b = fill);
        }
        &self.buf[..len]
    }

    fn held(&self) -> FsResult<FileHandle> {
        self.held
            .ok_or_else(|| FsError::Io("op needs a held handle but none is open".into()))
    }
}

/// Execute one op against `client`, updating `state`. Returns the op's
/// result; the caller meters virtual-time latency around this call.
pub fn exec_op(client: &dyn crate::SimClient, state: &mut OpState, op: &Op) -> FsResult<()> {
    let ctx = Credentials::root();
    match op {
        Op::Mkdir { path } => client.mkdir(&ctx, path, 0o755).map(|_| ()),
        Op::Create { path } => {
            let fh = client.create(&ctx, path, 0o644)?;
            client.close(&ctx, fh)
        }
        Op::CreateWrite { path, size, fill } => {
            let fh = client.create(&ctx, path, 0o644)?;
            let data = state.fill_buf(*size, *fill);
            let r = client.write(&ctx, fh, 0, data).map(|_| ());
            let c = client.close(&ctx, fh);
            r.and(c)
        }
        Op::Stat { path } => client.stat(&ctx, path).map(|_| ()),
        Op::OpenRead { path, size } => {
            let fh = client.open(&ctx, path, OpenFlags::RDONLY)?;
            if state.buf.len() < *size {
                state.buf.resize(*size, 0);
            }
            let r = client.read(&ctx, fh, 0, &mut state.buf[..*size]);
            let c = client.close(&ctx, fh);
            match r {
                Ok(n) if n == *size => c,
                Ok(n) => Err(FsError::Io(format!("short read: {n} of {size}"))),
                Err(e) => Err(e),
            }
        }
        Op::Unlink { path } => client.unlink(&ctx, path),
        Op::OpenCreate { path } => {
            state.held = Some(client.create(&ctx, path, 0o644)?);
            Ok(())
        }
        Op::Open { path } => {
            state.held = Some(client.open(&ctx, path, OpenFlags::RDONLY)?);
            Ok(())
        }
        Op::Write { off, len, fill } => {
            let fh = state.held()?;
            let data = state.fill_buf(*len, *fill);
            client.write(&ctx, fh, *off, data).map(|_| ())
        }
        Op::Read { off, len, eof } => {
            let fh = state.held()?;
            if state.buf.len() < *len {
                state.buf.resize(*len, 0);
            }
            let n = client.read(&ctx, fh, *off, &mut state.buf[..*len])?;
            let expect = (*len as u64).min(eof.saturating_sub(*off)) as usize;
            if n == expect {
                Ok(())
            } else {
                Err(FsError::Io(format!("short read: {n} of {expect} at {off}")))
            }
        }
        Op::Fsync => {
            let fh = state.held()?;
            client.fsync(&ctx, fh)
        }
        Op::Close => {
            let fh = state.held()?;
            state.held = None;
            client.close(&ctx, fh)
        }
        Op::DropCaches => {
            client.drop_caches();
            Ok(())
        }
        Op::SyncAll => client.sync_all(&ctx),
        Op::Think { cost } => {
            client.port().advance(*cost);
            Ok(())
        }
        Op::Unmetered(inner) => exec_op(client, state, inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs::{ArkCluster, ArkConfig};
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use std::sync::Arc;

    fn one_client() -> Arc<dyn crate::SimClient> {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        ArkCluster::new(ArkConfig::test_tiny(), store).client()
    }

    #[test]
    fn ops_round_trip() {
        let c = one_client();
        let mut st = OpState::new();
        for op in [
            Op::Mkdir { path: "/d".into() },
            Op::CreateWrite {
                path: "/d/f".into(),
                size: 100,
                fill: 0xA5,
            },
            Op::Stat {
                path: "/d/f".into(),
            },
            Op::OpenRead {
                path: "/d/f".into(),
                size: 100,
            },
            Op::OpenCreate {
                path: "/d/g".into(),
            },
            Op::Write {
                off: 0,
                len: 64,
                fill: 1,
            },
            Op::Fsync,
            Op::Close,
            Op::Open {
                path: "/d/g".into(),
            },
            Op::Read {
                off: 0,
                len: 64,
                eof: 64,
            },
            Op::Close,
            Op::Unlink {
                path: "/d/f".into(),
            },
            Op::DropCaches,
            Op::SyncAll,
            Op::Think { cost: 100 },
        ] {
            exec_op(c.as_ref(), &mut st, &op).unwrap_or_else(|e| panic!("{op:?}: {e}"));
        }
        assert!(st.held.is_none());
    }

    #[test]
    fn short_read_is_an_error() {
        let c = one_client();
        let mut st = OpState::new();
        exec_op(c.as_ref(), &mut st, &Op::Mkdir { path: "/d".into() }).unwrap();
        exec_op(
            c.as_ref(),
            &mut st,
            &Op::CreateWrite {
                path: "/d/f".into(),
                size: 10,
                fill: 0,
            },
        )
        .unwrap();
        let err = exec_op(
            c.as_ref(),
            &mut st,
            &Op::OpenRead {
                path: "/d/f".into(),
                size: 100,
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn handle_ops_without_held_handle_fail() {
        let c = one_client();
        let mut st = OpState::new();
        assert!(exec_op(c.as_ref(), &mut st, &Op::Fsync).is_err());
        assert!(exec_op(c.as_ref(), &mut st, &Op::Close).is_err());
    }
}
