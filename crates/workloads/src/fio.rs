//! fio-style large-file sequential I/O (§IV-B, Figure 6).
//!
//! "We run fio with 32 processes and each process writes and then reads a
//! 32GB file using 128KB request size [...] At the end of the file
//! writing, each fio process calls fsync() [...] and drops the cache
//! entries of written files."
//!
//! File sizes are scaled down by default so the harness fits in memory;
//! bandwidth *ratios* are preserved because the virtual-time model
//! charges per byte.

use crate::client::{barrier, SimClient};
use arkfs_simkit::{PhaseResult, ThroughputMeter};
use arkfs_vfs::{Credentials, FsResult, OpenFlags};
use std::sync::Arc;

/// fio parameters.
#[derive(Debug, Clone)]
pub struct FioConfig {
    /// Bytes per file (per process). Paper: 32 GiB; scaled by default.
    pub file_size: u64,
    /// Request size (paper: 128 KiB).
    pub request_size: usize,
}

impl Default for FioConfig {
    fn default() -> Self {
        FioConfig {
            file_size: 64 * 1024 * 1024,
            request_size: 128 * 1024,
        }
    }
}

/// Write and read bandwidth of one fio run.
#[derive(Debug, Clone)]
pub struct FioResult {
    pub write: PhaseResult,
    pub read: PhaseResult,
    /// Total bytes moved per phase.
    pub bytes: u64,
}

impl FioResult {
    pub fn write_mib_s(&self) -> f64 {
        self.write.bandwidth_mib_s(self.bytes)
    }

    pub fn read_mib_s(&self) -> f64 {
        self.read.bandwidth_mib_s(self.bytes)
    }
}

fn ctx() -> Credentials {
    Credentials::root()
}

/// Run the fio workload over the fleet.
pub fn fio(clients: &[Arc<dyn SimClient>], cfg: &FioConfig) -> FsResult<FioResult> {
    assert!(!clients.is_empty());
    assert!(cfg.request_size > 0 && cfg.file_size > 0);
    clients[0].mkdir(&ctx(), "/fio", 0o755)?;
    let file_size = cfg.file_size;
    let req = cfg.request_size;
    let bytes = file_size * clients.len() as u64;

    let requests = file_size.div_ceil(req as u64);

    // WRITE phase: sequential writes, request-interleaved across
    // processes, then fsync and drop caches.
    let meter = ThroughputMeter::new();
    let starts: Vec<u64> = clients.iter().map(|c| c.port().now()).collect();
    let handles: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| c.create(&ctx(), &format!("/fio/job{i}.bin"), 0o644))
        .collect::<FsResult<_>>()?;
    let block = vec![0x5Au8; req];
    for j in 0..requests {
        let off = j * req as u64;
        let n = req.min((file_size - off) as usize);
        for (c, &fh) in clients.iter().zip(&handles) {
            let t0 = c.port().now();
            c.write(&ctx(), fh, off, &block[..n])?;
            meter.record_latency(c.port().now().saturating_sub(t0));
        }
    }
    for (i, (c, &fh)) in clients.iter().zip(&handles).enumerate() {
        c.fsync(&ctx(), fh)?;
        c.close(&ctx(), fh)?;
        c.drop_caches();
        meter.record_span(1, starts[i], c.port().now());
    }
    barrier(clients);
    let write = meter.finish("write");

    // READ phase: sequential reads of the same files, interleaved.
    let meter = ThroughputMeter::new();
    let starts: Vec<u64> = clients.iter().map(|c| c.port().now()).collect();
    let handles: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| c.open(&ctx(), &format!("/fio/job{i}.bin"), OpenFlags::RDONLY))
        .collect::<FsResult<_>>()?;
    let mut buf = vec![0u8; req];
    for j in 0..requests {
        let off = j * req as u64;
        for (c, &fh) in clients.iter().zip(&handles) {
            let t0 = c.port().now();
            let n = c.read(&ctx(), fh, off, &mut buf)?;
            meter.record_latency(c.port().now().saturating_sub(t0));
            let expect = req.min((file_size - off) as usize);
            if n != expect {
                return Err(arkfs_vfs::FsError::Io(format!(
                    "short read: {n} of {expect} at {off}"
                )));
            }
        }
    }
    for (i, (c, &fh)) in clients.iter().zip(&handles).enumerate() {
        c.close(&ctx(), fh)?;
        meter.record_span(1, starts[i], c.port().now());
    }
    barrier(clients);
    let read = meter.finish("read");

    Ok(FioResult { write, read, bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs::{ArkCluster, ArkConfig};
    use arkfs_objstore::{ClusterConfig, ObjectCluster};

    #[test]
    fn fio_reports_positive_bandwidth() {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        let fleet: Vec<Arc<dyn SimClient>> = (0..2)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect();
        let cfg = FioConfig {
            file_size: 4096,
            request_size: 256,
        };
        let result = fio(&fleet, &cfg).unwrap();
        assert_eq!(result.bytes, 8192);
        assert!(result.write_mib_s() > 0.0);
        assert!(result.read_mib_s() > 0.0);
        // Files really exist with the right size.
        let st = fleet[0]
            .stat(&Credentials::root(), "/fio/job0.bin")
            .unwrap();
        assert_eq!(st.size, 4096);
    }
}
