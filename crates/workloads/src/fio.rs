//! fio-style large-file sequential I/O (§IV-B, Figure 6).
//!
//! "We run fio with 32 processes and each process writes and then reads a
//! 32GB file using 128KB request size [...] At the end of the file
//! writing, each fio process calls fsync() [...] and drops the cache
//! entries of written files."
//!
//! File sizes are scaled down by default so the harness fits in memory;
//! bandwidth *ratios* are preserved because the virtual-time model
//! charges per byte.
//!
//! Each process is one resumable op generator — create/fsync/close are
//! [`Op::Unmetered`] so only the data requests land in the latency
//! distribution, exactly what the old hand-interleaved loop metered.

use crate::client::{barrier, SimClient};
use crate::drive::{run_ops, Drive};
use crate::ops::{gen_iter, Op, OpGen};
use arkfs_simkit::{PhaseResult, ThroughputMeter};
use arkfs_vfs::{Credentials, FsError, FsResult};
use std::sync::Arc;

/// fio parameters.
#[derive(Debug, Clone)]
pub struct FioConfig {
    /// Bytes per file (per process). Paper: 32 GiB; scaled by default.
    pub file_size: u64,
    /// Request size (paper: 128 KiB).
    pub request_size: usize,
    /// Which driver executes the op generators.
    pub drive: Drive,
}

impl Default for FioConfig {
    fn default() -> Self {
        FioConfig {
            file_size: 64 * 1024 * 1024,
            request_size: 128 * 1024,
            drive: Drive::Engine,
        }
    }
}

/// Write and read bandwidth of one fio run.
#[derive(Debug, Clone)]
pub struct FioResult {
    pub write: PhaseResult,
    pub read: PhaseResult,
    /// Total bytes moved per phase.
    pub bytes: u64,
}

impl FioResult {
    pub fn write_mib_s(&self) -> f64 {
        self.write.bandwidth_mib_s(self.bytes)
    }

    pub fn read_mib_s(&self) -> f64 {
        self.read.bandwidth_mib_s(self.bytes)
    }
}

fn ctx() -> Credentials {
    Credentials::root()
}

fn run_fio_phase(
    clients: &[Arc<dyn SimClient>],
    name: &str,
    drive: Drive,
    gen_of: impl Fn(usize) -> Box<dyn OpGen>,
) -> FsResult<PhaseResult> {
    let meter = ThroughputMeter::new();
    let starts: Vec<u64> = clients.iter().map(|c| c.port().now()).collect();
    let gens: Vec<Box<dyn OpGen>> = (0..clients.len()).map(&gen_of).collect();
    let report = run_ops(clients, gens, drive, Some(&meter));
    if report.total_errors() > 0 {
        return Err(FsError::Io(format!(
            "fio {name} phase: {} ops failed",
            report.total_errors()
        )));
    }
    for (i, c) in clients.iter().enumerate() {
        // One span per process: fio reports bandwidth, not ops/s.
        meter.record_span(1, starts[i], c.port().now());
    }
    barrier(clients);
    Ok(meter.finish(name))
}

/// Run the fio workload over the fleet.
pub fn fio(clients: &[Arc<dyn SimClient>], cfg: &FioConfig) -> FsResult<FioResult> {
    assert!(!clients.is_empty());
    assert!(cfg.request_size > 0 && cfg.file_size > 0);
    clients[0].mkdir(&ctx(), "/fio", 0o755)?;
    let file_size = cfg.file_size;
    let req = cfg.request_size;
    let bytes = file_size * clients.len() as u64;
    let requests = file_size.div_ceil(req as u64);

    // WRITE phase: sequential writes, interleaved across processes in
    // virtual-time order, then fsync and drop caches.
    let write = run_fio_phase(clients, "write", cfg.drive, |i| {
        let open = std::iter::once(Op::Unmetered(Box::new(Op::OpenCreate {
            path: format!("/fio/job{i}.bin"),
        })));
        let writes = (0..requests).map(move |j| {
            let off = j * req as u64;
            Op::Write {
                off,
                len: req.min((file_size - off) as usize),
                fill: 0x5A,
            }
        });
        let finish = [Op::Fsync, Op::Close, Op::DropCaches]
            .map(|op| Op::Unmetered(Box::new(op)))
            .into_iter();
        gen_iter(open.chain(writes).chain(finish))
    })?;

    // READ phase: sequential reads of the same files, interleaved.
    let read = run_fio_phase(clients, "read", cfg.drive, |i| {
        let open = std::iter::once(Op::Unmetered(Box::new(Op::Open {
            path: format!("/fio/job{i}.bin"),
        })));
        let reads = (0..requests).map(move |j| Op::Read {
            off: j * req as u64,
            len: req,
            eof: file_size,
        });
        let close = std::iter::once(Op::Unmetered(Box::new(Op::Close)));
        gen_iter(open.chain(reads).chain(close))
    })?;

    Ok(FioResult { write, read, bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs::{ArkCluster, ArkConfig};
    use arkfs_objstore::{ClusterConfig, ObjectCluster};

    fn ark_fleet(n: usize) -> Vec<Arc<dyn SimClient>> {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        (0..n)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect()
    }

    #[test]
    fn fio_reports_positive_bandwidth() {
        let fleet = ark_fleet(2);
        let cfg = FioConfig {
            file_size: 4096,
            request_size: 256,
            drive: Drive::Engine,
        };
        let result = fio(&fleet, &cfg).unwrap();
        assert_eq!(result.bytes, 8192);
        assert!(result.write_mib_s() > 0.0);
        assert!(result.read_mib_s() > 0.0);
        // Files really exist with the right size.
        let st = fleet[0]
            .stat(&Credentials::root(), "/fio/job0.bin")
            .unwrap();
        assert_eq!(st.size, 4096);
    }

    #[test]
    fn fio_is_deterministic_on_the_engine() {
        let run = || {
            let fleet = ark_fleet(4);
            let cfg = FioConfig {
                file_size: 8192,
                request_size: 512,
                drive: Drive::Engine,
            };
            let r = fio(&fleet, &cfg).unwrap();
            (r.write, r.read)
        };
        assert_eq!(run(), run());
    }
}
