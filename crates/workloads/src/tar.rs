//! A miniature `tar` implementation over the [`Vfs`] trait (ustar
//! format), plus the paper's two archiving scenarios (§IV-D):
//!
//! 1. **Archiving** — the dataset is read from the burst-buffer/EBS tier,
//!    stored as a tar file on campaign storage, then extracted and
//!    categorized there.
//! 2. **Unarchiving** — the extracted dataset is re-packed into a tar
//!    file and moved back toward the burst buffer.

use crate::client::{barrier, run_fleet, SimClient};
use crate::dataset::DatasetSpec;
use arkfs_simkit::{BandwidthResource, Nanos, ThroughputMeter, SEC};
use arkfs_vfs::{Credentials, FileHandle, FsError, FsResult, OpenFlags, Vfs};
use std::sync::Arc;

const BLOCK: usize = 512;

/// Serialize one ustar header block.
fn header_block(name: &str, size: u64) -> FsResult<[u8; BLOCK]> {
    let mut h = [0u8; BLOCK];
    let name_bytes = name.as_bytes();
    if name_bytes.len() > 100 {
        return Err(FsError::NameTooLong);
    }
    h[..name_bytes.len()].copy_from_slice(name_bytes);
    h[100..107].copy_from_slice(b"0000644"); // mode
    h[108..115].copy_from_slice(b"0000000"); // uid
    h[116..123].copy_from_slice(b"0000000"); // gid
    let size_field = format!("{size:011o}");
    h[124..124 + size_field.len()].copy_from_slice(size_field.as_bytes());
    h[136..147].copy_from_slice(b"00000000000"); // mtime
    h[156] = b'0'; // typeflag: regular file
    h[257..262].copy_from_slice(b"ustar");
    h[263..265].copy_from_slice(b"00");
    // Checksum: computed with the checksum field filled with spaces.
    h[148..156].copy_from_slice(b"        ");
    let sum: u64 = h.iter().map(|&b| b as u64).sum();
    let chk = format!("{sum:06o}\0 ");
    h[148..156].copy_from_slice(chk.as_bytes());
    Ok(h)
}

/// Parse a ustar header block. `Ok(None)` means an all-zero end block.
fn parse_header(block: &[u8]) -> FsResult<Option<(String, u64)>> {
    if block.len() < BLOCK {
        return Err(FsError::Io("short tar header".into()));
    }
    if block.iter().all(|&b| b == 0) {
        return Ok(None);
    }
    // Verify the checksum.
    let stored = std::str::from_utf8(&block[148..156])
        .map_err(|_| FsError::Io("bad tar checksum field".into()))?;
    let stored = u64::from_str_radix(stored.trim_end_matches(['\0', ' ']).trim(), 8)
        .map_err(|_| FsError::Io("bad tar checksum".into()))?;
    let mut sum: u64 = block[..BLOCK].iter().map(|&b| b as u64).sum();
    for &b in &block[148..156] {
        sum = sum - b as u64 + b' ' as u64;
    }
    if sum != stored {
        return Err(FsError::Io("tar checksum mismatch".into()));
    }
    let name_end = block[..100].iter().position(|&b| b == 0).unwrap_or(100);
    let name = std::str::from_utf8(&block[..name_end])
        .map_err(|_| FsError::Io("bad tar name".into()))?
        .to_string();
    let size_str =
        std::str::from_utf8(&block[124..135]).map_err(|_| FsError::Io("bad tar size".into()))?;
    let size = u64::from_str_radix(size_str.trim_matches(['\0', ' ']), 8)
        .map_err(|_| FsError::Io("bad tar size".into()))?;
    Ok(Some((name, size)))
}

/// Streaming tar writer into an open Vfs file.
pub struct TarWriter<'a> {
    fs: &'a dyn Vfs,
    ctx: &'a Credentials,
    fh: FileHandle,
    offset: u64,
}

impl<'a> TarWriter<'a> {
    /// Create `path` and start writing a tar stream into it.
    pub fn create(fs: &'a dyn Vfs, ctx: &'a Credentials, path: &str) -> FsResult<Self> {
        let fh = fs.create(ctx, path, 0o644)?;
        Ok(TarWriter {
            fs,
            ctx,
            fh,
            offset: 0,
        })
    }

    fn put(&mut self, data: &[u8]) -> FsResult<()> {
        let mut off = 0usize;
        while off < data.len() {
            let n = self
                .fs
                .write(self.ctx, self.fh, self.offset, &data[off..])?;
            if n == 0 {
                return Err(FsError::Io("short tar write".into()));
            }
            off += n;
            self.offset += n as u64;
        }
        Ok(())
    }

    /// Append one member file.
    pub fn add_file(&mut self, name: &str, data: &[u8]) -> FsResult<()> {
        let header = header_block(name, data.len() as u64)?;
        self.put(&header)?;
        self.put(data)?;
        let pad = (BLOCK - data.len() % BLOCK) % BLOCK;
        if pad > 0 {
            self.put(&vec![0u8; pad])?;
        }
        Ok(())
    }

    /// Write the end-of-archive marker and close the file.
    pub fn finish(mut self) -> FsResult<u64> {
        self.put(&[0u8; 2 * BLOCK])?;
        let total = self.offset;
        self.fs.close(self.ctx, self.fh)?;
        Ok(total)
    }
}

/// Streaming tar reader from an open Vfs file.
pub struct TarReader<'a> {
    fs: &'a dyn Vfs,
    ctx: &'a Credentials,
    fh: FileHandle,
    offset: u64,
}

impl<'a> TarReader<'a> {
    pub fn open(fs: &'a dyn Vfs, ctx: &'a Credentials, path: &str) -> FsResult<Self> {
        let fh = fs.open(ctx, path, OpenFlags::RDONLY)?;
        Ok(TarReader {
            fs,
            ctx,
            fh,
            offset: 0,
        })
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> FsResult<()> {
        let mut off = 0usize;
        while off < buf.len() {
            let n = self
                .fs
                .read(self.ctx, self.fh, self.offset, &mut buf[off..])?;
            if n == 0 {
                return Err(FsError::Io("unexpected tar EOF".into()));
            }
            off += n;
            self.offset += n as u64;
        }
        Ok(())
    }

    /// Next member: `(name, contents)`, or `None` at end of archive.
    pub fn next_entry(&mut self) -> FsResult<Option<(String, Vec<u8>)>> {
        let mut header = [0u8; BLOCK];
        self.read_exact(&mut header)?;
        let Some((name, size)) = parse_header(&header)? else {
            return Ok(None);
        };
        let mut data = vec![0u8; size as usize];
        self.read_exact(&mut data)?;
        let pad = (BLOCK - size as usize % BLOCK) % BLOCK;
        if pad > 0 {
            let mut skip = vec![0u8; pad];
            self.read_exact(&mut skip)?;
        }
        Ok(Some((name, data)))
    }

    pub fn close(self) -> FsResult<()> {
        self.fs.close(self.ctx, self.fh)
    }
}

/// Parameters of the §IV-D archiving scenarios.
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Per-process dataset shape.
    pub dataset: DatasetSpec,
    /// Burst-buffer/EBS sequential bandwidth shared by all processes
    /// (paper: 1 GB/s).
    pub ebs_bw: u64,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            dataset: DatasetSpec::ms_coco(),
            ebs_bw: 1_000_000_000,
        }
    }
}

/// Elapsed virtual times of the two scenarios (Table II rows).
#[derive(Debug, Clone)]
pub struct ArchiveResult {
    pub archive_ns: Nanos,
    pub unarchive_ns: Nanos,
    pub dataset_bytes: u64,
}

impl ArchiveResult {
    pub fn archive_secs(&self) -> f64 {
        self.archive_ns as f64 / SEC as f64
    }

    pub fn unarchive_secs(&self) -> f64 {
        self.unarchive_ns as f64 / SEC as f64
    }
}

fn ctx() -> Credentials {
    Credentials::root()
}

/// Run both scenarios over the fleet; each process handles its own copy
/// of the dataset, as in the paper (32 processes × one MS-COCO each).
pub fn archive_scenario(
    clients: &[Arc<dyn SimClient>],
    cfg: &ArchiveConfig,
) -> FsResult<ArchiveResult> {
    assert!(!clients.is_empty());
    clients[0].mkdir(&ctx(), "/campaign", 0o755)?;
    let ebs = Arc::new(BandwidthResource::new("ebs", cfg.ebs_bw));
    let spec = cfg.dataset.clone();
    let dataset_bytes = spec.total_bytes() * clients.len() as u64;

    // ---- Scenario 1: archiving --------------------------------------------
    // Read dataset from EBS → write tar to campaign FS → extract +
    // categorize on campaign FS.
    let meter = Arc::new(ThroughputMeter::new());
    let m = Arc::clone(&meter);
    let ebs2 = Arc::clone(&ebs);
    let spec2 = spec.clone();
    let results = run_fleet(clients, move |i, c| -> FsResult<()> {
        let creds = ctx();
        let start = c.port().now();
        let tar_path = format!("/campaign/p{i}.tar");
        let sizes = spec2.sizes();
        {
            let mut tar = TarWriter::create(&*c, &creds, &tar_path)?;
            for (idx, &size) in sizes.iter().enumerate() {
                // Pull the source file from the burst-buffer tier.
                let done = ebs2.transfer(c.port().now(), size);
                c.port().wait_until(done);
                let data = spec2.content(idx, size);
                tar.add_file(&spec2.name(idx), &data)?;
            }
            tar.finish()?;
        }
        // Extract and categorize.
        let out_dir = format!("/campaign/extracted-p{i}");
        c.mkdir(&ctx(), &out_dir, 0o755)?;
        let mut reader = TarReader::open(&*c, &creds, &tar_path)?;
        while let Some((name, data)) = reader.next_entry()? {
            arkfs_vfs::write_file(&*c, &ctx(), &format!("{out_dir}/{name}"), &data)?;
        }
        reader.close()?;
        c.sync_all(&ctx())?;
        m.record_span(1, start, c.port().now());
        Ok(())
    });
    for r in results {
        r?;
    }
    barrier(clients);
    let archive_ns = meter.finish("archive").makespan;

    // ---- Scenario 2: unarchiving -------------------------------------------
    // Re-pack the extracted dataset into a tar and stream it back to the
    // burst buffer.
    let meter = Arc::new(ThroughputMeter::new());
    let m = Arc::clone(&meter);
    let results = run_fleet(clients, move |i, c| -> FsResult<()> {
        let creds = ctx();
        let start = c.port().now();
        let out_dir = format!("/campaign/extracted-p{i}");
        let back_path = format!("/campaign/back-p{i}.tar");
        let entries = c.readdir(&ctx(), &out_dir)?;
        {
            let mut tar = TarWriter::create(&*c, &creds, &back_path)?;
            for entry in &entries {
                let data = arkfs_vfs::read_file(&*c, &ctx(), &format!("{out_dir}/{}", entry.name))?;
                tar.add_file(&entry.name, &data)?;
            }
            tar.finish()?;
        }
        // Stream the tar to the burst buffer.
        let st = c.stat(&ctx(), &back_path)?;
        let fh = c.open(&ctx(), &back_path, OpenFlags::RDONLY)?;
        let mut buf = vec![0u8; 1 << 20];
        let mut off = 0u64;
        while off < st.size {
            let n = c.read(&ctx(), fh, off, &mut buf)?;
            if n == 0 {
                break;
            }
            let done = ebs.transfer(c.port().now(), n as u64);
            c.port().wait_until(done);
            off += n as u64;
        }
        c.close(&ctx(), fh)?;
        m.record_span(1, start, c.port().now());
        Ok(())
    });
    for r in results {
        r?;
    }
    let unarchive_ns = meter.finish("unarchive").makespan;

    Ok(ArchiveResult {
        archive_ns,
        unarchive_ns,
        dataset_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs::{ArkCluster, ArkConfig};
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use arkfs_vfs::read_file;

    fn ark_fleet(n: usize) -> Vec<Arc<dyn SimClient>> {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        (0..n)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect()
    }

    #[test]
    fn header_roundtrip() {
        let h = header_block("dir/file.jpg", 12345).unwrap();
        let parsed = parse_header(&h).unwrap().unwrap();
        assert_eq!(parsed, ("dir/file.jpg".to_string(), 12345));
        // Zero block is end-of-archive.
        assert_eq!(parse_header(&[0u8; BLOCK]).unwrap(), None);
        // Corruption detected.
        let mut bad = h;
        bad[0] ^= 0xFF;
        assert!(parse_header(&bad).is_err());
        // Overlong names rejected.
        assert_eq!(
            header_block(&"x".repeat(101), 0).err(),
            Some(FsError::NameTooLong)
        );
    }

    #[test]
    fn tar_write_and_extract_roundtrip() {
        let fleet = ark_fleet(1);
        let c = &fleet[0];
        let ctx = Credentials::root();
        let files: Vec<(String, Vec<u8>)> = (0..5)
            .map(|i| (format!("f{i}.bin"), vec![i as u8; 100 + i * 37]))
            .collect();
        {
            let mut tar = TarWriter::create(&**c, &ctx, "/a.tar").unwrap();
            for (name, data) in &files {
                tar.add_file(name, data).unwrap();
            }
            let total = tar.finish().unwrap();
            assert_eq!(total % BLOCK as u64, 0);
        }
        let mut reader = TarReader::open(&**c, &ctx, "/a.tar").unwrap();
        let mut got = Vec::new();
        while let Some(entry) = reader.next_entry().unwrap() {
            got.push(entry);
        }
        reader.close().unwrap();
        assert_eq!(got, files);
    }

    #[test]
    fn archive_scenario_end_to_end() {
        let fleet = ark_fleet(2);
        let cfg = ArchiveConfig {
            dataset: DatasetSpec::scaled(20, 256, 5),
            ebs_bw: 1_000_000_000,
        };
        let result = archive_scenario(&fleet, &cfg).unwrap();
        assert!(result.archive_ns > 0);
        assert!(result.unarchive_ns > 0);
        assert!(result.dataset_bytes > 0);
        // The extracted dataset is really there and correct.
        let ctx = Credentials::root();
        let spec = &cfg.dataset;
        let sizes = spec.sizes();
        let sample = read_file(
            &*fleet[0],
            &ctx,
            &format!("/campaign/extracted-p0/{}", spec.name(3)),
        )
        .unwrap();
        assert_eq!(sample, spec.content(3, sizes[3]));
        // The re-packed tar exists.
        assert!(fleet[1].stat(&ctx, "/campaign/back-p1.tar").unwrap().size > 0);
    }
}
