//! Workload drivers: run per-client op generators on either the
//! discrete-event engine (default — one host thread, causal
//! virtual-time order, deterministic) or the legacy one-OS-thread-per-
//! client pool (kept as the differential oracle and for wall-clock
//! lock-contention scenarios).

use crate::client::SimClient;
use crate::ops::{exec_op, Op, OpGen, OpState};
use arkfs_simkit::{Actor, Engine, Nanos, ThroughputMeter};
use std::sync::Arc;

/// Which driver executes the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Drive {
    /// Discrete-event engine: one host thread multiplexes every client,
    /// stepping the one with the smallest virtual time. Deterministic.
    #[default]
    Engine,
    /// Legacy pool: one OS thread per client, each draining its
    /// generator. Real thread racing; virtual arrival order varies with
    /// the scheduler. Only sensible for small fleets.
    Threads,
}

/// Outcome of driving one fleet of generators.
#[derive(Debug, Clone, Default)]
pub struct DriveReport {
    /// Per-client executed op count.
    pub ops: Vec<u64>,
    /// Per-client error count.
    pub errors: Vec<u64>,
    /// Per-client op outcomes in generation order (`true` = ok), for
    /// differential checks between drivers.
    pub outcomes: Vec<Vec<bool>>,
}

impl DriveReport {
    pub fn total_errors(&self) -> u64 {
        self.errors.iter().sum()
    }
}

/// One simulated client bound to its op stream: the engine's actor.
struct ClientActor<'a, G> {
    client: &'a Arc<dyn SimClient>,
    gen: G,
    state: OpState,
    /// Next op, pre-fetched so `now()` can be consulted before stepping.
    pending: Option<Op>,
    meter: Option<&'a ThroughputMeter>,
    ops: u64,
    errors: u64,
    outcomes: Vec<bool>,
}

impl<'a, G: OpGen> ClientActor<'a, G> {
    fn new(client: &'a Arc<dyn SimClient>, mut gen: G, meter: Option<&'a ThroughputMeter>) -> Self {
        let pending = gen.next_op();
        ClientActor {
            client,
            gen,
            state: OpState::new(),
            pending,
            meter,
            ops: 0,
            errors: 0,
            outcomes: Vec::new(),
        }
    }

    fn exec_pending(&mut self) -> bool {
        let Some(op) = self.pending.take() else {
            return false;
        };
        let t0 = self.client.port().now();
        let ok = exec_op(self.client.as_ref(), &mut self.state, &op).is_ok();
        if let Some(meter) = self.meter {
            if !matches!(op, Op::Unmetered(_)) {
                meter.record_latency(self.client.port().now().saturating_sub(t0));
            }
        }
        self.ops += 1;
        if !ok {
            self.errors += 1;
        }
        self.outcomes.push(ok);
        self.pending = self.gen.next_op();
        self.pending.is_some()
    }
}

impl<G: OpGen> Actor for ClientActor<'_, G> {
    fn now(&self) -> Nanos {
        self.client.port().now()
    }

    fn step(&mut self) -> bool {
        self.exec_pending()
    }
}

/// Drive one generator per client. `clients` and `gens` pair up by
/// index (the same client may appear more than once — e.g. several
/// workers multiplexed onto one mounted client). When `meter` is given,
/// every op's virtual-time latency is recorded on it.
pub fn run_ops(
    clients: &[Arc<dyn SimClient>],
    gens: Vec<Box<dyn OpGen>>,
    drive: Drive,
    meter: Option<&ThroughputMeter>,
) -> DriveReport {
    assert_eq!(
        clients.len(),
        gens.len(),
        "one generator per client required"
    );
    match drive {
        Drive::Engine => {
            let mut actors: Vec<ClientActor<Box<dyn OpGen>>> = clients
                .iter()
                .zip(gens)
                .map(|(c, g)| ClientActor::new(c, g, meter))
                .collect();
            // Drop already-exhausted generators from the run queue.
            Engine::run(&mut actors);
            let mut report = DriveReport::default();
            for a in actors {
                report.ops.push(a.ops);
                report.errors.push(a.errors);
                report.outcomes.push(a.outcomes);
            }
            report
        }
        Drive::Threads => {
            let results: Vec<(u64, u64, Vec<bool>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = clients
                    .iter()
                    .zip(gens)
                    .map(|(c, g)| {
                        scope.spawn(move || {
                            let mut actor = ClientActor::new(c, g, meter);
                            while actor.exec_pending() {}
                            (actor.ops, actor.errors, actor.outcomes)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("workload thread panicked"))
                    .collect()
            });
            let mut report = DriveReport::default();
            for (ops, errors, outcomes) in results {
                report.ops.push(ops);
                report.errors.push(errors);
                report.outcomes.push(outcomes);
            }
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gen_iter;
    use arkfs::{ArkCluster, ArkConfig};
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use arkfs_vfs::Credentials;

    fn fleet(n: usize) -> Vec<Arc<dyn SimClient>> {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        (0..n)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect()
    }

    fn create_gens(n: usize, per: u64) -> Vec<Box<dyn OpGen>> {
        (0..n)
            .map(|i| {
                gen_iter((0..per).map(move |j| Op::Create {
                    path: format!("/w/p{i}-f{j}"),
                }))
            })
            .collect()
    }

    #[test]
    fn engine_drive_executes_everything() {
        let clients = fleet(4);
        clients[0].mkdir(&Credentials::root(), "/w", 0o755).unwrap();
        let meter = ThroughputMeter::new();
        let report = run_ops(&clients, create_gens(4, 8), Drive::Engine, Some(&meter));
        assert_eq!(report.ops, vec![8, 8, 8, 8]);
        assert_eq!(report.total_errors(), 0);
        assert_eq!(meter.latency_samples(), 32);
        assert!(report.outcomes.iter().all(|o| o.iter().all(|&b| b)));
        assert_eq!(
            clients[0]
                .readdir(&Credentials::root(), "/w")
                .unwrap()
                .len(),
            32
        );
    }

    #[test]
    fn thread_drive_matches_engine_namespace() {
        let run = |drive: Drive| {
            let clients = fleet(3);
            clients[0].mkdir(&Credentials::root(), "/w", 0o755).unwrap();
            let report = run_ops(&clients, create_gens(3, 5), drive, None);
            let mut names: Vec<String> = clients[0]
                .readdir(&Credentials::root(), "/w")
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect();
            names.sort();
            (report.outcomes, names)
        };
        let (eng_out, eng_ns) = run(Drive::Engine);
        let (thr_out, thr_ns) = run(Drive::Threads);
        assert_eq!(eng_out, thr_out);
        assert_eq!(eng_ns, thr_ns);
    }

    #[test]
    fn errors_are_counted_per_client() {
        let clients = fleet(2);
        let gens: Vec<Box<dyn OpGen>> = vec![
            gen_iter(std::iter::once(Op::Stat {
                path: "/missing".into(),
            })),
            gen_iter(std::iter::once(Op::Mkdir { path: "/ok".into() })),
        ];
        let report = run_ops(&clients, gens, Drive::Engine, None);
        assert_eq!(report.errors, vec![1, 0]);
        assert_eq!(report.outcomes, vec![vec![false], vec![true]]);
    }

    #[test]
    fn unmetered_ops_skip_the_latency_distribution() {
        let clients = fleet(1);
        let meter = ThroughputMeter::new();
        let gens: Vec<Box<dyn OpGen>> = vec![gen_iter(
            [
                Op::Unmetered(Box::new(Op::Mkdir { path: "/w".into() })),
                Op::Create {
                    path: "/w/f0".into(),
                },
                Op::Create {
                    path: "/w/f1".into(),
                },
                Op::Unmetered(Box::new(Op::SyncAll)),
            ]
            .into_iter(),
        )];
        let report = run_ops(&clients, gens, Drive::Engine, Some(&meter));
        // All four ops executed, but only the two creates were sampled.
        assert_eq!(report.ops, vec![4]);
        assert_eq!(meter.latency_samples(), 2);
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let clients = fleet(8);
            clients[0].mkdir(&Credentials::root(), "/w", 0o755).unwrap();
            let meter = ThroughputMeter::new();
            run_ops(&clients, create_gens(8, 16), Drive::Engine, Some(&meter));
            for c in &clients {
                meter.record_span(16, 0, c.port().now());
            }
            meter.finish("create")
        };
        assert_eq!(run(), run());
    }
}
