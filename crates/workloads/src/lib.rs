//! Benchmark workloads reproducing §IV of the paper: the IO500 mdtest
//! configurations (`mdtest-easy`, `mdtest-hard`), fio-style large-file
//! sequential I/O, and the tar-based archiving/unarchiving scenarios over
//! a synthetic MS-COCO-like dataset.
//!
//! Workloads are generic over [`SimClient`]: any file system in the
//! workspace (ArkFS or a baseline) whose clients carry a virtual-time
//! [`arkfs_simkit::Port`].

pub mod client;
pub mod dataset;
pub mod drive;
pub mod fio;
pub mod mdtest;
pub mod ops;
pub mod tar;
pub mod zipf;

pub use client::SimClient;
pub use dataset::DatasetSpec;
pub use drive::{run_ops, Drive, DriveReport};
pub use fio::{FioConfig, FioResult};
pub use mdtest::{MdtestEasyConfig, MdtestHardConfig, MdtestResult};
pub use ops::{exec_op, gen_iter, Op, OpGen, OpState};
pub use tar::{ArchiveConfig, ArchiveResult};
pub use zipf::Zipf;
