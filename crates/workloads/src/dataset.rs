//! Synthetic MS-COCO-like dataset generator.
//!
//! The paper archives the MS-COCO image dataset: "41K images with sizes
//! ranging from tens to hundreds of KB and an aggregated size of 7GB"
//! (§IV-D). We reproduce its shape with a deterministic log-normal size
//! distribution; the byte contents are synthetic.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of one synthetic dataset (per process).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Number of files (MS-COCO: ~41 000).
    pub files: usize,
    /// Median file size in bytes (MS-COCO: ~170 KB mean).
    pub median_size: u64,
    /// Log-normal sigma (spread "tens to hundreds of KB").
    pub sigma: f64,
    /// Clamp bounds.
    pub min_size: u64,
    pub max_size: u64,
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's dataset shape at full scale.
    pub fn ms_coco() -> Self {
        DatasetSpec {
            files: 41_000,
            median_size: 150 * 1024,
            sigma: 0.6,
            min_size: 10 * 1024,
            max_size: 900 * 1024,
            seed: 0xC0C0,
        }
    }

    /// A scaled-down dataset for laptop-scale runs: same distribution
    /// shape, smaller counts and sizes.
    pub fn scaled(files: usize, median_size: u64, seed: u64) -> Self {
        DatasetSpec {
            files,
            median_size,
            sigma: 0.6,
            min_size: (median_size / 8).max(1),
            max_size: median_size * 8,
            seed,
        }
    }

    /// Deterministic file sizes (log-normal via Box–Muller, clamped).
    pub fn sizes(&self) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mu = (self.median_size as f64).ln();
        (0..self.files)
            .map(|_| {
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let size = (mu + self.sigma * z).exp();
                (size as u64).clamp(self.min_size, self.max_size)
            })
            .collect()
    }

    /// Total bytes of the dataset.
    pub fn total_bytes(&self) -> u64 {
        self.sizes().iter().sum()
    }

    /// Deterministic content for file `index` of the given size (cheap
    /// repeating pattern, seeded so different files differ).
    pub fn content(&self, index: usize, size: u64) -> Vec<u8> {
        let tag = (self.seed as usize ^ index.wrapping_mul(0x9E3779B9)) as u8;
        let mut data = vec![tag; size as usize];
        // Stamp the index at the front so corruption tests can identify
        // files.
        let stamp = (index as u64).to_le_bytes();
        let n = stamp.len().min(data.len());
        data[..n].copy_from_slice(&stamp[..n]);
        data
    }

    /// File name of entry `index` (`img/000042.jpg`-style).
    pub fn name(&self, index: usize) -> String {
        format!("img{index:06}.jpg")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_deterministic_and_clamped() {
        let spec = DatasetSpec::scaled(500, 4096, 1);
        let a = spec.sizes();
        let b = spec.sizes();
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| (512..=32768).contains(&s)));
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn distribution_has_spread_around_median() {
        let spec = DatasetSpec::scaled(2000, 4096, 7);
        let sizes = spec.sizes();
        let below = sizes.iter().filter(|&&s| s < 4096).count();
        let above = sizes.len() - below;
        // Log-normal around the median: both halves populated.
        assert!(below > sizes.len() / 4, "below {below}");
        assert!(above > sizes.len() / 4, "above {above}");
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min * 4, "spread {min}..{max}");
    }

    #[test]
    fn ms_coco_shape_matches_paper() {
        let spec = DatasetSpec::ms_coco();
        assert_eq!(spec.files, 41_000);
        // Aggregated size ~7 GB (allow 5-10 GB; log-normal mean exceeds
        // the median).
        let total = spec.total_bytes();
        assert!(
            (5_000_000_000..10_000_000_000).contains(&total),
            "aggregate {} GB",
            total / 1_000_000_000
        );
    }

    #[test]
    fn content_is_identifiable() {
        let spec = DatasetSpec::scaled(10, 128, 3);
        let c = spec.content(7, 64);
        assert_eq!(c.len(), 64);
        assert_eq!(u64::from_le_bytes(c[..8].try_into().unwrap()), 7);
        assert_ne!(spec.content(1, 64)[8..], spec.content(2, 64)[8..]);
        assert_eq!(spec.name(42), "img000042.jpg");
    }
}
