//! The client abstraction the workload drivers run against.

use arkfs::ArkClient;
use arkfs_baselines::{CephClient, GoofysFs, MarFs, S3Fs};
use arkfs_simkit::Port;
use arkfs_telemetry::Telemetry;
use arkfs_vfs::Vfs;
use std::sync::Arc;

/// A simulated file system client: the near-POSIX surface plus access to
/// its virtual timeline (for throughput accounting) and the fio
/// drop-caches hook.
pub trait SimClient: Vfs {
    /// The client's virtual clock.
    fn port(&self) -> &Port;

    /// Drop clean cached data; flush dirty data first. Used between the
    /// fio write and read phases ("drops the cache entries of written
    /// files", §IV-B).
    fn drop_caches(&self) {}

    /// The deployment-wide telemetry (metrics registry + span tracer)
    /// behind this client, for systems that expose one.
    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        None
    }
}

impl SimClient for ArkClient {
    fn port(&self) -> &Port {
        ArkClient::port(self)
    }

    fn drop_caches(&self) {
        let _ = self.drop_data_cache();
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        Some(Arc::clone(ArkClient::telemetry(self)))
    }
}

impl SimClient for CephClient {
    fn port(&self) -> &Port {
        CephClient::port(self)
    }

    fn drop_caches(&self) {
        let _ = self.drop_data_cache();
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        CephClient::telemetry(self)
    }
}

impl SimClient for MarFs {
    fn port(&self) -> &Port {
        MarFs::port(self)
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        MarFs::telemetry(self)
    }
}

impl SimClient for S3Fs {
    fn port(&self) -> &Port {
        S3Fs::port(self)
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        S3Fs::telemetry(self)
    }
}

impl SimClient for GoofysFs {
    fn port(&self) -> &Port {
        GoofysFs::port(self)
    }

    fn drop_caches(&self) {
        GoofysFs::drop_data_cache(self);
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        GoofysFs::telemetry(self)
    }
}

/// A fleet of clients of one file system under test, one per simulated
/// process.
pub type Fleet = Vec<Arc<dyn SimClient>>;

/// MPI-style barrier on virtual time: every client's timeline advances to
/// the fleet-wide maximum. mdtest/fio phases are separated by barriers so
/// one straggler does not stagger the next phase's start times.
pub fn barrier(clients: &[Arc<dyn SimClient>]) {
    let max = clients.iter().map(|c| c.port().now()).max().unwrap_or(0);
    for c in clients {
        c.port().wait_until(max);
    }
}

/// Run one closure per client on its own OS thread, returning the
/// per-client results. The closures drive real concurrency; time is
/// virtual per client.
pub fn run_fleet<R, F>(clients: &[Arc<dyn SimClient>], f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize, Arc<dyn SimClient>) -> R + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let handles: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let c = Arc::clone(c);
            let f = Arc::clone(&f);
            std::thread::spawn(move || f(i, c))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("workload thread panicked"))
        .collect()
}
