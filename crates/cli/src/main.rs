//! `arkfs-shell` entry point: REPL over stdin, or `-c "cmd; cmd"` for
//! scripted sessions.

use arkfs_cli::Shell;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut shell = Shell::new();
    println!("ArkFS in-memory deployment ready (type `help`).");

    // Scripted mode: -c "cmd; cmd; ..."
    if let Some(pos) = args.iter().position(|a| a == "-c") {
        let script = args.get(pos + 1).cloned().unwrap_or_default();
        for cmd in script.split(';') {
            run(&mut shell, cmd.trim());
        }
        return;
    }

    let stdin = std::io::stdin();
    loop {
        print!("arkfs:{}> ", shell.cwd);
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "exit" || line == "quit" {
            break;
        }
        run(&mut shell, line);
    }
}

fn run(shell: &mut Shell, line: &str) {
    if line.is_empty() {
        return;
    }
    match shell.exec(line) {
        Ok(out) => {
            if !out.is_empty() {
                println!("{}", out.trim_end());
            }
        }
        Err(err) => eprintln!("{err}"),
    }
}
