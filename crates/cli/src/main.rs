//! `arkfs-shell` entry point: REPL over stdin, `-c "cmd; cmd"` for
//! scripted sessions, or the two-process loopback modes
//! `serve <addr>` / `client <addr> [--files N] [--shutdown]`.

use arkfs_cli::net::{self, ClientOpts};
use arkfs_cli::Shell;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    match args.get(1).map(String::as_str) {
        Some("serve") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7600");
            if let Err(e) = net::serve(addr) {
                eprintln!("arkfs-serve: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("client") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7600");
            let mut opts = ClientOpts::default();
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--files" => {
                        opts.files = args
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(opts.files);
                        i += 2;
                    }
                    "--shutdown" => {
                        opts.shutdown = true;
                        i += 1;
                    }
                    other => {
                        eprintln!("arkfs-client: unknown flag {other}");
                        std::process::exit(2);
                    }
                }
            }
            if let Err(e) = net::client(addr, opts) {
                eprintln!("arkfs-client: {e}");
                std::process::exit(1);
            }
            return;
        }
        _ => {}
    }

    let mut shell = Shell::new();
    println!("ArkFS in-memory deployment ready (type `help`).");

    // Scripted mode: -c "cmd; cmd; ..."
    if let Some(pos) = args.iter().position(|a| a == "-c") {
        let script = args.get(pos + 1).cloned().unwrap_or_default();
        for cmd in script.split(';') {
            run(&mut shell, cmd.trim());
        }
        return;
    }

    let stdin = std::io::stdin();
    loop {
        print!("arkfs:{}> ", shell.cwd);
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "exit" || line == "quit" {
            break;
        }
        run(&mut shell, line);
    }
}

fn run(shell: &mut Shell, line: &str) {
    if line.is_empty() {
        return;
    }
    match shell.exec(line) {
        Ok(out) => {
            if !out.is_empty() {
                println!("{}", out.trim_end());
            }
        }
        Err(err) => eprintln!("{err}"),
    }
}
