//! Two-process loopback deployment: `arkfs-shell serve <addr>` exports
//! the lease manager and the object store over TCP; `arkfs-shell client
//! <addr>` attaches the ordinary client stack to them and drives an
//! mdtest-easy-style workload, reporting wall-clock ops/s.
//!
//! Port layout: the serve side listens on three consecutive ports —
//! `<addr>` for the lease protocol, `+1` for forwarded operations, and
//! `+2` for the object store.

use arkfs::cluster::MANAGER_BASE;
use arkfs::remote::{lease_wire, ops_wire, store_wire, RemoteStore, StoreService, STORE_NODE};
use arkfs::rpc::{OpRequest, OpResponse};
use arkfs::{ArkCluster, ArkConfig};
use arkfs_lease::{LeaseRequest, LeaseResponse};
use arkfs_netsim::{NodeId, TcpTransport, Transport};
use arkfs_objstore::{ClusterConfig, ObjectCluster, ObjectStore};
use arkfs_simkit::ClusterSpec;
use arkfs_vfs::{Credentials, Vfs};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

fn offset_addr(base: SocketAddr, by: u16) -> SocketAddr {
    let mut a = base;
    a.set_port(base.port() + by);
    a
}

/// The serving half: object store + lease managers, exported over TCP.
/// Blocks until a client sends the shutdown frame, then exits cleanly.
pub fn serve(addr: &str) -> Result<(), String> {
    let base: SocketAddr = addr.parse().map_err(|e| format!("bad address: {e}"))?;
    let config = ArkConfig::default();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::rados(
        ClusterSpec::aws_paper(),
    )));

    let lease_net: Arc<TcpTransport<LeaseRequest, LeaseResponse>> =
        Arc::new(TcpTransport::new(lease_wire()));
    let ops_net: Arc<TcpTransport<OpRequest, OpResponse>> = Arc::new(TcpTransport::new(ops_wire()));
    let store_net = Arc::new(TcpTransport::new(store_wire()));
    store_net.register(
        STORE_NODE,
        Arc::new(StoreService::new(Arc::clone(&store) as Arc<dyn ObjectStore>)),
    );

    let lease_addr = lease_net.listen(base).map_err(|e| e.to_string())?;
    let ops_addr = ops_net
        .listen(offset_addr(base, 1))
        .map_err(|e| e.to_string())?;
    let store_addr = store_net
        .listen(offset_addr(base, 2))
        .map_err(|e| e.to_string())?;

    // Host side: registers the lease managers and bootstraps "/".
    let _cluster = ArkCluster::with_transports(
        config,
        Arc::clone(&store) as Arc<dyn ObjectStore>,
        lease_net.clone() as Arc<dyn Transport<LeaseRequest, LeaseResponse>>,
        ops_net.clone() as Arc<dyn Transport<OpRequest, OpResponse>>,
        true,
    );

    println!("arkfs-serve: lease on {lease_addr}, ops on {ops_addr}, store on {store_addr}");
    lease_net.wait_shutdown();
    ops_net.shutdown();
    store_net.shutdown();
    let (objects, bytes) = store.usage();
    println!("arkfs-serve: clean shutdown ({objects} objects, {bytes} bytes stored)");
    Ok(())
}

/// Options for the client half.
pub struct ClientOpts {
    /// Files in the mdtest-easy-style create/stat/delete sweep.
    pub files: usize,
    /// Send the serve side a shutdown frame when done.
    pub shutdown: bool,
}

impl Default for ClientOpts {
    fn default() -> Self {
        ClientOpts {
            files: 200,
            shutdown: false,
        }
    }
}

/// The client half: attach to a `serve` endpoint at `addr` and run a
/// small mdtest-easy-style workload (create N, stat N, delete N),
/// reporting wall-clock ops/s per phase.
pub fn client(addr: &str, opts: ClientOpts) -> Result<(), String> {
    let base: SocketAddr = addr.parse().map_err(|e| format!("bad address: {e}"))?;
    let config = ArkConfig::default();

    let lease_net: Arc<TcpTransport<LeaseRequest, LeaseResponse>> =
        Arc::new(TcpTransport::new(lease_wire()));
    for k in 0..config.lease_managers.max(1) {
        lease_net.register_addr(NodeId(MANAGER_BASE - k as u32), base);
    }
    let ops_net: Arc<TcpTransport<OpRequest, OpResponse>> = Arc::new(TcpTransport::new(ops_wire()));
    // Listen so other client processes (or the serve side) could forward
    // ops to directories this client leads.
    let my_ops = ops_net.listen((base.ip(), 0)).map_err(|e| e.to_string())?;
    let store_net = Arc::new(TcpTransport::new(store_wire()));
    store_net.register_addr(STORE_NODE, offset_addr(base, 2));

    let store =
        RemoteStore::connect(store_net).map_err(|e| format!("store connect failed: {e}"))?;
    println!(
        "arkfs-client: attached to {base} (store profile `{}`), ops endpoint {my_ops}",
        store.profile().name
    );

    // Non-host side: managers and the root inode live on the serve side.
    let cluster = ArkCluster::with_transports(
        config,
        store as Arc<dyn ObjectStore>,
        lease_net.clone() as Arc<dyn Transport<LeaseRequest, LeaseResponse>>,
        ops_net.clone() as Arc<dyn Transport<OpRequest, OpResponse>>,
        false,
    );
    // Disjoint node-id space from any clients the serve process mints.
    cluster.set_first_node(1000);
    let cl = cluster.client();
    let ctx = Credentials::root();

    let dir = "/mdtest-easy";
    cl.mkdir(&ctx, dir, 0o755).map_err(|e| e.to_string())?;

    let phase = |name: &str, t0: Instant, n: usize| {
        let secs = t0.elapsed().as_secs_f64();
        let rate = n as f64 / secs.max(1e-9);
        println!("arkfs-client: {name:>6}  {n} ops in {secs:.3}s  ({rate:.0} ops/s)");
        rate
    };

    let t0 = Instant::now();
    for i in 0..opts.files {
        let fh = cl
            .create(&ctx, &format!("{dir}/file.{i}"), 0o644)
            .map_err(|e| format!("create {i}: {e}"))?;
        cl.close(&ctx, fh).map_err(|e| e.to_string())?;
    }
    phase("create", t0, opts.files);

    let t0 = Instant::now();
    for i in 0..opts.files {
        cl.stat(&ctx, &format!("{dir}/file.{i}"))
            .map_err(|e| format!("stat {i}: {e}"))?;
    }
    phase("stat", t0, opts.files);

    let t0 = Instant::now();
    for i in 0..opts.files {
        cl.unlink(&ctx, &format!("{dir}/file.{i}"))
            .map_err(|e| format!("unlink {i}: {e}"))?;
    }
    phase("unlink", t0, opts.files);

    cl.rmdir(&ctx, dir).map_err(|e| e.to_string())?;
    // Push journaled state down to the (remote) store and hand every
    // lease back before leaving.
    cl.sync_all(&ctx).map_err(|e| e.to_string())?;
    cl.release_all(&ctx).map_err(|e| e.to_string())?;

    if opts.shutdown {
        lease_net
            .send_shutdown(base)
            .map_err(|e| format!("shutdown: {e}"))?;
        println!("arkfs-client: sent shutdown");
    }
    Ok(())
}
