//! `arkfs-shell`: an interactive shell over an in-memory ArkFS
//! deployment — the fastest way to poke at the file system's semantics
//! (leases, ACLs, the raw object layout) without writing a program.
//!
//! ```text
//! $ cargo run --release -p arkfs-cli
//! arkfs:/> mkdir projects
//! arkfs:/> cd projects
//! arkfs:/projects> put report.txt "quarterly numbers"
//! arkfs:/projects> ls -l
//! arkfs:/projects> objects
//! ```

use arkfs::{ArkClient, ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, KeyKind, ObjectCluster, ObjectStore};
use arkfs_simkit::{ClusterSpec, Port, SEC};
use arkfs_vfs::{
    path as vpath, read_file, write_file, Credentials, FileType, FsError, FsResult, SetAttr, Vfs,
};
use std::sync::Arc;

pub mod net;

/// Shell session state.
pub struct Shell {
    pub cluster: Arc<ArkCluster>,
    pub store: Arc<ObjectCluster>,
    pub client: Arc<ArkClient>,
    pub cwd: String,
    pub ctx: Credentials,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// A fresh single-client deployment on a RADOS-profile store.
    pub fn new() -> Self {
        let spec = ClusterSpec::aws_paper();
        let store = Arc::new(ObjectCluster::new(ClusterConfig::rados(spec)));
        let cluster = ArkCluster::new(
            ArkConfig::default(),
            Arc::clone(&store) as Arc<dyn ObjectStore>,
        );
        let client = cluster.client();
        // The shell is a debugging surface, so the flight recorder is
        // always on: every op leaves a bounded trail of structured
        // events that `obs dump` can surface after the fact.
        cluster.telemetry().flight.set_enabled(true);
        Shell {
            cluster,
            store,
            client,
            cwd: "/".to_string(),
            ctx: Credentials::root(),
        }
    }

    /// Resolve a possibly-relative path against the cwd.
    pub fn resolve(&self, arg: &str) -> String {
        let joined = if arg.starts_with('/') {
            arg.to_string()
        } else if self.cwd == "/" {
            format!("/{arg}")
        } else {
            format!("{}/{arg}", self.cwd)
        };
        // Normalize `.` and `..` shell-side.
        let mut comps: Vec<&str> = Vec::new();
        for c in joined.split('/') {
            match c {
                "" | "." => {}
                ".." => {
                    comps.pop();
                }
                other => comps.push(other),
            }
        }
        vpath::join(&comps)
    }

    /// Execute one command line; returns the output text.
    pub fn exec(&mut self, line: &str) -> Result<String, String> {
        let parts = tokenize(line);
        let Some((cmd, args)) = parts.split_first() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = args.iter().map(String::as_str).collect();
        self.dispatch(cmd, &args).map_err(|e| format!("{cmd}: {e}"))
    }

    fn dispatch(&mut self, cmd: &str, args: &[&str]) -> FsResult<String> {
        let fs = Arc::clone(&self.client);
        match cmd {
            "help" => Ok(HELP.to_string()),
            "pwd" => Ok(self.cwd.clone()),
            "cd" => {
                let path = self.resolve(args.first().copied().unwrap_or("/"));
                let st = fs.stat(&self.ctx, &path)?;
                if st.ftype != FileType::Directory {
                    return Err(FsError::NotADirectory);
                }
                self.cwd = path;
                Ok(String::new())
            }
            "ls" => {
                let long = args.contains(&"-l");
                let target = args
                    .iter()
                    .find(|a| !a.starts_with('-'))
                    .copied()
                    .unwrap_or(".");
                let path = self.resolve(target);
                let entries = fs.readdir(&self.ctx, &path)?;
                let mut out = String::new();
                for e in entries {
                    if long {
                        let st = fs.stat(
                            &self.ctx,
                            &self.resolve(&format!(
                                "{}/{}",
                                if path == "/" { "" } else { &path },
                                e.name
                            )),
                        )?;
                        let kind = match st.ftype {
                            FileType::Directory => 'd',
                            FileType::Symlink => 'l',
                            FileType::Regular => '-',
                        };
                        out.push_str(&format!(
                            "{kind}{:03o} {:>5}:{:<5} {:>10}  {}\n",
                            st.mode, st.uid, st.gid, st.size, e.name
                        ));
                    } else {
                        out.push_str(&e.name);
                        out.push('\n');
                    }
                }
                Ok(out)
            }
            "mkdir" => {
                for a in args {
                    let path = self.resolve(a);
                    fs.mkdir(&self.ctx, &path, 0o755)?;
                }
                Ok(String::new())
            }
            "put" => {
                let (path, content) = two_args(args)?;
                write_file(&*fs, &self.ctx, &self.resolve(path), content.as_bytes())?;
                Ok(String::new())
            }
            "cat" => {
                let path = self.resolve(one_arg(args)?);
                let data = read_file(&*fs, &self.ctx, &path)?;
                Ok(String::from_utf8_lossy(&data).into_owned())
            }
            "stat" => {
                let path = self.resolve(one_arg(args)?);
                let st = fs.stat(&self.ctx, &path)?;
                Ok(format!(
                    "ino: {:032x}\ntype: {:?}\nmode: {:04o}\nowner: {}:{}\nnlink: {}\nsize: {}\nmtime: {} ns",
                    st.ino, st.ftype, st.mode, st.uid, st.gid, st.nlink, st.size, st.mtime
                ))
            }
            "rm" => {
                for a in args {
                    fs.unlink(&self.ctx, &self.resolve(a))?;
                }
                Ok(String::new())
            }
            "rmdir" => {
                for a in args {
                    fs.rmdir(&self.ctx, &self.resolve(a))?;
                }
                Ok(String::new())
            }
            "mv" => {
                let (from, to) = two_args(args)?;
                fs.rename(&self.ctx, &self.resolve(from), &self.resolve(to))?;
                Ok(String::new())
            }
            "truncate" => {
                let (path, size) = two_args(args)?;
                let size: u64 = size.parse().map_err(|_| FsError::InvalidArgument)?;
                fs.truncate(&self.ctx, &self.resolve(path), size)?;
                Ok(String::new())
            }
            "chmod" => {
                let (mode, path) = two_args(args)?;
                let mode = u32::from_str_radix(mode, 8).map_err(|_| FsError::InvalidArgument)?;
                fs.setattr(&self.ctx, &self.resolve(path), &SetAttr::chmod(mode))?;
                Ok(String::new())
            }
            "chown" => {
                let (owner, path) = two_args(args)?;
                let (uid, gid) = owner.split_once(':').ok_or(FsError::InvalidArgument)?;
                let uid = uid.parse().map_err(|_| FsError::InvalidArgument)?;
                let gid = gid.parse().map_err(|_| FsError::InvalidArgument)?;
                fs.setattr(&self.ctx, &self.resolve(path), &SetAttr::chown(uid, gid))?;
                Ok(String::new())
            }
            "ln" => {
                let (target, link) = two_args(args)?;
                fs.symlink(&self.ctx, &self.resolve(link), target)?;
                Ok(String::new())
            }
            "readlink" => Ok(fs.readlink(&self.ctx, &self.resolve(one_arg(args)?))?),
            "tree" => {
                let path = self.resolve(args.first().copied().unwrap_or("."));
                let mut out = String::new();
                self.tree(&path, 0, &mut out)?;
                Ok(out)
            }
            "su" => {
                let uid: u32 = one_arg(args)?
                    .parse()
                    .map_err(|_| FsError::InvalidArgument)?;
                self.ctx = if uid == 0 {
                    Credentials::root()
                } else {
                    Credentials::user(uid)
                };
                Ok(format!("now uid {uid}"))
            }
            "sync" => {
                fs.sync_all(&self.ctx)?;
                Ok(String::new())
            }
            "objects" => {
                // Peek at the raw object layout behind the namespace.
                let port = Port::new();
                let keys = self
                    .store
                    .list(&port, None, None)
                    .map_err(|e| FsError::Io(e.to_string()))?;
                let count = |k: KeyKind| keys.iter().filter(|key| key.kind == k).count();
                Ok(format!(
                    "{} objects: {} inodes, {} dentry buckets, {} journal txns, {} data chunks\n{} logical bytes stored",
                    keys.len(),
                    count(KeyKind::Inode),
                    count(KeyKind::Dentry),
                    count(KeyKind::Journal),
                    count(KeyKind::Data),
                    self.store.stored_bytes(),
                ))
            }
            "df" => {
                let st = fs.statfs(&self.ctx)?;
                Ok(format!(
                    "{} inodes, {} store objects, {} logical bytes",
                    st.inodes, st.store_objects, st.store_bytes
                ))
            }
            "leases" => Ok(format!(
                "this client leads {} directories",
                self.client.led_directories()
            )),
            "time" => Ok(format!(
                "virtual time: {:.6} s",
                self.client.port().now() as f64 / SEC as f64
            )),
            "obs" => {
                let tel = self.cluster.telemetry();
                match args.first().copied() {
                    Some("dump") => {
                        // Fold the ring-loss and lock-contention counters
                        // into the registry so the dump is self-contained.
                        tel.publish_ring_losses();
                        self.client.publish_lock_stats();
                        let json = tel.flight.dump_json();
                        if let Some(path) = args.get(1) {
                            std::fs::write(path, &json).map_err(|e| FsError::Io(e.to_string()))?;
                            Ok(format!("wrote flight recorder dump to {path}"))
                        } else {
                            Ok(json)
                        }
                    }
                    Some(other) => Err(FsError::Io(format!(
                        "unknown obs subcommand '{other}' (try `obs` or `obs dump`)"
                    ))),
                    None => {
                        let spans = tel.tracer.events().len();
                        Ok(format!(
                            "tracing: {} ({} spans buffered, {} dropped)\n\
                             flight recorder: {} ({} events buffered, {} truncated)\n\
                             subcommands: obs dump [file]  write flight events as JSON",
                            if tel.tracer.enabled() { "on" } else { "off" },
                            spans,
                            tel.tracer.dropped(),
                            if tel.flight.enabled() { "on" } else { "off" },
                            tel.flight.events().len(),
                            tel.flight.truncated(),
                        ))
                    }
                }
            }
            _ => Err(FsError::Unsupported("unknown command (try `help`)")),
        }
    }

    fn tree(&self, path: &str, depth: usize, out: &mut String) -> FsResult<()> {
        for e in self.client.readdir(&self.ctx, path)? {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&e.name);
            if e.ftype == FileType::Directory {
                out.push('/');
                out.push('\n');
                let child = if path == "/" {
                    format!("/{}", e.name)
                } else {
                    format!("{path}/{}", e.name)
                };
                self.tree(&child, depth + 1, out)?;
            } else {
                out.push('\n');
            }
        }
        Ok(())
    }
}

fn one_arg<'a>(args: &[&'a str]) -> FsResult<&'a str> {
    args.first().copied().ok_or(FsError::InvalidArgument)
}

fn two_args<'a>(args: &[&'a str]) -> FsResult<(&'a str, &'a str)> {
    match args {
        [a, b, ..] => Ok((a, b)),
        _ => Err(FsError::InvalidArgument),
    }
}

/// Split a command line into tokens, honouring double quotes.
pub fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    for ch in line.chars() {
        match ch {
            '"' => quoted = !quoted,
            c if c.is_whitespace() && !quoted => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

pub const HELP: &str = "\
commands:
  ls [-l] [path]     list directory        mkdir <p>...        create directories
  cd <p> / pwd       navigate              put <p> \"text\"      write a file
  cat <p>            print a file          rm / rmdir <p>...   remove
  mv <a> <b>         rename (2PC across dirs)
  stat <p>           inode details         truncate <p> <n>    resize
  chmod <oct> <p>    permissions           chown <u:g> <p>     ownership
  ln <target> <link> symlink               readlink <p>        read link
  tree [p]           recursive listing     su <uid>            switch identity
  objects            raw object layout     leases              led directories
  df                 filesystem stats      obs                 observability status
  obs dump [file]    flight-recorder JSON (per-op event trail)
  sync               flush everything      time                virtual clock
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_honours_quotes() {
        assert_eq!(
            tokenize(r#"put f.txt "hello world" x"#),
            vec!["put", "f.txt", "hello world", "x"]
        );
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("ls -l /"), vec!["ls", "-l", "/"]);
    }

    #[test]
    fn path_resolution_with_cwd() {
        let mut sh = Shell::new();
        assert_eq!(sh.resolve("a"), "/a");
        assert_eq!(sh.resolve("/x/y"), "/x/y");
        sh.cwd = "/deep/dir".into();
        assert_eq!(sh.resolve("f"), "/deep/dir/f");
        assert_eq!(sh.resolve(".."), "/deep");
        assert_eq!(sh.resolve("../../.."), "/");
        assert_eq!(sh.resolve("./a/./b"), "/deep/dir/a/b");
    }

    #[test]
    fn end_to_end_session() {
        let mut sh = Shell::new();
        sh.exec("mkdir projects").unwrap();
        sh.exec("cd projects").unwrap();
        assert_eq!(sh.exec("pwd").unwrap(), "/projects");
        sh.exec(r#"put report.txt "q1 numbers""#).unwrap();
        assert_eq!(sh.exec("cat report.txt").unwrap(), "q1 numbers");
        let ls = sh.exec("ls").unwrap();
        assert_eq!(ls.trim(), "report.txt");
        let stat = sh.exec("stat report.txt").unwrap();
        assert!(stat.contains("size: 10"), "{stat}");
        sh.exec("mkdir archive").unwrap();
        sh.exec("mv report.txt archive/r.txt").unwrap();
        assert!(sh.exec("cat archive/r.txt").unwrap().contains("q1"));
        let tree = sh.exec("tree /").unwrap();
        assert!(tree.contains("archive/"), "{tree}");
        assert!(tree.contains("r.txt"));
        let objects = sh.exec("sync").and_then(|_| sh.exec("objects")).unwrap();
        assert!(objects.contains("inodes"), "{objects}");
        // Permission flow.
        sh.exec("chmod 600 archive/r.txt").unwrap();
        sh.exec("chown 100:100 archive/r.txt").unwrap();
        sh.exec("su 200").unwrap();
        assert!(sh.exec("cat archive/r.txt").is_err(), "denied for uid 200");
        sh.exec("su 0").unwrap();
        // Errors are readable strings.
        let err = sh.exec("cat /missing").unwrap_err();
        assert!(err.contains("no such file"), "{err}");
    }

    #[test]
    fn obs_dump_surfaces_flight_events() {
        let mut sh = Shell::new();
        sh.exec("mkdir d").unwrap();
        sh.exec(r#"put d/f.txt "hello""#).unwrap();
        sh.exec("cat d/f.txt").unwrap();
        let status = sh.exec("obs").unwrap();
        assert!(status.contains("flight recorder: on"), "{status}");
        let dump = sh.exec("obs dump").unwrap();
        // Every traced op leaves op.begin/op.end flight events, each
        // stamped with the originating trace id.
        assert!(dump.contains("\"kind\":\"op.begin\""), "{dump}");
        assert!(dump.contains("\"kind\":\"op.end\""), "{dump}");
        assert!(dump.contains("\"trace\":"), "{dump}");
        assert!(sh.exec("obs bogus").is_err());
    }

    #[test]
    fn symlink_and_misc_commands() {
        let mut sh = Shell::new();
        sh.exec(r#"put real.txt "data""#).unwrap();
        sh.exec("ln /real.txt link").unwrap();
        assert_eq!(sh.exec("readlink link").unwrap(), "/real.txt");
        assert_eq!(sh.exec("cat link").unwrap(), "data");
        assert!(sh.exec("time").unwrap().contains("virtual time"));
        assert!(sh.exec("df").unwrap().contains("inodes"));
        assert!(sh.exec("leases").unwrap().contains("leads"));
        assert!(sh.exec("help").unwrap().contains("commands"));
        assert!(sh.exec("bogus").unwrap_err().contains("unknown command"));
        sh.exec("truncate real.txt 2").unwrap();
        assert_eq!(sh.exec("cat real.txt").unwrap(), "da");
        sh.exec("rm real.txt link").unwrap();
    }
}
