//! In-process RPC with a virtual-time latency model.
//!
//! The paper uses gRPC for client↔client and client↔lease-manager
//! communication (§IV-A). Here, a [`Bus`] carries typed request/response
//! messages between [`NodeId`]s: the functional dispatch is a direct
//! (locked) call into the destination's [`Service`] implementation, while
//! the *cost* — network round trip plus the destination's serialized
//! service time — is charged to the caller's [`arkfs_simkit::Port`].
//!
//! Nodes can be `disconnect`ed to simulate crashes: calls then fail with
//! [`NetError::Unreachable`], which is how the lease-manager-failure and
//! client-failure scenarios of §III-E are exercised in tests.

use arkfs_simkit::{Nanos, Port};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A network endpoint identity. The paper's `<ip_addr, port>` pair reduces
/// to this token; [`NodeId::addr`] renders the human-readable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Pretty `<ip:port>`-style address, for logs and error messages.
    pub fn addr(&self) -> String {
        format!("10.0.{}.{}:7400", self.0 / 256, self.0 % 256)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// RPC failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// No service registered at the destination, or it was disconnected
    /// (crashed node).
    Unreachable,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable => write!(f, "destination unreachable"),
        }
    }
}

impl std::error::Error for NetError {}

/// A message handler living at a node. `arrival` is the caller's virtual
/// send time plus one-way latency; the implementation returns the response
/// together with the virtual time at which it was produced (usually after
/// reserving on its own [`arkfs_simkit::SharedResource`] to model request
/// serialization at the node).
pub trait Service<Req, Resp>: Send + Sync {
    fn handle(&self, arrival: Nanos, req: Req) -> (Resp, Nanos);
}

/// Blanket impl so closures can serve in tests.
impl<Req, Resp, F> Service<Req, Resp> for F
where
    F: Fn(Nanos, Req) -> (Resp, Nanos) + Send + Sync,
{
    fn handle(&self, arrival: Nanos, req: Req) -> (Resp, Nanos) {
        self(arrival, req)
    }
}

/// A typed RPC bus. One bus per protocol (lease protocol, forwarded
/// file-system operations, cache-invalidation broadcasts...).
pub struct Bus<Req, Resp> {
    half_rtt: Nanos,
    services: RwLock<HashMap<NodeId, Arc<dyn Service<Req, Resp>>>>,
    messages: AtomicU64,
}

impl<Req, Resp> Bus<Req, Resp> {
    /// Create a bus whose links have the given one-way latency.
    pub fn new(half_rtt: Nanos) -> Self {
        Bus {
            half_rtt,
            services: RwLock::new(HashMap::new()),
            messages: AtomicU64::new(0),
        }
    }

    /// Attach a service at `node`, replacing any previous one ("restart").
    pub fn register(&self, node: NodeId, service: Arc<dyn Service<Req, Resp>>) {
        self.services.write().insert(node, service);
    }

    /// Detach the service at `node`, simulating a crash.
    pub fn disconnect(&self, node: NodeId) {
        self.services.write().remove(&node);
    }

    /// Whether a service is reachable at `node`.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.services.read().contains_key(&node)
    }

    /// Total RPCs carried, for experiment accounting.
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Synchronous RPC: charges a full round trip plus the destination's
    /// service completion to the caller's port.
    pub fn call(&self, port: &Port, to: NodeId, req: Req) -> Result<Resp, NetError> {
        let service = {
            let map = self.services.read();
            map.get(&to).cloned().ok_or(NetError::Unreachable)?
        };
        self.messages.fetch_add(1, Ordering::Relaxed);
        let arrival = port.advance(self.half_rtt);
        let (resp, done) = service.handle(arrival, req);
        port.wait_until(done.saturating_add(self.half_rtt));
        Ok(resp)
    }

    /// One-way notification (e.g. a cache-flush broadcast): charges only
    /// the send latency; the destination still processes the message
    /// functionally and its completion time is discarded.
    pub fn notify(&self, port: &Port, to: NodeId, req: Req) -> Result<(), NetError> {
        let service = {
            let map = self.services.read();
            map.get(&to).cloned().ok_or(NetError::Unreachable)?
        };
        self.messages.fetch_add(1, Ordering::Relaxed);
        let arrival = port.advance(self.half_rtt);
        let _ = service.handle(arrival, req);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_simkit::SharedResource;

    #[test]
    fn node_addresses_render() {
        assert_eq!(NodeId(0).addr(), "10.0.0.0:7400");
        assert_eq!(NodeId(258).addr(), "10.0.1.2:7400");
        assert_eq!(NodeId(3).to_string(), "node3");
    }

    #[test]
    fn call_charges_round_trip_and_service() {
        let bus: Bus<u32, u32> = Bus::new(100);
        let server = Arc::new(SharedResource::ideal("svc"));
        let service = {
            let server = Arc::clone(&server);
            move |arrival: Nanos, req: u32| {
                let done = server.reserve(arrival, 50);
                (req * 2, done)
            }
        };
        bus.register(NodeId(1), Arc::new(service));
        let port = Port::new();
        let resp = bus.call(&port, NodeId(1), 21).unwrap();
        assert_eq!(resp, 42);
        // 100 (send) + 50 (service) + 100 (return)
        assert_eq!(port.now(), 250);
        assert_eq!(bus.message_count(), 1);
    }

    #[test]
    fn queueing_at_the_destination() {
        let bus: Bus<(), ()> = Bus::new(0);
        let server = Arc::new(SharedResource::ideal("svc"));
        let service = {
            let server = Arc::clone(&server);
            move |arrival: Nanos, _req: ()| ((), server.reserve(arrival, 10))
        };
        bus.register(NodeId(1), Arc::new(service));
        let p1 = Port::new();
        let p2 = Port::new();
        bus.call(&p1, NodeId(1), ()).unwrap();
        bus.call(&p2, NodeId(1), ()).unwrap();
        // Second caller queues behind the first at the server.
        assert_eq!(p1.now(), 10);
        assert_eq!(p2.now(), 20);
    }

    #[test]
    fn unreachable_nodes_error() {
        let bus: Bus<(), ()> = Bus::new(1);
        let port = Port::new();
        assert_eq!(bus.call(&port, NodeId(9), ()), Err(NetError::Unreachable));
        bus.register(NodeId(9), Arc::new(|a: Nanos, _| ((), a)));
        assert!(bus.is_connected(NodeId(9)));
        assert!(bus.call(&port, NodeId(9), ()).is_ok());
        bus.disconnect(NodeId(9));
        assert!(!bus.is_connected(NodeId(9)));
        assert_eq!(bus.call(&port, NodeId(9), ()), Err(NetError::Unreachable));
    }

    #[test]
    fn notify_charges_one_way_only() {
        let bus: Bus<(), ()> = Bus::new(100);
        bus.register(NodeId(1), Arc::new(|a: Nanos, _| ((), a + 1_000_000)));
        let port = Port::new();
        bus.notify(&port, NodeId(1), ()).unwrap();
        assert_eq!(port.now(), 100);
    }

    #[test]
    fn reregistering_replaces_service() {
        let bus: Bus<u8, u8> = Bus::new(0);
        bus.register(NodeId(1), Arc::new(|a: Nanos, _| (1u8, a)));
        bus.register(NodeId(1), Arc::new(|a: Nanos, _| (2u8, a)));
        let port = Port::new();
        assert_eq!(bus.call(&port, NodeId(1), 0).unwrap(), 2);
    }
}
