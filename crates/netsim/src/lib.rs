//! RPC transports for the ArkFS stack.
//!
//! The paper uses gRPC for client↔client and client↔lease-manager
//! communication (§IV-A). Here the protocol surface is a [`Transport`]
//! trait — send a typed request to a [`NodeId`], get a response or a
//! typed [`NetError`] — with two implementations:
//!
//! * [`Bus`] — the virtual-time simulator transport. Functional dispatch
//!   is a direct (locked) call into the destination's [`Service`]
//!   implementation, while the *cost* — network round trip plus the
//!   destination's serialized service time — is charged to the caller's
//!   [`arkfs_simkit::Port`]. Deterministic; the default for every
//!   benchmark figure.
//! * [`TcpTransport`] (see [`tcp`]) — real length-prefixed frames over
//!   `std::net` sockets, for running the same stack across processes.
//!
//! Nodes can be `disconnect`ed to simulate crashes: calls then fail with
//! [`NetError::Unreachable`], which is how the lease-manager-failure and
//! client-failure scenarios of §III-E are exercised in tests.

pub mod tcp;

pub use tcp::{TcpTransport, WireFns};

use arkfs_simkit::{Nanos, Port};
use arkfs_telemetry::{Counter, Registry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A network endpoint identity. The paper's `<ip_addr, port>` pair reduces
/// to this token; what socket address (if any) a node maps to is owned by
/// the transport carrying its traffic ([`Transport::addr_of`]) — a
/// virtual-bus node has none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Human-readable form for logs and errors: the transport's
    /// registered socket address when there is one, else the bare node
    /// token.
    pub fn label(&self, addr: Option<SocketAddr>) -> String {
        match addr {
            Some(a) => format!("{self}@{a}"),
            None => self.to_string(),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// RPC failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// No service registered at the destination, or it was disconnected
    /// (crashed node), or the transport has no address for it.
    Unreachable,
    /// No response within the transport's deadline (or a bounded retry
    /// loop gave up on a transient error).
    Timeout,
    /// The peer's bytes did not decode as a protocol message.
    Decode,
    /// The connection failed mid-exchange (peer died, socket error).
    ConnReset,
}

impl NetError {
    /// Whether the failure is worth retrying: the request may simply
    /// have been lost (timeout, reset). `Unreachable` is authoritative
    /// — the destination is gone until someone re-registers it — and
    /// `Decode` is deterministic, so neither is retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, NetError::Timeout | NetError::ConnReset)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable => write!(f, "destination unreachable"),
            NetError::Timeout => write!(f, "request timed out"),
            NetError::Decode => write!(f, "protocol decode error"),
            NetError::ConnReset => write!(f, "connection reset"),
        }
    }
}

impl std::error::Error for NetError {}

/// A message handler living at a node. `arrival` is the caller's virtual
/// send time plus one-way latency; the implementation returns the response
/// together with the virtual time at which it was produced (usually after
/// reserving on its own [`arkfs_simkit::SharedResource`] to model request
/// serialization at the node).
pub trait Service<Req, Resp>: Send + Sync {
    fn handle(&self, arrival: Nanos, req: Req) -> (Resp, Nanos);
}

/// Blanket impl so closures can serve in tests.
impl<Req, Resp, F> Service<Req, Resp> for F
where
    F: Fn(Nanos, Req) -> (Resp, Nanos) + Send + Sync,
{
    fn handle(&self, arrival: Nanos, req: Req) -> (Resp, Nanos) {
        self(arrival, req)
    }
}

/// A typed RPC transport: one per protocol (lease protocol, forwarded
/// file-system operations, remote object storage). Everything above this
/// trait is transport-agnostic — the same client stack runs on the
/// virtual-time [`Bus`] and on [`TcpTransport`] sockets.
pub trait Transport<Req, Resp>: Send + Sync {
    /// Synchronous RPC to the service at `to`.
    fn call(&self, port: &Port, to: NodeId, req: Req) -> Result<Resp, NetError>;

    /// One-way notification: delivery is attempted, the response (if the
    /// implementation produces one) is discarded, and only the send cost
    /// is charged.
    fn notify(&self, port: &Port, to: NodeId, req: Req) -> Result<(), NetError>;

    /// Attach a service at `node`, replacing any previous one ("restart").
    fn register(&self, node: NodeId, service: Arc<dyn Service<Req, Resp>>);

    /// Detach the service at `node`, simulating a crash.
    fn disconnect(&self, node: NodeId);

    /// Whether `node` is reachable (a local service or a known address).
    fn is_connected(&self, node: NodeId) -> bool;

    /// Total RPCs carried, for experiment accounting.
    fn message_count(&self) -> u64;

    /// The socket address this transport would dial for `node`, if it
    /// has one. The virtual bus has no addresses.
    fn addr_of(&self, _node: NodeId) -> Option<SocketAddr> {
        None
    }

    /// Sit out a retry backoff delay. The bus charges *virtual* time to
    /// the caller's port; a real transport sleeps the host thread for
    /// the same wall-clock duration.
    fn backoff(&self, port: &Port, delay: Nanos);
}

/// Bounded exponential backoff for transient RPC failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Nanos,
    /// Ceiling on any single delay.
    pub max_delay: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: 2_000_000,  // 2 ms
            max_delay: 100_000_000, // 100 ms
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based): `base << retry`,
    /// capped at `max_delay`.
    pub fn delay(&self, retry: u32) -> Nanos {
        self.base_delay
            .saturating_shl(retry.min(63))
            .min(self.max_delay)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if n >= self.leading_zeros() {
            u64::MAX
        } else {
            self << n
        }
    }
}

/// Registry handles for the retry loop's counters.
pub struct RetryCounters {
    /// `net.retry.count`: transient failures that were retried.
    pub retries: Arc<Counter>,
    /// `net.give_up.count`: calls abandoned at the attempt cap.
    pub give_ups: Arc<Counter>,
}

impl RetryCounters {
    pub fn register(reg: &Registry) -> Self {
        RetryCounters {
            retries: reg.counter("net.retry.count"),
            give_ups: reg.counter("net.give_up.count"),
        }
    }
}

/// [`Transport::call`] under a bounded retry/backoff policy. Transient
/// failures (see [`NetError::is_transient`]) are retried with growing
/// delays — charged to virtual time on the bus and to wall-clock on TCP,
/// via [`Transport::backoff`] — until the attempt cap, where the call
/// gives up with [`NetError::Timeout`]. Non-transient failures return
/// immediately. The bus never produces a transient error, so on the
/// virtual-time path this wrapper is behaviorally invisible.
pub fn call_with_retry<Req: Clone, Resp>(
    transport: &dyn Transport<Req, Resp>,
    port: &Port,
    to: NodeId,
    req: Req,
    policy: RetryPolicy,
    counters: Option<&RetryCounters>,
) -> Result<Resp, NetError> {
    let attempts = policy.max_attempts.max(1);
    let mut retry = 0u32;
    loop {
        match transport.call(port, to, req.clone()) {
            Err(e) if e.is_transient() => {
                if retry + 1 >= attempts {
                    if let Some(c) = counters {
                        c.give_ups.inc();
                    }
                    return Err(NetError::Timeout);
                }
                if let Some(c) = counters {
                    c.retries.inc();
                }
                transport.backoff(port, policy.delay(retry));
                retry += 1;
            }
            r => return r,
        }
    }
}

/// The virtual-time transport. One bus per protocol (lease protocol,
/// forwarded file-system operations, cache-invalidation broadcasts...).
pub struct Bus<Req, Resp> {
    half_rtt: Nanos,
    services: RwLock<HashMap<NodeId, Arc<dyn Service<Req, Resp>>>>,
    messages: AtomicU64,
}

impl<Req, Resp> Bus<Req, Resp> {
    /// Create a bus whose links have the given one-way latency.
    pub fn new(half_rtt: Nanos) -> Self {
        Bus {
            half_rtt,
            services: RwLock::new(HashMap::new()),
            messages: AtomicU64::new(0),
        }
    }

    /// Attach a service at `node`, replacing any previous one ("restart").
    pub fn register(&self, node: NodeId, service: Arc<dyn Service<Req, Resp>>) {
        self.services.write().insert(node, service);
    }

    /// Detach the service at `node`, simulating a crash.
    pub fn disconnect(&self, node: NodeId) {
        self.services.write().remove(&node);
    }

    /// Whether a service is reachable at `node`.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.services.read().contains_key(&node)
    }

    /// Total RPCs carried, for experiment accounting.
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Synchronous RPC: charges a full round trip plus the destination's
    /// service completion to the caller's port.
    pub fn call(&self, port: &Port, to: NodeId, req: Req) -> Result<Resp, NetError> {
        let service = {
            let map = self.services.read();
            map.get(&to).cloned().ok_or(NetError::Unreachable)?
        };
        self.messages.fetch_add(1, Ordering::Relaxed);
        let arrival = port.advance(self.half_rtt);
        let (resp, done) = service.handle(arrival, req);
        port.wait_until(done.saturating_add(self.half_rtt));
        Ok(resp)
    }

    /// One-way notification (e.g. a cache-flush broadcast): charges only
    /// the send latency; the destination still processes the message
    /// functionally and its completion time is discarded.
    pub fn notify(&self, port: &Port, to: NodeId, req: Req) -> Result<(), NetError> {
        let service = {
            let map = self.services.read();
            map.get(&to).cloned().ok_or(NetError::Unreachable)?
        };
        self.messages.fetch_add(1, Ordering::Relaxed);
        let arrival = port.advance(self.half_rtt);
        let _ = service.handle(arrival, req);
        Ok(())
    }
}

impl<Req: Send, Resp: Send> Transport<Req, Resp> for Bus<Req, Resp> {
    fn call(&self, port: &Port, to: NodeId, req: Req) -> Result<Resp, NetError> {
        Bus::call(self, port, to, req)
    }

    fn notify(&self, port: &Port, to: NodeId, req: Req) -> Result<(), NetError> {
        Bus::notify(self, port, to, req)
    }

    fn register(&self, node: NodeId, service: Arc<dyn Service<Req, Resp>>) {
        Bus::register(self, node, service)
    }

    fn disconnect(&self, node: NodeId) {
        Bus::disconnect(self, node)
    }

    fn is_connected(&self, node: NodeId) -> bool {
        Bus::is_connected(self, node)
    }

    fn message_count(&self) -> u64 {
        Bus::message_count(self)
    }

    fn backoff(&self, port: &Port, delay: Nanos) {
        // Backoff on the simulated network is simulated time.
        port.advance(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_simkit::SharedResource;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn node_labels_render() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId(3).label(None), "node3");
        let addr: SocketAddr = "127.0.0.1:7600".parse().unwrap();
        assert_eq!(NodeId(3).label(Some(addr)), "node3@127.0.0.1:7600");
        // The bus has no address registry: labels fall back to the token.
        let bus: Bus<(), ()> = Bus::new(0);
        assert_eq!(Transport::addr_of(&bus, NodeId(3)), None);
    }

    #[test]
    fn call_charges_round_trip_and_service() {
        let bus: Bus<u32, u32> = Bus::new(100);
        let server = Arc::new(SharedResource::ideal("svc"));
        let service = {
            let server = Arc::clone(&server);
            move |arrival: Nanos, req: u32| {
                let done = server.reserve(arrival, 50);
                (req * 2, done)
            }
        };
        bus.register(NodeId(1), Arc::new(service));
        let port = Port::new();
        let resp = bus.call(&port, NodeId(1), 21).unwrap();
        assert_eq!(resp, 42);
        // 100 (send) + 50 (service) + 100 (return)
        assert_eq!(port.now(), 250);
        assert_eq!(bus.message_count(), 1);
    }

    #[test]
    fn queueing_at_the_destination() {
        let bus: Bus<(), ()> = Bus::new(0);
        let server = Arc::new(SharedResource::ideal("svc"));
        let service = {
            let server = Arc::clone(&server);
            move |arrival: Nanos, _req: ()| ((), server.reserve(arrival, 10))
        };
        bus.register(NodeId(1), Arc::new(service));
        let p1 = Port::new();
        let p2 = Port::new();
        bus.call(&p1, NodeId(1), ()).unwrap();
        bus.call(&p2, NodeId(1), ()).unwrap();
        // Second caller queues behind the first at the server.
        assert_eq!(p1.now(), 10);
        assert_eq!(p2.now(), 20);
    }

    #[test]
    fn unreachable_nodes_error() {
        let bus: Bus<(), ()> = Bus::new(1);
        let port = Port::new();
        assert_eq!(bus.call(&port, NodeId(9), ()), Err(NetError::Unreachable));
        bus.register(NodeId(9), Arc::new(|a: Nanos, _| ((), a)));
        assert!(bus.is_connected(NodeId(9)));
        assert!(bus.call(&port, NodeId(9), ()).is_ok());
        bus.disconnect(NodeId(9));
        assert!(!bus.is_connected(NodeId(9)));
        assert_eq!(bus.call(&port, NodeId(9), ()), Err(NetError::Unreachable));
    }

    #[test]
    fn notify_charges_one_way_only() {
        let bus: Bus<(), ()> = Bus::new(100);
        bus.register(NodeId(1), Arc::new(|a: Nanos, _| ((), a + 1_000_000)));
        let port = Port::new();
        bus.notify(&port, NodeId(1), ()).unwrap();
        assert_eq!(port.now(), 100);
    }

    #[test]
    fn reregistering_replaces_service() {
        let bus: Bus<u8, u8> = Bus::new(0);
        bus.register(NodeId(1), Arc::new(|a: Nanos, _| (1u8, a)));
        bus.register(NodeId(1), Arc::new(|a: Nanos, _| (2u8, a)));
        let port = Port::new();
        assert_eq!(bus.call(&port, NodeId(1), 0).unwrap(), 2);
    }

    #[test]
    fn retry_policy_delays_grow_and_cap() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: 10,
            max_delay: 50,
        };
        assert_eq!(p.delay(0), 10);
        assert_eq!(p.delay(1), 20);
        assert_eq!(p.delay(2), 40);
        assert_eq!(p.delay(3), 50, "capped");
        assert_eq!(p.delay(63), 50, "huge shifts saturate, never overflow");
    }

    /// A transport that fails transiently N times before delegating to an
    /// inner bus — the harness for the retry-policy contract.
    struct Flaky {
        inner: Bus<u32, u32>,
        failures_left: AtomicU32,
        error: NetError,
    }

    impl Transport<u32, u32> for Flaky {
        fn call(&self, port: &Port, to: NodeId, req: u32) -> Result<u32, NetError> {
            let left = self.failures_left.load(Ordering::Relaxed);
            if left > 0 {
                self.failures_left.store(left - 1, Ordering::Relaxed);
                return Err(self.error);
            }
            self.inner.call(port, to, req)
        }
        fn notify(&self, port: &Port, to: NodeId, req: u32) -> Result<(), NetError> {
            self.inner.notify(port, to, req)
        }
        fn register(&self, node: NodeId, service: Arc<dyn Service<u32, u32>>) {
            self.inner.register(node, service)
        }
        fn disconnect(&self, node: NodeId) {
            self.inner.disconnect(node)
        }
        fn is_connected(&self, node: NodeId) -> bool {
            self.inner.is_connected(node)
        }
        fn message_count(&self) -> u64 {
            self.inner.message_count()
        }
        fn backoff(&self, port: &Port, delay: Nanos) {
            port.advance(delay);
        }
    }

    fn flaky(failures: u32, error: NetError) -> Flaky {
        let inner: Bus<u32, u32> = Bus::new(0);
        inner.register(NodeId(1), Arc::new(|a: Nanos, req: u32| (req + 1, a)));
        Flaky {
            inner,
            failures_left: AtomicU32::new(failures),
            error,
        }
    }

    #[test]
    fn transient_failures_retry_with_growing_delays() {
        let t = flaky(2, NetError::ConnReset);
        let reg = Registry::default();
        let counters = RetryCounters::register(&reg);
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: 100,
            max_delay: 10_000,
        };
        let port = Port::new();
        let r = call_with_retry(&t, &port, NodeId(1), 41, policy, Some(&counters));
        assert_eq!(r, Ok(42));
        // Two failures -> two backoffs of 100 and 200 charged to the port.
        assert_eq!(port.now(), 300);
        assert_eq!(counters.retries.get(), 2);
        assert_eq!(counters.give_ups.get(), 0);
        assert_eq!(reg.counter("net.retry.count").get(), 2, "in the registry");
    }

    #[test]
    fn retry_gives_up_at_the_cap_with_timeout() {
        let t = flaky(u32::MAX, NetError::Timeout);
        let reg = Registry::default();
        let counters = RetryCounters::register(&reg);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: 10,
            max_delay: 1_000,
        };
        let port = Port::new();
        let r = call_with_retry(&t, &port, NodeId(1), 7, policy, Some(&counters));
        assert_eq!(r, Err(NetError::Timeout));
        // 3 attempts -> 2 retries (delays 10 + 20), then give up.
        assert_eq!(port.now(), 30);
        assert_eq!(counters.retries.get(), 2);
        assert_eq!(counters.give_ups.get(), 1);
        assert_eq!(reg.counter("net.give_up.count").get(), 1);
    }

    #[test]
    fn non_transient_failures_do_not_retry() {
        let t = flaky(5, NetError::Unreachable);
        let port = Port::new();
        let r = call_with_retry(&t, &port, NodeId(1), 7, RetryPolicy::default(), None);
        assert_eq!(r, Err(NetError::Unreachable));
        assert_eq!(port.now(), 0, "no backoff charged");
        let t = flaky(5, NetError::Decode);
        assert_eq!(
            call_with_retry(&t, &port, NodeId(1), 7, RetryPolicy::default(), None),
            Err(NetError::Decode)
        );
    }

    #[test]
    fn bus_via_trait_object_matches_inherent_behavior() {
        let bus: Arc<dyn Transport<u32, u32>> = Arc::new(Bus::new(100));
        let server = Arc::new(SharedResource::ideal("svc"));
        let service = {
            let server = Arc::clone(&server);
            move |arrival: Nanos, req: u32| (req * 2, server.reserve(arrival, 50))
        };
        bus.register(NodeId(1), Arc::new(service));
        let port = Port::new();
        assert_eq!(bus.call(&port, NodeId(1), 21), Ok(42));
        assert_eq!(port.now(), 250);
        assert_eq!(bus.message_count(), 1);
    }
}
