//! Real-socket transport: the same typed RPC surface as the virtual-time
//! [`Bus`](crate::Bus), carried as length-prefixed frames over `std::net`
//! TCP streams.
//!
//! Built only on the standard library (the workspace is vendored/offline):
//! a thread-per-connection accept loop on the serving side, a small
//! connection pool on the calling side. Frames are:
//!
//! ```text
//! request:  u32 len | u8 kind (0=call, 1=notify, 2=shutdown) |
//!           u32 dest-node | u64 virtual-arrival | payload bytes
//! response: u32 len | u8 status (0=ok, 1=unreachable, 2=decode) |
//!           u64 virtual-done | payload bytes
//! ```
//!
//! `len` counts everything after itself, little-endian like the rest of
//! the ArkFS wire format. Payload bytes are produced by the caller-supplied
//! [`WireFns`] codec table (the arkfs crate's framed `WireCodec`s, which
//! carry their own CRC32) — this module never interprets them.
//!
//! ## Virtual time as a logical clock
//!
//! Services written for the simulator account their work in virtual
//! nanoseconds. Frames therefore carry the caller's virtual `now` as the
//! request arrival and return the service's virtual completion time; the
//! caller then runs `port.wait_until(done)`. Across TCP the virtual
//! clock degrades gracefully into a Lamport-style logical clock: causal
//! ordering is preserved, wall-clock pacing comes from the sockets
//! themselves, and a loopback deployment is semantically a `half_rtt = 0`
//! bus — which is what the differential test asserts.

use crate::{NetError, NodeId, Service, Transport};
use arkfs_simkit::{Nanos, Port};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

const KIND_CALL: u8 = 0;
const KIND_NOTIFY: u8 = 1;
const KIND_SHUTDOWN: u8 = 2;

const STATUS_OK: u8 = 0;
const STATUS_UNREACHABLE: u8 = 1;
const STATUS_DECODE: u8 = 2;

/// Reject frames larger than this before allocating — a garbage or
/// hostile length prefix must not take the process down.
const MAX_FRAME: u32 = 64 << 20;

/// Request header bytes after the length prefix: kind + dest + arrival.
const REQ_HEADER: usize = 1 + 4 + 8;
/// Response header bytes after the length prefix: status + done.
const RESP_HEADER: usize = 1 + 8;

/// Codec table bridging the transport (which moves opaque bytes) and the
/// protocol crate (which owns the `WireCodec` impls). Plain function
/// pointers keep `netsim` free of a dependency on `arkfs` — the protocol
/// crate constructs the table from its own framed codecs.
pub struct WireFns<Req, Resp> {
    pub enc_req: fn(&Req) -> Vec<u8>,
    pub dec_req: fn(&[u8]) -> Option<Req>,
    pub enc_resp: fn(&Resp) -> Vec<u8>,
    pub dec_resp: fn(&[u8]) -> Option<Resp>,
}

// Manual impls: derive would demand Req: Clone / Copy, but fn pointers
// are always copyable.
impl<Req, Resp> Clone for WireFns<Req, Resp> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<Req, Resp> Copy for WireFns<Req, Resp> {}

/// State shared with the accept-loop and connection threads, so the
/// outer [`TcpTransport`] can be dropped without leaking the listener.
struct Shared<Req, Resp> {
    codec: WireFns<Req, Resp>,
    services: RwLock<HashMap<NodeId, Arc<dyn Service<Req, Resp>>>>,
    messages: AtomicU64,
    stop: AtomicBool,
    shutdown: StdMutex<bool>,
    shutdown_cv: Condvar,
}

/// A [`Transport`] over real TCP sockets.
///
/// Services registered locally (via [`Transport::register`]) are served
/// both in-process — a call to a local node never touches a socket — and
/// to remote peers once [`TcpTransport::listen`] has started an accept
/// loop. Remote nodes become reachable by naming their socket address
/// with [`TcpTransport::register_addr`].
pub struct TcpTransport<Req, Resp> {
    shared: Arc<Shared<Req, Resp>>,
    /// NodeId → socket address of the peer transport serving that node.
    registry: RwLock<HashMap<NodeId, SocketAddr>>,
    /// Idle connections, keyed by peer address.
    pool: Mutex<HashMap<SocketAddr, Vec<TcpStream>>>,
    read_timeout: Duration,
    local_addr: Mutex<Option<SocketAddr>>,
}

impl<Req: Send + Sync + 'static, Resp: Send + Sync + 'static> TcpTransport<Req, Resp> {
    pub fn new(codec: WireFns<Req, Resp>) -> Self {
        Self::with_read_timeout(codec, Duration::from_secs(30))
    }

    /// `read_timeout` bounds how long a call waits for the peer's
    /// response before failing with [`NetError::Timeout`].
    pub fn with_read_timeout(codec: WireFns<Req, Resp>, read_timeout: Duration) -> Self {
        TcpTransport {
            shared: Arc::new(Shared {
                codec,
                services: RwLock::new(HashMap::new()),
                messages: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                shutdown: StdMutex::new(false),
                shutdown_cv: Condvar::new(),
            }),
            registry: RwLock::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
            read_timeout,
            local_addr: Mutex::new(None),
        }
    }

    /// Map `node` to the socket address of the transport serving it.
    pub fn register_addr(&self, node: NodeId, addr: SocketAddr) {
        self.registry.write().insert(node, addr);
    }

    /// The address this transport is listening on, once [`listen`] ran.
    ///
    /// [`listen`]: TcpTransport::listen
    pub fn local_addr(&self) -> Option<SocketAddr> {
        *self.local_addr.lock()
    }

    /// Bind `addr` and start the accept loop on a background thread.
    /// Returns the bound address (useful with port 0).
    pub fn listen<A: ToSocketAddrs>(&self, addr: A) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        *self.local_addr.lock() = Some(bound);
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new()
            .name(format!("arkfs-accept-{bound}"))
            .spawn(move || accept_loop(listener, shared))?;
        Ok(bound)
    }

    /// Block until a peer delivers a shutdown frame (or [`shutdown`] is
    /// called locally). Used by `cli serve` to wait for its client.
    ///
    /// [`shutdown`]: TcpTransport::shutdown
    pub fn wait_shutdown(&self) {
        let mut done = self.shared.shutdown.lock().unwrap();
        while !*done {
            done = self.shared.shutdown_cv.wait(done).unwrap();
        }
    }

    /// Stop the accept loop and release any [`wait_shutdown`] waiters.
    ///
    /// [`wait_shutdown`]: TcpTransport::wait_shutdown
    pub fn shutdown(&self) {
        self.shared.request_stop();
    }

    /// Ask the transport listening at `addr` to shut down cleanly; waits
    /// for its acknowledgement.
    pub fn send_shutdown(&self, addr: SocketAddr) -> Result<(), NetError> {
        let mut stream = TcpStream::connect(addr).map_err(|_| NetError::Unreachable)?;
        stream
            .set_read_timeout(Some(self.read_timeout))
            .map_err(|_| NetError::ConnReset)?;
        write_request(&mut stream, KIND_SHUTDOWN, NodeId(0), 0, &[])
            .map_err(|_| NetError::ConnReset)?;
        let (_status, _done, _payload) = read_response(&mut stream)?;
        Ok(())
    }

    fn checkout(&self, addr: SocketAddr) -> Result<TcpStream, NetError> {
        if let Some(conn) = self.pool.lock().get_mut(&addr).and_then(Vec::pop) {
            return Ok(conn);
        }
        let stream = TcpStream::connect(addr).map_err(|_| NetError::Unreachable)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.read_timeout))
            .map_err(|_| NetError::ConnReset)?;
        Ok(stream)
    }

    fn checkin(&self, addr: SocketAddr, conn: TcpStream) {
        self.pool.lock().entry(addr).or_default().push(conn);
    }

    /// Local-service fast path: a call to a node served by this very
    /// transport dispatches directly, exactly like the bus with
    /// `half_rtt = 0`.
    fn local(&self, to: NodeId) -> Option<Arc<dyn Service<Req, Resp>>> {
        self.shared.services.read().get(&to).cloned()
    }
}

impl<Req, Resp> Shared<Req, Resp> {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut done = self.shutdown.lock().unwrap();
        *done = true;
        self.shutdown_cv.notify_all();
    }
}

impl<Req: Send + Sync + 'static, Resp: Send + Sync + 'static> Transport<Req, Resp>
    for TcpTransport<Req, Resp>
{
    fn call(&self, port: &Port, to: NodeId, req: Req) -> Result<Resp, NetError> {
        self.shared.messages.fetch_add(1, Ordering::Relaxed);
        if let Some(service) = self.local(to) {
            let (resp, done) = service.handle(port.now(), req);
            port.wait_until(done);
            return Ok(resp);
        }
        let addr = self
            .registry
            .read()
            .get(&to)
            .copied()
            .ok_or(NetError::Unreachable)?;
        let payload = (self.shared.codec.enc_req)(&req);
        let mut conn = self.checkout(addr)?;
        if write_request(&mut conn, KIND_CALL, to, port.now(), &payload).is_err() {
            // The pooled connection may have gone stale; retry once on a
            // fresh socket before reporting a reset.
            conn = TcpStream::connect(addr).map_err(|_| NetError::ConnReset)?;
            conn.set_nodelay(true).ok();
            conn.set_read_timeout(Some(self.read_timeout))
                .map_err(|_| NetError::ConnReset)?;
            write_request(&mut conn, KIND_CALL, to, port.now(), &payload)
                .map_err(|_| NetError::ConnReset)?;
        }
        let (status, done, resp_payload) = read_response(&mut conn)?;
        let out = match status {
            STATUS_OK => {
                let resp = (self.shared.codec.dec_resp)(&resp_payload).ok_or(NetError::Decode)?;
                port.wait_until(done);
                Ok(resp)
            }
            STATUS_UNREACHABLE => Err(NetError::Unreachable),
            STATUS_DECODE => Err(NetError::Decode),
            _ => Err(NetError::Decode),
        };
        self.checkin(addr, conn);
        out
    }

    fn notify(&self, port: &Port, to: NodeId, req: Req) -> Result<(), NetError> {
        self.shared.messages.fetch_add(1, Ordering::Relaxed);
        if let Some(service) = self.local(to) {
            let _ = service.handle(port.now(), req);
            return Ok(());
        }
        let addr = self
            .registry
            .read()
            .get(&to)
            .copied()
            .ok_or(NetError::Unreachable)?;
        let payload = (self.shared.codec.enc_req)(&req);
        let mut conn = self.checkout(addr)?;
        write_request(&mut conn, KIND_NOTIFY, to, port.now(), &payload)
            .map_err(|_| NetError::ConnReset)?;
        self.checkin(addr, conn);
        Ok(())
    }

    fn register(&self, node: NodeId, service: Arc<dyn Service<Req, Resp>>) {
        self.shared.services.write().insert(node, service);
    }

    fn disconnect(&self, node: NodeId) {
        self.shared.services.write().remove(&node);
        self.registry.write().remove(&node);
    }

    fn is_connected(&self, node: NodeId) -> bool {
        self.shared.services.read().contains_key(&node) || self.registry.read().contains_key(&node)
    }

    fn message_count(&self) -> u64 {
        self.shared.messages.load(Ordering::Relaxed)
    }

    fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.registry.read().get(&node).copied()
    }

    fn backoff(&self, _port: &Port, delay: Nanos) {
        // Real transport, real time.
        std::thread::sleep(Duration::from_nanos(delay));
    }
}

fn accept_loop<Req: Send + Sync + 'static, Resp: Send + Sync + 'static>(
    listener: TcpListener,
    shared: Arc<Shared<Req, Resp>>,
) {
    // The listener is non-blocking so the loop can observe a shutdown
    // request promptly without a self-connection trick.
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                stream.set_nonblocking(false).ok();
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("arkfs-conn".into())
                    .spawn(move || connection_loop(stream, shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn connection_loop<Req, Resp>(mut stream: TcpStream, shared: Arc<Shared<Req, Resp>>) {
    loop {
        let (kind, dest, arrival, payload) = match read_request(&mut stream) {
            Ok(frame) => frame,
            Err(_) => return, // peer hung up or sent garbage
        };
        match kind {
            KIND_SHUTDOWN => {
                let _ = write_response(&mut stream, STATUS_OK, 0, &[]);
                shared.request_stop();
                return;
            }
            KIND_CALL | KIND_NOTIFY => {
                let service = shared.services.read().get(&dest).cloned();
                let Some(service) = service else {
                    if kind == KIND_CALL {
                        let _ = write_response(&mut stream, STATUS_UNREACHABLE, 0, &[]);
                    }
                    continue;
                };
                let Some(req) = (shared.codec.dec_req)(&payload) else {
                    if kind == KIND_CALL {
                        let _ = write_response(&mut stream, STATUS_DECODE, 0, &[]);
                    }
                    continue;
                };
                let (resp, done) = service.handle(arrival, req);
                if kind == KIND_CALL {
                    let bytes = (shared.codec.enc_resp)(&resp);
                    if write_response(&mut stream, STATUS_OK, done, &bytes).is_err() {
                        return;
                    }
                }
            }
            _ => return, // unknown frame kind: drop the connection
        }
    }
}

fn write_request(
    w: &mut impl Write,
    kind: u8,
    dest: NodeId,
    arrival: Nanos,
    payload: &[u8],
) -> io::Result<()> {
    let len = (REQ_HEADER + payload.len()) as u32;
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&dest.0.to_le_bytes());
    buf.extend_from_slice(&arrival.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

fn read_request(r: &mut impl Read) -> io::Result<(u8, NodeId, Nanos, Vec<u8>)> {
    let body = read_frame(r)?;
    if body.len() < REQ_HEADER {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let kind = body[0];
    let dest = NodeId(u32::from_le_bytes(body[1..5].try_into().unwrap()));
    let arrival = u64::from_le_bytes(body[5..13].try_into().unwrap());
    Ok((kind, dest, arrival, body[REQ_HEADER..].to_vec()))
}

fn write_response(w: &mut impl Write, status: u8, done: Nanos, payload: &[u8]) -> io::Result<()> {
    let len = (RESP_HEADER + payload.len()) as u32;
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(status);
    buf.extend_from_slice(&done.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

fn read_response(r: &mut impl Read) -> Result<(u8, Nanos, Vec<u8>), NetError> {
    let body = read_frame(r).map_err(|e| match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout,
        _ => NetError::ConnReset,
    })?;
    if body.len() < RESP_HEADER {
        return Err(NetError::Decode);
    }
    let status = body[0];
    let done = u64::from_le_bytes(body[1..9].try_into().unwrap());
    Ok((status, done, body[RESP_HEADER..].to_vec()))
}

fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_simkit::SharedResource;

    /// Identity codec for u32 request/response pairs.
    fn u32_codec() -> WireFns<u32, u32> {
        WireFns {
            enc_req: |v| v.to_le_bytes().to_vec(),
            dec_req: |b| Some(u32::from_le_bytes(b.try_into().ok()?)),
            enc_resp: |v| v.to_le_bytes().to_vec(),
            dec_resp: |b| Some(u32::from_le_bytes(b.try_into().ok()?)),
        }
    }

    #[test]
    fn local_calls_never_touch_a_socket() {
        let t = TcpTransport::new(u32_codec());
        let server = Arc::new(SharedResource::ideal("svc"));
        let service = {
            let server = Arc::clone(&server);
            move |arrival: Nanos, req: u32| (req * 2, server.reserve(arrival, 50))
        };
        Transport::register(&t, NodeId(1), Arc::new(service));
        let port = Port::new();
        assert_eq!(t.call(&port, NodeId(1), 21), Ok(42));
        // Loopback-local is a half_rtt = 0 bus: only service time accrues.
        assert_eq!(port.now(), 50);
        assert_eq!(t.message_count(), 1);
    }

    #[test]
    fn remote_call_round_trips_over_loopback() {
        let server = Arc::new(TcpTransport::new(u32_codec()));
        Transport::register(
            &*server,
            NodeId(7),
            Arc::new(|arrival: Nanos, req: u32| (req + 1, arrival + 25)),
        );
        let addr = server.listen("127.0.0.1:0").unwrap();

        let client = TcpTransport::new(u32_codec());
        client.register_addr(NodeId(7), addr);
        assert_eq!(Transport::addr_of(&client, NodeId(7)), Some(addr));
        let port = Port::new();
        assert_eq!(client.call(&port, NodeId(7), 41), Ok(42));
        // The response's virtual completion propagated back.
        assert_eq!(port.now(), 25);
        // Pooled connection is reused for a second call.
        assert_eq!(client.call(&port, NodeId(7), 1), Ok(2));
        server.shutdown();
    }

    #[test]
    fn unknown_nodes_are_unreachable() {
        let server = Arc::new(TcpTransport::new(u32_codec()));
        let addr = server.listen("127.0.0.1:0").unwrap();
        let client = TcpTransport::new(u32_codec());
        let port = Port::new();
        // No registry entry at all.
        assert_eq!(client.call(&port, NodeId(3), 0), Err(NetError::Unreachable));
        // Registry points at a live server with no such service.
        client.register_addr(NodeId(3), addr);
        assert_eq!(client.call(&port, NodeId(3), 0), Err(NetError::Unreachable));
        server.shutdown();
    }

    #[test]
    fn shutdown_handshake_releases_waiters() {
        let server = Arc::new(TcpTransport::new(u32_codec()));
        let addr = server.listen("127.0.0.1:0").unwrap();
        let waiter = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.wait_shutdown())
        };
        let client: TcpTransport<u32, u32> = TcpTransport::new(u32_codec());
        client.send_shutdown(addr).unwrap();
        waiter.join().unwrap();
    }

    #[test]
    fn notify_is_fire_and_forget() {
        let server = Arc::new(TcpTransport::new(u32_codec()));
        let hits = Arc::new(AtomicU64::new(0));
        let service = {
            let hits = Arc::clone(&hits);
            move |arrival: Nanos, _req: u32| {
                hits.fetch_add(1, Ordering::SeqCst);
                (0u32, arrival)
            }
        };
        Transport::register(&*server, NodeId(2), Arc::new(service));
        let addr = server.listen("127.0.0.1:0").unwrap();
        let client = TcpTransport::new(u32_codec());
        client.register_addr(NodeId(2), addr);
        let port = Port::new();
        client.notify(&port, NodeId(2), 9).unwrap();
        // Delivery is asynchronous; poll briefly.
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        server.shutdown();
    }
}
