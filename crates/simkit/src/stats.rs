//! Statistics used by the benchmark harness: latency histograms and
//! phase throughput accounting.

use crate::{Nanos, SEC};
use parking_lot::Mutex;

/// A log-scaled latency histogram (powers of two from 1 ns to ~18 s).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: Nanos,
    max: Nanos,
}

const BUCKETS: usize = 64;

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: Nanos::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: Nanos) -> usize {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }

    pub fn record(&mut self, v: Nanos) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> Nanos {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Approximate quantile (upper bound of the bucket containing it).
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i >= 63 {
                    Nanos::MAX
                } else {
                    (1u64 << i).saturating_sub(1).max(1)
                };
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Collects per-client completion spans for one benchmark phase and turns
/// them into an aggregate throughput, the way mdtest reports it: total
/// operations divided by the phase makespan (first start to last finish).
#[derive(Debug, Default)]
pub struct ThroughputMeter {
    inner: Mutex<MeterInner>,
}

#[derive(Debug, Default)]
struct MeterInner {
    ops: u64,
    start: Option<Nanos>,
    end: Nanos,
    /// Every recorded per-op latency, raw. Percentiles are computed
    /// exactly at `finish`: benchmark phases where many ops share one
    /// deterministic cost would otherwise collapse p50 and p99 onto
    /// the same log-linear bucket upper bound, overstating both.
    lat: Vec<Nanos>,
}

impl ThroughputMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one client's span: it performed `ops` operations between
    /// virtual times `start` and `end`, with optional per-op latencies.
    pub fn record_span(&self, ops: u64, start: Nanos, end: Nanos) {
        let mut inner = self.inner.lock();
        inner.ops += ops;
        inner.start = Some(inner.start.map_or(start, |s| s.min(start)));
        inner.end = inner.end.max(end);
    }

    /// Record one operation's latency.
    pub fn record_latency(&self, lat: Nanos) {
        self.inner.lock().lat.push(lat);
    }

    /// Finish the phase and produce its result. Percentiles are exact
    /// order statistics over the recorded samples (nearest-rank).
    pub fn finish(&self, name: impl Into<String>) -> PhaseResult {
        let mut inner = self.inner.lock();
        let start = inner.start.unwrap_or(0);
        let makespan = inner.end.saturating_sub(start);
        inner.lat.sort_unstable();
        let lat = &inner.lat;
        let n = lat.len();
        let pct = |q: f64| -> Nanos {
            if n == 0 {
                return 0;
            }
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            lat[rank - 1]
        };
        let mean = if n == 0 {
            0.0
        } else {
            lat.iter().map(|&v| v as u128).sum::<u128>() as f64 / n as f64
        };
        PhaseResult {
            name: name.into(),
            ops: inner.ops,
            makespan,
            latency_mean: mean,
            latency_p50: pct(0.50),
            latency_p90: pct(0.90),
            latency_p99: pct(0.99),
            latency_p999: pct(0.999),
            latency_max: lat.last().copied().unwrap_or(0),
        }
    }
}

/// One benchmark phase's aggregate result. Latency percentiles are
/// exact (nearest-rank) order statistics in virtual nanoseconds over
/// whatever per-op latencies were recorded (all zero when none were),
/// with p50 ≤ p90 ≤ p99 ≤ p999 ≤ max.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    pub name: String,
    pub ops: u64,
    /// Virtual makespan of the phase.
    pub makespan: Nanos,
    pub latency_mean: f64,
    pub latency_p50: Nanos,
    pub latency_p90: Nanos,
    pub latency_p99: Nanos,
    pub latency_p999: Nanos,
    pub latency_max: Nanos,
}

impl PhaseResult {
    /// Aggregate throughput in operations per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.ops as f64 * SEC as f64 / self.makespan as f64
    }

    /// Bandwidth in MiB per virtual second given bytes moved.
    pub fn bandwidth_mib_s(&self, bytes: u64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        bytes as f64 / (1024.0 * 1024.0) * SEC as f64 / self.makespan as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1_000_000);
        let mean = h.mean();
        assert!((mean - (1.0 + 2.0 + 4.0 + 8.0 + 1000.0 + 1_000_000.0) / 6.0).abs() < 1e-9);
        assert!(h.quantile(0.5) >= 4);
        assert!(h.quantile(1.0) >= 1_000_000 / 2);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn histograms_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn meter_computes_makespan_throughput() {
        let m = ThroughputMeter::new();
        // Two clients: [0, 2s] with 100 ops and [1s, 3s] with 50 ops.
        m.record_span(100, 0, 2 * SEC);
        m.record_span(50, SEC, 3 * SEC);
        let r = m.finish("create");
        assert_eq!(r.ops, 150);
        assert_eq!(r.makespan, 3 * SEC);
        assert!((r.ops_per_sec() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_computation() {
        let m = ThroughputMeter::new();
        m.record_span(1, 0, SEC);
        let r = m.finish("write");
        let bw = r.bandwidth_mib_s(1024 * 1024 * 100);
        assert!((bw - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_makespan_throughput_is_zero() {
        let m = ThroughputMeter::new();
        m.record_span(10, 5, 5);
        let r = m.finish("noop");
        assert_eq!(r.ops_per_sec(), 0.0);
        assert_eq!(r.bandwidth_mib_s(100), 0.0);
    }

    #[test]
    fn meter_reports_ordered_latency_percentiles() {
        let m = ThroughputMeter::new();
        m.record_span(1000, 0, SEC);
        for i in 1..=1000u64 {
            m.record_latency(i * 1_000);
        }
        let r = m.finish("read");
        assert_eq!(r.latency_p50, 500_000, "exact nearest-rank p50");
        assert_eq!(r.latency_p90, 900_000);
        assert_eq!(r.latency_p99, 990_000);
        assert_eq!(r.latency_p999, 999_000);
        assert_eq!(r.latency_max, 1_000_000);
    }

    #[test]
    fn exact_percentiles_do_not_quantize() {
        // The old log-linear summary reported the bucket's upper bound:
        // 1000 identical 50 µs ops came back as p50 = p99 = 51_199 ns.
        // Exact order statistics return the recorded value itself.
        let m = ThroughputMeter::new();
        m.record_span(1000, 0, SEC);
        for _ in 0..1000 {
            m.record_latency(50_000);
        }
        let r = m.finish("create");
        assert_eq!(r.latency_p50, 50_000);
        assert_eq!(r.latency_p99, 50_000);
        assert_eq!(r.latency_max, 50_000);
        assert!((r.latency_mean - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn no_latencies_means_zero_percentiles() {
        let m = ThroughputMeter::new();
        m.record_span(10, 0, SEC);
        let r = m.finish("stat");
        assert_eq!(r.latency_p50, 0);
        assert_eq!(r.latency_p99, 0);
        assert_eq!(r.latency_max, 0);
    }
}
