//! Statistics used by the benchmark harness: latency histograms and
//! phase throughput accounting.

use crate::{Nanos, SEC};
use parking_lot::Mutex;

/// A log-scaled latency histogram (powers of two from 1 ns to ~18 s).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: Nanos,
    max: Nanos,
}

const BUCKETS: usize = 64;

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: Nanos::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: Nanos) -> usize {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }

    pub fn record(&mut self, v: Nanos) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> Nanos {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Approximate quantile (upper bound of the bucket containing it).
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i >= 63 {
                    Nanos::MAX
                } else {
                    (1u64 << i).saturating_sub(1).max(1)
                };
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Collects per-client completion spans for one benchmark phase and turns
/// them into an aggregate throughput, the way mdtest reports it: total
/// operations divided by the phase makespan (first start to last finish).
#[derive(Debug, Default)]
pub struct ThroughputMeter {
    inner: Mutex<MeterInner>,
}

/// Raw samples kept before the meter switches from exact order
/// statistics to reservoir sampling. Sized so every committed bench
/// phase (≤ 100k ops at default scales) stays exact to the nanosecond,
/// while a 16k-client scaling run recording millions of per-op
/// latencies holds at most ~2 MiB instead of growing without bound.
pub const SAMPLE_CAP: usize = 262_144;

#[derive(Debug, Default)]
struct MeterInner {
    ops: u64,
    start: Option<Nanos>,
    end: Nanos,
    /// Recorded per-op latencies: every sample raw up to the cap, a
    /// uniform reservoir (Algorithm R) beyond it. Exact percentiles for
    /// phases where many ops share one deterministic cost would
    /// otherwise collapse p50 and p99 onto the same log-linear bucket
    /// upper bound; the reservoir keeps that exactness below the cap
    /// and bounds host memory above it.
    lat: Vec<Nanos>,
    /// Total samples recorded (may exceed `lat.len()` once capped).
    lat_count: u64,
    /// Exact running sum and max, independent of sampling.
    lat_sum: u128,
    lat_max: Nanos,
    /// SplitMix64 state for reservoir replacement. Fixed seed: with a
    /// deterministic record order (the event engine's), the sampled
    /// percentiles are reproducible run to run.
    rng: u64,
}

const RESERVOIR_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ThroughputMeter {
    pub fn new() -> Self {
        let meter = Self::default();
        meter.inner.lock().rng = RESERVOIR_SEED;
        meter
    }

    /// Record one client's span: it performed `ops` operations between
    /// virtual times `start` and `end`, with optional per-op latencies.
    pub fn record_span(&self, ops: u64, start: Nanos, end: Nanos) {
        let mut inner = self.inner.lock();
        inner.ops += ops;
        inner.start = Some(inner.start.map_or(start, |s| s.min(start)));
        inner.end = inner.end.max(end);
    }

    /// Record one operation's latency. The first [`SAMPLE_CAP`] samples
    /// are kept raw; beyond that each new sample replaces a uniformly
    /// chosen reservoir slot with probability cap/n (Algorithm R), so
    /// the retained set stays a uniform sample of everything recorded.
    pub fn record_latency(&self, lat: Nanos) {
        let mut inner = self.inner.lock();
        inner.lat_count += 1;
        inner.lat_sum += lat as u128;
        inner.lat_max = inner.lat_max.max(lat);
        if inner.lat.len() < SAMPLE_CAP {
            inner.lat.push(lat);
        } else {
            let n = inner.lat_count;
            let j = splitmix(&mut inner.rng) % n;
            if (j as usize) < SAMPLE_CAP {
                inner.lat[j as usize] = lat;
            }
        }
    }

    /// Total latency samples recorded (including ones the reservoir has
    /// since replaced).
    pub fn latency_samples(&self) -> u64 {
        self.inner.lock().lat_count
    }

    /// Whether percentiles will be reservoir estimates rather than
    /// exact order statistics.
    pub fn is_sampled(&self) -> bool {
        self.inner.lock().lat_count as usize > SAMPLE_CAP
    }

    /// Finish the phase and produce its result. Percentiles are exact
    /// order statistics (nearest-rank) while at most [`SAMPLE_CAP`]
    /// latencies were recorded, and nearest-rank estimates over the
    /// uniform reservoir beyond that; mean and max are always exact.
    pub fn finish(&self, name: impl Into<String>) -> PhaseResult {
        let mut inner = self.inner.lock();
        let start = inner.start.unwrap_or(0);
        let makespan = inner.end.saturating_sub(start);
        inner.lat.sort_unstable();
        let lat = &inner.lat;
        let n = lat.len();
        let pct = |q: f64| -> Nanos {
            if n == 0 {
                return 0;
            }
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            lat[rank - 1]
        };
        let mean = if inner.lat_count == 0 {
            0.0
        } else {
            inner.lat_sum as f64 / inner.lat_count as f64
        };
        PhaseResult {
            name: name.into(),
            ops: inner.ops,
            makespan,
            latency_mean: mean,
            latency_p50: pct(0.50),
            latency_p90: pct(0.90),
            latency_p99: pct(0.99),
            latency_p999: pct(0.999),
            latency_max: inner.lat_max,
        }
    }
}

/// One benchmark phase's aggregate result. Latency percentiles are
/// exact (nearest-rank) order statistics in virtual nanoseconds over
/// whatever per-op latencies were recorded (all zero when none were),
/// with p50 ≤ p90 ≤ p99 ≤ p999 ≤ max.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    pub name: String,
    pub ops: u64,
    /// Virtual makespan of the phase.
    pub makespan: Nanos,
    pub latency_mean: f64,
    pub latency_p50: Nanos,
    pub latency_p90: Nanos,
    pub latency_p99: Nanos,
    pub latency_p999: Nanos,
    pub latency_max: Nanos,
}

impl PhaseResult {
    /// Aggregate throughput in operations per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.ops as f64 * SEC as f64 / self.makespan as f64
    }

    /// Bandwidth in MiB per virtual second given bytes moved.
    pub fn bandwidth_mib_s(&self, bytes: u64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        bytes as f64 / (1024.0 * 1024.0) * SEC as f64 / self.makespan as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1_000_000);
        let mean = h.mean();
        assert!((mean - (1.0 + 2.0 + 4.0 + 8.0 + 1000.0 + 1_000_000.0) / 6.0).abs() < 1e-9);
        assert!(h.quantile(0.5) >= 4);
        assert!(h.quantile(1.0) >= 1_000_000 / 2);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn histograms_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn meter_computes_makespan_throughput() {
        let m = ThroughputMeter::new();
        // Two clients: [0, 2s] with 100 ops and [1s, 3s] with 50 ops.
        m.record_span(100, 0, 2 * SEC);
        m.record_span(50, SEC, 3 * SEC);
        let r = m.finish("create");
        assert_eq!(r.ops, 150);
        assert_eq!(r.makespan, 3 * SEC);
        assert!((r.ops_per_sec() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_computation() {
        let m = ThroughputMeter::new();
        m.record_span(1, 0, SEC);
        let r = m.finish("write");
        let bw = r.bandwidth_mib_s(1024 * 1024 * 100);
        assert!((bw - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_makespan_throughput_is_zero() {
        let m = ThroughputMeter::new();
        m.record_span(10, 5, 5);
        let r = m.finish("noop");
        assert_eq!(r.ops_per_sec(), 0.0);
        assert_eq!(r.bandwidth_mib_s(100), 0.0);
    }

    #[test]
    fn meter_reports_ordered_latency_percentiles() {
        let m = ThroughputMeter::new();
        m.record_span(1000, 0, SEC);
        for i in 1..=1000u64 {
            m.record_latency(i * 1_000);
        }
        let r = m.finish("read");
        assert_eq!(r.latency_p50, 500_000, "exact nearest-rank p50");
        assert_eq!(r.latency_p90, 900_000);
        assert_eq!(r.latency_p99, 990_000);
        assert_eq!(r.latency_p999, 999_000);
        assert_eq!(r.latency_max, 1_000_000);
    }

    #[test]
    fn exact_percentiles_do_not_quantize() {
        // The old log-linear summary reported the bucket's upper bound:
        // 1000 identical 50 µs ops came back as p50 = p99 = 51_199 ns.
        // Exact order statistics return the recorded value itself.
        let m = ThroughputMeter::new();
        m.record_span(1000, 0, SEC);
        for _ in 0..1000 {
            m.record_latency(50_000);
        }
        let r = m.finish("create");
        assert_eq!(r.latency_p50, 50_000);
        assert_eq!(r.latency_p99, 50_000);
        assert_eq!(r.latency_max, 50_000);
        assert!((r.latency_mean - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn reservoir_bounds_memory_and_stays_accurate() {
        // 4x the cap: retained samples never exceed SAMPLE_CAP, mean
        // and max stay exact, and percentile estimates of a uniform
        // ramp stay within 1% of truth.
        let m = ThroughputMeter::new();
        let total = (SAMPLE_CAP * 4) as u64;
        m.record_span(total, 0, SEC);
        for i in 1..=total {
            m.record_latency(i);
        }
        assert!(m.is_sampled());
        assert_eq!(m.latency_samples(), total);
        assert!(m.inner.lock().lat.len() <= SAMPLE_CAP);
        let r = m.finish("hot");
        assert_eq!(r.latency_max, total, "max is exact");
        assert!((r.latency_mean - (total + 1) as f64 / 2.0).abs() < 1e-3);
        for (q, v) in [(0.50, r.latency_p50), (0.99, r.latency_p99)] {
            let truth = (q * total as f64) as u64;
            let err = (v as f64 - truth as f64).abs() / total as f64;
            assert!(err < 0.01, "p{q}: estimate {v} vs truth {truth}");
        }
        assert!(r.latency_p50 <= r.latency_p90);
        assert!(r.latency_p90 <= r.latency_p99);
        assert!(r.latency_p99 <= r.latency_p999);
        assert!(r.latency_p999 <= r.latency_max);
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let m = ThroughputMeter::new();
            m.record_span(1, 0, SEC);
            for i in 0..(SAMPLE_CAP as u64 + 50_000) {
                m.record_latency(i.wrapping_mul(0x9E37_79B9) % 1_000_000);
            }
            m.finish("x")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn below_cap_stays_exact() {
        let m = ThroughputMeter::new();
        m.record_span(100, 0, SEC);
        for i in 1..=100u64 {
            m.record_latency(i);
        }
        assert!(!m.is_sampled());
        let r = m.finish("cold");
        assert_eq!(r.latency_p50, 50);
        assert_eq!(r.latency_p99, 99);
        assert_eq!(r.latency_max, 100);
    }

    #[test]
    fn no_latencies_means_zero_percentiles() {
        let m = ThroughputMeter::new();
        m.record_span(10, 0, SEC);
        let r = m.finish("stat");
        assert_eq!(r.latency_p50, 0);
        assert_eq!(r.latency_p99, 0);
        assert_eq!(r.latency_max, 0);
    }
}
