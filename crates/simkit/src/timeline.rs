//! Per-actor virtual timelines and shared FIFO-timeline resources.
//!
//! A [`Timeline`] is one simulated actor's (client process's) private
//! clock: it only moves forward as the actor pays operation costs.
//!
//! A [`SharedResource`] models a component that serves one request at a
//! time (a metadata server, a lease manager, a FUSE daemon lock): a
//! request arriving at virtual time `a` with service demand `s` starts at
//! `max(a, next_free)` and completes `s_eff` later, where `s_eff` inflates
//! with the number of requests still in flight — the lock-contention /
//! cache-thrash degradation that makes Figure 1's single-MDS throughput
//! *collapse* (not just saturate) past a handful of clients.
//!
//! A [`BandwidthResource`] is the same discipline with service demand
//! computed from a byte count and a capacity — used for shared network
//! links and disk arrays.

use crate::{transfer_time, Nanos};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One simulated actor's private monotone clock.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    now: Nanos,
}

impl Timeline {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn starting_at(t: Nanos) -> Self {
        Timeline { now: t }
    }

    /// Current virtual time of this actor.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Pay a local cost: CPU time, an uncontended cache hit, etc.
    pub fn advance(&mut self, cost: Nanos) -> Nanos {
        self.now = self.now.saturating_add(cost);
        self.now
    }

    /// Jump to an absolute completion time returned by a shared resource
    /// (never moves backwards).
    pub fn wait_until(&mut self, t: Nanos) -> Nanos {
        self.now = self.now.max(t);
        self.now
    }
}

/// A shareable handle to one actor's [`Timeline`], so that layered
/// components (FS client → cache → object store → network) can all charge
/// costs to the same simulated process without threading `&mut Timeline`
/// through every call.
#[derive(Debug, Default)]
pub struct Port {
    inner: Mutex<Timeline>,
}

impl Port {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn starting_at(t: Nanos) -> Self {
        Port {
            inner: Mutex::new(Timeline::starting_at(t)),
        }
    }

    pub fn now(&self) -> Nanos {
        self.inner.lock().now()
    }

    /// Pay a local cost; returns the new time.
    pub fn advance(&self, cost: Nanos) -> Nanos {
        self.inner.lock().advance(cost)
    }

    /// Wait until an absolute completion time; returns the new time.
    pub fn wait_until(&self, t: Nanos) -> Nanos {
        self.inner.lock().wait_until(t)
    }

    /// Reset to a given origin (between benchmark phases).
    pub fn reset_to(&self, t: Nanos) {
        *self.inner.lock() = Timeline::starting_at(t);
    }
}

/// Contention behaviour of a [`SharedResource`].
#[derive(Debug, Clone, Copy)]
pub struct ContentionModel {
    /// Per-in-flight-request multiplicative service inflation.
    /// `0.0` gives an ideal FIFO server (pure queueing, throughput
    /// saturates at capacity); `> 0.0` makes throughput *degrade* under
    /// load, as the paper observed for the CephFS MDS.
    pub alpha: f64,
    /// Cap on the inflation factor so the model stays bounded.
    pub max_factor: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel {
            alpha: 0.0,
            max_factor: 64.0,
        }
    }
}

impl ContentionModel {
    pub fn ideal() -> Self {
        Self::default()
    }

    pub fn degrading(alpha: f64) -> Self {
        ContentionModel {
            alpha,
            max_factor: 64.0,
        }
    }

    fn factor(&self, in_flight: usize) -> f64 {
        (1.0 + self.alpha * in_flight as f64).min(self.max_factor)
    }
}

#[derive(Debug, Default)]
struct ResourceInner {
    /// Busy intervals `start → end`, non-overlapping and coalesced.
    /// Interval placement (first-fit after arrival) instead of a strict
    /// next-free-time keeps the model fair when some callers (background
    /// checkpoint/commit threads) run ahead on virtual time: their future
    /// reservations must not block earlier arrivals from other actors.
    busy_intervals: std::collections::BTreeMap<Nanos, Nanos>,
    /// Completion times of recent reservations (for the contention-depth
    /// estimate).
    in_flight: VecDeque<Nanos>,
    served: u64,
    busy: Nanos,
}

/// Bound on tracked intervals; beyond it the oldest are forgotten.
const MAX_INTERVALS: usize = 4096;

/// A shared FIFO server on the virtual timeline. Cheap to reserve from
/// many threads (one short mutex hold per reservation).
#[derive(Debug)]
pub struct SharedResource {
    name: &'static str,
    contention: ContentionModel,
    /// Reservations shorter than this are charged but not tracked as
    /// busy intervals (used by bandwidth resources whose per-message
    /// transfers can be nanoseconds).
    min_track: Nanos,
    inner: Mutex<ResourceInner>,
}

impl SharedResource {
    pub fn new(name: &'static str, contention: ContentionModel) -> Self {
        SharedResource {
            name,
            contention,
            min_track: 0,
            inner: Mutex::new(ResourceInner::default()),
        }
    }

    /// Skip busy-interval tracking for reservations shorter than `min`.
    pub fn with_min_track(mut self, min: Nanos) -> Self {
        self.min_track = min;
        self
    }

    /// An ideal FIFO server (no degradation).
    pub fn ideal(name: &'static str) -> Self {
        Self::new(name, ContentionModel::ideal())
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserve `service` time for a request arriving at `arrival`.
    /// Returns the absolute completion time the caller's [`Timeline`]
    /// should wait until. The request occupies the first idle gap at or
    /// after `arrival` that fits the (contention-inflated) service time.
    pub fn reserve(&self, arrival: Nanos, service: Nanos) -> Nanos {
        let mut inner = self.inner.lock();
        // Contention depth: reservations still unfinished at `arrival`.
        let depth = inner.in_flight.iter().filter(|&&c| c > arrival).count();
        while inner.in_flight.len() > 256 {
            inner.in_flight.pop_front();
        }
        let eff = (service as f64 * self.contention.factor(depth)).round() as Nanos;
        inner.served += 1;
        if eff == 0 {
            return arrival;
        }
        inner.busy = inner.busy.saturating_add(eff);
        // Tiny reservations are charged but not tracked as busy
        // intervals: tracking them would flood the map without ever
        // influencing placement at the modelled service-time scales.
        if eff < self.min_track {
            return arrival.saturating_add(eff);
        }

        // First-fit gap search: push the candidate start past every busy
        // interval that overlaps [t, t+eff).
        let mut t = arrival;
        loop {
            let conflict = inner
                .busy_intervals
                .range(..t.saturating_add(eff))
                .next_back()
                .and_then(|(_, &end)| (end > t).then_some(end));
            match conflict {
                Some(end) => t = end,
                None => break,
            }
        }
        let completion = t.saturating_add(eff);

        // Insert [t, completion), coalescing with adjacent intervals.
        let mut start = t;
        let mut end = completion;
        if let Some((&ps, &pe)) = inner.busy_intervals.range(..=t).next_back() {
            if pe == t {
                start = ps;
                inner.busy_intervals.remove(&ps);
            }
        }
        if let Some(&ne) = inner.busy_intervals.get(&completion) {
            end = ne;
            inner.busy_intervals.remove(&completion);
        }
        inner.busy_intervals.insert(start, end);

        // Bound memory by forgetting the OLDEST intervals. Dropping (not
        // merging) is mildly optimistic for extreme laggards, but merging
        // would solidify the head of the timeline into one giant busy
        // block that starves every late-arriving request.
        while inner.busy_intervals.len() > MAX_INTERVALS {
            let &oldest = inner.busy_intervals.keys().next().expect("nonempty");
            inner.busy_intervals.remove(&oldest);
        }

        inner.in_flight.push_back(completion);
        completion
    }

    /// Total requests served so far.
    pub fn served(&self) -> u64 {
        self.inner.lock().served
    }

    /// Total busy time accumulated (virtual).
    pub fn busy_time(&self) -> Nanos {
        self.inner.lock().busy
    }

    /// Reset between benchmark phases.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = ResourceInner::default();
    }
}

/// A shared link/disk with a fixed byte capacity per second.
#[derive(Debug)]
pub struct BandwidthResource {
    resource: SharedResource,
    bytes_per_sec: u64,
}

impl BandwidthResource {
    pub fn new(name: &'static str, bytes_per_sec: u64) -> Self {
        BandwidthResource {
            resource: SharedResource::ideal(name).with_min_track(200),
            bytes_per_sec,
        }
    }

    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Reserve a transfer of `bytes` arriving at `arrival`; returns the
    /// completion time.
    pub fn transfer(&self, arrival: Nanos, bytes: u64) -> Nanos {
        self.resource
            .reserve(arrival, transfer_time(bytes, self.bytes_per_sec))
    }

    pub fn reset(&self) {
        self.resource.reset()
    }

    pub fn served(&self) -> u64 {
        self.resource.served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SEC;

    #[test]
    fn port_shares_a_timeline() {
        let p = Port::new();
        p.advance(10);
        p.wait_until(25);
        p.wait_until(5);
        assert_eq!(p.now(), 25);
        p.reset_to(100);
        assert_eq!(p.now(), 100);
        let p2 = Port::starting_at(7);
        assert_eq!(p2.now(), 7);
    }

    #[test]
    fn timeline_moves_forward_only() {
        let mut t = Timeline::new();
        assert_eq!(t.advance(10), 10);
        assert_eq!(t.wait_until(5), 10);
        assert_eq!(t.wait_until(20), 20);
        assert_eq!(t.now(), 20);
    }

    #[test]
    fn ideal_resource_serializes() {
        let r = SharedResource::ideal("mds");
        // Two requests arriving at t=0, 10ns service each: second queues.
        assert_eq!(r.reserve(0, 10), 10);
        assert_eq!(r.reserve(0, 10), 20);
        // A request arriving after the backlog drains starts immediately.
        assert_eq!(r.reserve(100, 10), 110);
        assert_eq!(r.served(), 3);
        assert_eq!(r.busy_time(), 30);
    }

    #[test]
    fn ideal_resource_saturates_at_capacity() {
        // 1000 clients, each sends 1 request of 1ms: makespan = 1s exactly.
        let r = SharedResource::ideal("mds");
        let mut last = 0;
        for _ in 0..1000 {
            last = r.reserve(0, crate::MSEC);
        }
        assert_eq!(last, SEC);
    }

    #[test]
    fn degrading_resource_collapses() {
        // With alpha > 0, pushing N concurrent requests costs more than
        // N * service: aggregate throughput falls under load.
        let ideal = SharedResource::ideal("a");
        let degrading = SharedResource::new("b", ContentionModel::degrading(0.5));
        let mut t_ideal = 0;
        let mut t_deg = 0;
        for _ in 0..64 {
            t_ideal = ideal.reserve(0, 1000);
            t_deg = degrading.reserve(0, 1000);
        }
        assert!(t_deg > t_ideal);
        // And the degradation factor is capped.
        let capped = SharedResource::new(
            "c",
            ContentionModel {
                alpha: 10.0,
                max_factor: 4.0,
            },
        );
        let mut last = 0;
        for _ in 0..100 {
            last = capped.reserve(0, 100);
        }
        assert!(last <= 100 * 100 * 4 + 100);
    }

    #[test]
    fn in_flight_window_drains() {
        let r = SharedResource::new("mds", ContentionModel::degrading(1.0));
        let c1 = r.reserve(0, 100);
        // Arrive long after c1 completed: no in-flight inflation.
        let c2 = r.reserve(c1 + 1_000, 100);
        assert_eq!(c2, c1 + 1_000 + 100);
    }

    #[test]
    fn future_reservations_do_not_block_earlier_arrivals() {
        // A background actor reserves far in the future; a foreground
        // request arriving earlier slots into the idle gap before it.
        let r = SharedResource::ideal("disk");
        let bg = r.reserve(1_000_000, 500_000); // busy [1.0ms, 1.5ms)
        assert_eq!(bg, 1_500_000);
        let fg = r.reserve(0, 10_000); // fits in [0, 10µs)
        assert_eq!(fg, 10_000);
        // A request that does NOT fit before the busy window queues
        // after it.
        let big = r.reserve(900_000, 200_000);
        assert_eq!(big, 1_700_000);
    }

    #[test]
    fn gap_search_coalesces_intervals() {
        let r = SharedResource::ideal("x");
        assert_eq!(r.reserve(0, 10), 10); // [0,10)
        assert_eq!(r.reserve(20, 10), 30); // [20,30)
                                           // Exactly fills the gap and coalesces all three.
        assert_eq!(r.reserve(10, 10), 20);
        // Next arrival at 0 must queue after the merged [0,30).
        assert_eq!(r.reserve(0, 5), 35);
    }

    #[test]
    fn reset_clears_state() {
        let r = SharedResource::ideal("x");
        r.reserve(0, 50);
        r.reset();
        assert_eq!(r.served(), 0);
        assert_eq!(r.reserve(0, 50), 50);
    }

    #[test]
    fn bandwidth_resource_shares_capacity() {
        // Two 1 MB transfers over a 1 MB/s link: first done at 1s, second
        // at 2s.
        let link = BandwidthResource::new("net", 1_000_000);
        assert_eq!(link.transfer(0, 1_000_000), SEC);
        assert_eq!(link.transfer(0, 1_000_000), 2 * SEC);
        assert_eq!(link.bytes_per_sec(), 1_000_000);
    }

    #[test]
    fn concurrent_reservations_are_consistent() {
        // From many threads, total busy time must equal the sum of
        // services and next_free must equal that sum (all arrivals at 0).
        let r = std::sync::Arc::new(SharedResource::ideal("mds"));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut max_completion = 0;
                    for _ in 0..1000 {
                        max_completion = max_completion.max(r.reserve(0, 10));
                    }
                    max_completion
                })
            })
            .collect();
        let max = threads
            .into_iter()
            .map(|h| h.join().unwrap())
            .max()
            .unwrap();
        assert_eq!(max, 8 * 1000 * 10);
        assert_eq!(r.served(), 8000);
        assert_eq!(r.busy_time(), 80_000);
    }
}
