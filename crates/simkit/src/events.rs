//! A deterministic discrete-event queue for single-threaded scenario
//! tests (lease expiry ordering, crash/recovery timing).

use crate::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

// Min-heap on (at, seq): earliest time first, FIFO within a time.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered event queue with stable FIFO ordering for simultaneous
/// events. Popping advances the queue's notion of "now".
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error the queue tolerates by clamping to `now`.
    pub fn schedule_at(&mut self, at: Nanos, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Drain events up to and including time `t`, in order.
    pub fn drain_until(&mut self, t: Nanos) -> Vec<(Nanos, E)> {
        let mut out = Vec::new();
        while let Some(at) = self.peek_time() {
            if at > t {
                break;
            }
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        assert_eq!(q.pop(), Some((150, "second")));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "a");
        q.pop();
        q.schedule_at(10, "late");
        assert_eq!(q.pop(), Some((100, "late")));
    }

    #[test]
    fn drain_until_is_inclusive() {
        let mut q = EventQueue::new();
        for t in [5u64, 10, 15, 20] {
            q.schedule_at(t, t);
        }
        let drained = q.drain_until(15);
        assert_eq!(
            drained.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![5, 10, 15]
        );
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
