//! The simulated cluster specification — this workspace's stand-in for
//! Table I of the paper.
//!
//! The paper's testbed is a 16-storage-node AWS cluster (c5n.9xlarge
//! storage, c5a.8xlarge/c5n.9xlarge clients, 10/50 Gbit networking, EBS
//! disks). We reduce that hardware to the per-operation and per-byte costs
//! that shape the evaluation; `ClusterSpec::aws_paper()` is the calibrated
//! default every figure harness uses, and `--bin table1` prints it.

use crate::{Nanos, MSEC, USEC};

/// Cost-model constants for the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of storage nodes (the paper uses 16 with 4 OSD disks each).
    pub storage_nodes: usize,
    /// One-way client↔server network latency per message.
    pub net_half_rtt: Nanos,
    /// Per-client NIC bandwidth, bytes/s (c5n.9xlarge: 50 Gbit).
    pub client_net_bw: u64,
    /// Aggregate object-store ingest bandwidth, bytes/s.
    pub store_net_bw: u64,
    /// Per-storage-node disk bandwidth, bytes/s (EBS-like).
    pub disk_bw: u64,
    /// Fixed service time of one object-store metadata-sized operation
    /// (small GET/PUT/DELETE) on the RADOS-profile store.
    pub rados_op_service: Nanos,
    /// Fixed service time of one S3-profile REST operation (HTTP stack,
    /// auth, placement).
    pub s3_op_service: Nanos,
    /// User↔kernel FUSE round trip cost per FUSE request.
    pub fuse_op_cost: Nanos,
    /// CPU cost of a purely local (in-memory metatable) metadata op.
    pub local_meta_op: Nanos,
    /// Service time of one metadata op at a centralized MDS.
    pub mds_op_service: Nanos,
    /// Service time of handling one forwarded client op at a directory
    /// leader (ArkFS client-side RPC service).
    pub leader_op_service: Nanos,
    /// Service time of a lease grant/extension at the lease manager.
    pub lease_op_service: Nanos,
    /// External burst-buffer / EBS source bandwidth for the tar scenario,
    /// bytes/s (the paper cites 1 GB/s sequential EBS).
    pub ebs_bw: u64,
}

impl ClusterSpec {
    /// Constants calibrated against the paper's AWS testbed (Table I) and
    /// the throughput levels its figures report.
    pub fn aws_paper() -> Self {
        ClusterSpec {
            storage_nodes: 16,
            net_half_rtt: 50 * USEC,
            client_net_bw: 6_250_000_000, // 50 Gbit/s
            store_net_bw: 25_000_000_000, // aggregate across 16 nodes
            disk_bw: 500_000_000,         // EBS-like, per OSD disk
            rados_op_service: 100 * USEC,
            s3_op_service: 25 * MSEC,
            fuse_op_cost: 8 * USEC,
            local_meta_op: 2 * USEC,
            mds_op_service: 60 * USEC,
            leader_op_service: 10 * USEC,
            lease_op_service: 5 * USEC,
            ebs_bw: 1_000_000_000,
        }
    }

    /// A tiny, fast spec for unit tests (all costs 1 µs, 1 GB/s).
    pub fn test_tiny() -> Self {
        ClusterSpec {
            storage_nodes: 2,
            net_half_rtt: USEC,
            client_net_bw: 1_000_000_000,
            store_net_bw: 1_000_000_000,
            disk_bw: 1_000_000_000,
            rados_op_service: USEC,
            s3_op_service: USEC,
            fuse_op_cost: USEC,
            local_meta_op: USEC,
            mds_op_service: USEC,
            leader_op_service: USEC,
            lease_op_service: USEC,
            ebs_bw: 1_000_000_000,
        }
    }

    /// Full network round-trip time.
    pub fn net_rtt(&self) -> Nanos {
        self.net_half_rtt * 2
    }

    /// Render the spec as `(name, value)` rows for the Table I harness.
    pub fn rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("storage_nodes", self.storage_nodes.to_string()),
            ("net_half_rtt_us", (self.net_half_rtt / USEC).to_string()),
            (
                "client_net_bw_gbit",
                format!("{:.1}", self.client_net_bw as f64 * 8.0 / 1e9),
            ),
            (
                "store_net_bw_gbit",
                format!("{:.1}", self.store_net_bw as f64 * 8.0 / 1e9),
            ),
            ("disk_bw_gb_s", format!("{:.1}", self.disk_bw as f64 / 1e9)),
            (
                "rados_op_service_us",
                (self.rados_op_service / USEC).to_string(),
            ),
            ("s3_op_service_ms", (self.s3_op_service / MSEC).to_string()),
            ("fuse_op_cost_us", (self.fuse_op_cost / USEC).to_string()),
            ("local_meta_op_us", (self.local_meta_op / USEC).to_string()),
            (
                "mds_op_service_us",
                (self.mds_op_service / USEC).to_string(),
            ),
            (
                "leader_op_service_us",
                (self.leader_op_service / USEC).to_string(),
            ),
            (
                "lease_op_service_us",
                (self.lease_op_service / USEC).to_string(),
            ),
            ("ebs_bw_gb_s", format!("{:.1}", self.ebs_bw as f64 / 1e9)),
        ]
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::aws_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_is_plausible() {
        let s = ClusterSpec::aws_paper();
        // A local metatable op must be far cheaper than an MDS round trip,
        // otherwise the paper's headline result cannot reproduce.
        assert!(s.local_meta_op * 10 < s.net_rtt() + s.mds_op_service);
        // S3 ops are order(s) of magnitude slower than RADOS ops.
        assert!(s.s3_op_service > 10 * s.rados_op_service);
        assert_eq!(s.net_rtt(), 2 * s.net_half_rtt);
    }

    #[test]
    fn rows_cover_all_fields() {
        let rows = ClusterSpec::aws_paper().rows();
        assert_eq!(rows.len(), 13);
        assert!(rows.iter().all(|(_, v)| !v.is_empty()));
    }

    #[test]
    fn default_is_paper_spec() {
        assert_eq!(ClusterSpec::default(), ClusterSpec::aws_paper());
    }
}
