//! Virtual-time simulation kit.
//!
//! The benchmark harness in this workspace runs *functionally real* file
//! system code (real metatables, journals, caches, RPC) on real threads,
//! but accounts for *time* virtually: every simulated client owns a
//! monotone [`timeline::Timeline`], and every shared component — a
//! metadata server, a network link, a disk — is a
//! [`timeline::SharedResource`] whose FIFO next-free-time reservation
//! discipline reproduces queueing, saturation, and contention collapse
//! deterministically and at laptop speed.
//!
//! The kit also provides a deterministic [`events::EventQueue`] for
//! single-threaded scenario tests (lease expiry, crash/recovery timing),
//! the discrete-event [`engine::Engine`] that multiplexes thousands of
//! simulated clients on one host thread in causal virtual-time order,
//! and [`stats`] utilities used to emit the paper's tables and figures.

pub mod clock;
pub mod costs;
pub mod engine;
pub mod events;
pub mod stats;
pub mod timeline;

pub use clock::{Clock, ManualClock, SystemClock};
pub use costs::ClusterSpec;
pub use engine::{Actor, Engine, EngineStats};
pub use events::EventQueue;
pub use stats::{Histogram, PhaseResult, ThroughputMeter};
pub use timeline::{BandwidthResource, Port, SharedResource, Timeline};

/// Nanosecond instant/duration on the virtual clock.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const USEC: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MSEC: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;

/// Virtual-time cost of moving `bytes` over a resource with `bytes_per_sec`
/// capacity. Saturating and rounding up so a nonzero transfer always costs
/// at least a nanosecond.
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> Nanos {
    if bytes == 0 || bytes_per_sec == 0 {
        return 0;
    }
    let t = (bytes as u128 * SEC as u128).div_ceil(bytes_per_sec as u128);
    t.min(u64::MAX as u128) as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_basics() {
        assert_eq!(transfer_time(0, 1_000_000), 0);
        assert_eq!(transfer_time(1_000_000, 0), 0);
        // 1 MB over 1 MB/s = 1 s
        assert_eq!(transfer_time(1_000_000, 1_000_000), SEC);
        // rounds up
        assert_eq!(transfer_time(1, 1_000_000_000_000), 1);
    }

    #[test]
    fn transfer_time_saturates() {
        assert_eq!(transfer_time(u64::MAX, 1), u64::MAX);
    }
}
