//! Clock abstraction so leases, journals and caches are testable without
//! sleeping.

use crate::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone source of nanosecond timestamps.
pub trait Clock: Send + Sync {
    fn now(&self) -> Nanos;
}

/// A clock advanced explicitly by the test or simulation harness.
///
/// Shared freely via `Arc`; `advance` is atomic so many simulated clients
/// can push global time forward (global time is the max anyone set).
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn starting_at(t: Nanos) -> Self {
        ManualClock {
            now: AtomicU64::new(t),
        }
    }

    /// Move time forward by `delta`.
    pub fn advance(&self, delta: Nanos) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }

    /// Raise the clock to at least `t` (no-op when time already passed it).
    pub fn advance_to(&self, t: Nanos) {
        self.now.fetch_max(t, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Nanos {
        self.now.load(Ordering::SeqCst)
    }
}

/// Wall-clock time since process start. Used by the examples, which run in
/// real time.
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Nanos {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(5);
        assert_eq!(c.now(), 5);
        c.advance_to(3); // cannot go backwards
        assert_eq!(c.now(), 5);
        c.advance_to(9);
        assert_eq!(c.now(), 9);
    }

    #[test]
    fn manual_clock_is_shared() {
        let c = Arc::new(ManualClock::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.advance(100));
        h.join().unwrap();
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn system_clock_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
