//! Discrete-event client engine: one host thread multiplexing thousands
//! of simulated clients in causal virtual-time order.
//!
//! Every workload operation in this workspace is a *synchronous* call
//! that advances the calling client's [`crate::Port`] — an RPC's reply
//! time, a store round trip, a commit-lane wait are all folded into the
//! completion time the op returns at. Concurrency between simulated
//! clients therefore does not need OS threads at all; it needs the ops
//! of different clients to arrive at the shared resources in the order
//! their virtual clocks dictate. The [`Engine`] provides exactly that: a
//! binary-heap run queue keyed by each actor's current virtual time that
//! always steps the *earliest* actor next.
//!
//! Stepping the minimum-time actor gives two properties the thread pool
//! and the round-robin interleaver cannot:
//!
//! * **Causality.** When an actor's step jumps its clock far ahead (an
//!   RPC reply, a lease wait), it is not stepped again until every other
//!   actor has caught up past its old time — so no actor issues a
//!   request *after* (in virtual time) a reply it has not yet received,
//!   and arrivals at [`crate::SharedResource`]s are near-sorted.
//! * **Determinism.** One host thread, one heap, stable FIFO tie-break:
//!   the step sequence — and every reservation order derived from it —
//!   is a pure function of the actors' op streams.
//!
//! Cost is O(log n) per step with zero per-client OS state, so 10k–100k
//! simulated clients multiplex comfortably on one thread.

use crate::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One schedulable simulated client.
///
/// `now()` is the run-queue key: the virtual time at which the actor's
/// next step would begin. `step()` performs one unit of work (typically
/// one workload op), advancing the actor's clock, and returns `false`
/// once the actor is exhausted.
pub trait Actor {
    /// Virtual time of the actor's next step.
    fn now(&self) -> Nanos;

    /// Run one unit of work. Returns `true` while more work remains.
    fn step(&mut self) -> bool;
}

/// Aggregate statistics of one [`Engine::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total steps executed across all actors.
    pub steps: u64,
    /// Maximum virtual time reached by any actor.
    pub end_time: Nanos,
}

/// The discrete-event run queue. See the module docs.
#[derive(Debug, Default)]
pub struct Engine;

impl Engine {
    /// Drive `actors` to completion on the calling thread, always
    /// stepping the actor with the smallest `now()`. Ties are broken
    /// FIFO (by re-queue order), so actors whose clocks advance in
    /// lock-step are stepped round-robin, matching how simultaneous
    /// requests from distinct processes would interleave.
    ///
    /// The run queue never steps an actor while another live actor's
    /// virtual time is smaller — the causal-ordering invariant the unit
    /// tests pin. In debug builds it is asserted on every pop.
    pub fn run<A: Actor>(actors: &mut [A]) -> EngineStats {
        // Min-heap of (next-step time, FIFO seq) → actor index.
        let mut heap: BinaryHeap<Reverse<(Nanos, u64, usize)>> =
            BinaryHeap::with_capacity(actors.len());
        let mut seq: u64 = 0;
        for (i, a) in actors.iter().enumerate() {
            heap.push(Reverse((a.now(), seq, i)));
            seq += 1;
        }
        let mut stats = EngineStats::default();
        let mut frontier: Nanos = 0;
        while let Some(Reverse((t, _, i))) = heap.pop() {
            debug_assert!(
                t >= frontier,
                "run queue stepped backwards: {t} < frontier {frontier}"
            );
            debug_assert!(
                heap.peek().is_none_or(|Reverse((u, _, _))| *u >= t),
                "popped actor is not the global minimum"
            );
            frontier = t;
            stats.steps += 1;
            let more = actors[i].step();
            let now = actors[i].now();
            stats.end_time = stats.end_time.max(now);
            if more {
                // Re-queue at the actor's post-step time. A step that
                // did not advance the clock re-queues behind every other
                // actor already waiting at the same instant (FIFO seq).
                heap.push(Reverse((now.max(t), seq, i)));
                seq += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type StepLog = std::rc::Rc<std::cell::RefCell<Vec<(Nanos, usize)>>>;

    /// A scripted actor: each entry is the absolute virtual time its
    /// clock lands on after that step (e.g. an RPC reply arrival).
    struct Scripted {
        id: usize,
        now: Nanos,
        script: Vec<Nanos>,
        next: usize,
        log: StepLog,
    }

    impl Actor for Scripted {
        fn now(&self) -> Nanos {
            self.now
        }

        fn step(&mut self) -> bool {
            self.log.borrow_mut().push((self.now, self.id));
            self.now = self.now.max(self.script[self.next]);
            self.next += 1;
            self.next < self.script.len()
        }
    }

    fn scripted(scripts: Vec<Vec<Nanos>>) -> (Vec<Scripted>, StepLog) {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let actors = scripts
            .into_iter()
            .enumerate()
            .map(|(id, script)| Scripted {
                id,
                now: 0,
                script,
                next: 0,
                log: std::rc::Rc::clone(&log),
            })
            .collect();
        (actors, log)
    }

    #[test]
    fn steps_in_global_time_order() {
        // Client 0's first step jumps it to t=100 (a slow RPC); client 1
        // takes small steps. Client 1 must be stepped repeatedly before
        // client 0 runs again.
        let (mut actors, log) = scripted(vec![vec![100, 110], vec![10, 20, 30, 120]]);
        let stats = Engine::run(&mut actors);
        assert_eq!(stats.steps, 6);
        let order: Vec<(Nanos, usize)> = log.borrow().clone();
        assert_eq!(
            order,
            vec![(0, 0), (0, 1), (10, 1), (20, 1), (30, 1), (100, 0)]
        );
        assert_eq!(stats.end_time, 120);
    }

    #[test]
    fn never_steps_ahead_of_a_causally_pending_reply() {
        // The causal invariant: when an actor is stepped at time t,
        // every other live actor's clock is >= t. An actor whose
        // in-flight RPC reply lands at time R is keyed at R, so no
        // other actor observes the world "between" its request and its
        // reply out of order. Pin it over a pseudo-random schedule.
        let mut state = 0xD1B5_4A32_D192_ED03u64;
        let mut rand = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let scripts: Vec<Vec<Nanos>> = (0..32)
            .map(|_| {
                let mut t = 0u64;
                (0..64)
                    .map(|_| {
                        // Mostly short local ops, occasionally a long
                        // "RPC" that parks the client far in the future.
                        let jump = if rand() % 8 == 0 { 10_000 } else { 10 };
                        t += 1 + rand() % jump;
                        t
                    })
                    .collect()
            })
            .collect();
        let (mut actors, log) = scripted(scripts);
        let stats = Engine::run(&mut actors);
        assert_eq!(stats.steps, 32 * 64);
        // Replay the log and check the global step times never decrease:
        // a decrease would mean some client was stepped while another
        // (earlier) client still had a pending reply to act on.
        let order = log.borrow();
        for w in order.windows(2) {
            assert!(
                w[1].0 >= w[0].0,
                "step at t={} for client {} after t={} for client {}",
                w[1].0,
                w[1].1,
                w[0].0,
                w[0].1
            );
        }
    }

    #[test]
    fn equal_times_step_fifo() {
        // Three actors whose clocks never move: each step re-queues at
        // the same time, behind the others — round-robin, not
        // starvation of the higher-indexed actors.
        let (mut actors, log) = scripted(vec![vec![0, 0], vec![0, 0], vec![0, 0]]);
        Engine::run(&mut actors);
        let ids: Vec<usize> = log.borrow().iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empty_and_single_actor_runs() {
        let (mut none, _) = scripted(vec![]);
        assert_eq!(Engine::run(&mut none), EngineStats::default());
        let (mut one, log) = scripted(vec![vec![5, 7, 9]]);
        let stats = Engine::run(&mut one);
        assert_eq!(stats.steps, 3);
        assert_eq!(stats.end_time, 9);
        assert_eq!(log.borrow().len(), 3);
    }

    #[test]
    fn scales_to_many_actors_on_one_thread() {
        // 20k actors, a few steps each: completes instantly and the
        // step count is exact — the "multiplex 10k+ clients with zero
        // OS-thread cost" claim in miniature.
        let scripts: Vec<Vec<Nanos>> = (0..20_000u64)
            .map(|i| (1..=4).map(|s| i + s * 100).collect())
            .collect();
        let (mut actors, _) = scripted(scripts);
        let stats = Engine::run(&mut actors);
        assert_eq!(stats.steps, 80_000);
    }
}
