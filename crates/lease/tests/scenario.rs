//! Deterministic single-threaded lease scenarios scripted with the
//! simkit event queue: expiry ordering, competing acquirers, recovery
//! hold-off, all on one explicit timeline.

use arkfs_lease::{LeaseConfig, LeaseManager, LeaseRequest, LeaseResponse};
use arkfs_netsim::{NodeId, Service};
use arkfs_simkit::EventQueue;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Acquire(NodeId),
    Release(NodeId),
}

const DIR: u128 = 7;

/// Drive the manager from a scripted event queue; returns the responses
/// in event order.
fn run(mgr: &LeaseManager, events: Vec<(u64, Event)>) -> Vec<(u64, LeaseResponse)> {
    let mut q = EventQueue::new();
    for (at, e) in events {
        q.schedule_at(at, e);
    }
    let mut out = Vec::new();
    while let Some((at, event)) = q.pop() {
        let req = match event {
            Event::Acquire(c) => LeaseRequest::Acquire {
                client: c,
                ino: DIR,
            },
            Event::Release(c) => LeaseRequest::Release {
                client: c,
                ino: DIR,
            },
        };
        let (resp, _done) = mgr.handle(at, req);
        out.push((at, resp));
    }
    out
}

#[test]
fn scripted_contention_timeline() {
    let mgr = LeaseManager::new(LeaseConfig {
        period: 100,
        grace: 50,
        op_service: 0,
    });
    let c1 = NodeId(1);
    let c2 = NodeId(2);
    let responses = run(
        &mgr,
        vec![
            (0, Event::Acquire(c1)),   // granted until 100
            (40, Event::Acquire(c2)),  // redirect to c1
            (90, Event::Acquire(c1)),  // extension until 190
            (150, Event::Acquire(c2)), // still valid -> redirect
            (200, Event::Acquire(c2)), // expired @190, dirty: retry until 240
            (240, Event::Acquire(c2)), // takeover, dirty
            (250, Event::Release(c2)), // clean handback
            (251, Event::Acquire(c1)), // immediate regrant
        ],
    );
    use LeaseResponse::*;
    let kinds: Vec<&LeaseResponse> = responses.iter().map(|(_, r)| r).collect();
    assert!(matches!(
        kinds[0],
        Granted {
            expires_at: 100,
            must_load: true,
            ..
        }
    ));
    assert!(matches!(kinds[1], Redirect { leader } if *leader == c1));
    assert!(matches!(
        kinds[2],
        Granted {
            expires_at: 190,
            must_load: false,
            ..
        }
    ));
    assert!(matches!(kinds[3], Redirect { leader } if *leader == c1));
    assert!(matches!(kinds[4], Retry { until: 240 }));
    assert!(
        matches!(
            kinds[5],
            Granted {
                takeover_dirty: true,
                must_load: true,
                ..
            }
        ),
        "{:?}",
        kinds[5]
    );
    assert!(matches!(kinds[6], Released));
    assert!(matches!(
        kinds[7],
        Granted {
            takeover_dirty: false,
            must_load: true,
            ..
        }
    ));
}

#[test]
fn simultaneous_acquires_are_fcfs_by_queue_order() {
    // Two acquires scheduled at the same instant: the queue's stable FIFO
    // order decides; the first scheduled wins, the second is redirected.
    let mgr = LeaseManager::new(LeaseConfig {
        period: 100,
        grace: 0,
        op_service: 0,
    });
    let responses = run(
        &mgr,
        vec![
            (10, Event::Acquire(NodeId(5))),
            (10, Event::Acquire(NodeId(6))),
        ],
    );
    assert!(matches!(responses[0].1, LeaseResponse::Granted { .. }));
    assert!(matches!(responses[1].1, LeaseResponse::Redirect { leader } if leader == NodeId(5)));
}
