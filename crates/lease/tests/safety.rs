//! Safety property of the directory lease protocol: at most one valid
//! leader per directory at any time, under arbitrary interleavings of
//! acquires, releases, and time advancement.

use arkfs_lease::{LeaseConfig, LeaseManager, LeaseRequest, LeaseResponse};
use arkfs_netsim::{NodeId, Service};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum Act {
    Acquire { client: u32, dir: u8 },
    Release { client: u32, dir: u8 },
    Advance(u32),
}

fn arb_act() -> impl Strategy<Value = Act> {
    prop_oneof![
        (0u32..6, 0u8..3).prop_map(|(c, d)| Act::Acquire { client: c, dir: d }),
        (0u32..6, 0u8..3).prop_map(|(c, d)| Act::Release { client: c, dir: d }),
        (1u32..200).prop_map(Act::Advance),
    ]
}

proptest! {
    #[test]
    fn at_most_one_valid_leader(acts in prop::collection::vec(arb_act(), 1..200)) {
        let config = LeaseConfig { period: 100, grace: 100, op_service: 0 };
        let mgr = LeaseManager::new(config);
        let mut now: u64 = 0;
        // Current belief: dir -> (holder, expires_at), from granted
        // responses only.
        let mut holders: HashMap<u8, (u32, u64)> = HashMap::new();
        for act in acts {
            match act {
                Act::Advance(dt) => now += dt as u64,
                Act::Release { client, dir } => {
                    let (resp, done) = mgr.handle(
                        now,
                        LeaseRequest::Release { client: NodeId(client), ino: dir as u128 },
                    );
                    now = now.max(done);
                    prop_assert!(matches!(resp, LeaseResponse::Released));
                    if let Some(&(h, _)) = holders.get(&dir) {
                        if h == client {
                            holders.remove(&dir);
                        }
                    }
                }
                Act::Acquire { client, dir } => {
                    let (resp, done) = mgr.handle(
                        now,
                        LeaseRequest::Acquire { client: NodeId(client), ino: dir as u128 },
                    );
                    now = now.max(done);
                    match resp {
                        LeaseResponse::Granted { expires_at, .. } => {
                            // SAFETY: nobody else may hold an unexpired
                            // lease on this directory.
                            if let Some(&(holder, exp)) = holders.get(&dir) {
                                prop_assert!(
                                    holder == client || exp < now,
                                    "dir {dir}: granted to {client} at {now} while {holder} \
                                     holds until {exp}"
                                );
                            }
                            prop_assert!(expires_at > now);
                            holders.insert(dir, (client, expires_at));
                        }
                        LeaseResponse::Redirect { leader } => {
                            // Redirect must point at the current valid
                            // holder.
                            let (holder, exp) = holders[&dir];
                            prop_assert_eq!(leader, NodeId(holder));
                            prop_assert!(exp >= now, "redirect to expired holder");
                        }
                        LeaseResponse::Retry { until } => {
                            prop_assert!(until > now);
                        }
                        LeaseResponse::Released => prop_assert!(false, "released on acquire"),
                    }
                }
            }
        }
    }
}
