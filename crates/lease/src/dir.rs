//! The directory lease manager.
//!
//! "ArkFS deploys a lease manager in the cluster and it issues a lease
//! with a period of 5 seconds by default [...] The lease mechanism works
//! in a first-come, first-served manner" (§III-B).

use crate::Ino;
use arkfs_netsim::{NodeId, Service};
use arkfs_simkit::{Nanos, SharedResource, SEC};
use arkfs_telemetry::{Counter, Telemetry, PID_LEASE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Lease-manager tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// Lease validity period (paper default: 5 s).
    pub period: Nanos,
    /// Extra wait after a *dirty* holder change (holder expired without
    /// releasing) before a new client may take over — gives file leases
    /// issued by the dead leader time to drain (§III-E.1).
    pub grace: Nanos,
    /// Service time of one request at the manager.
    pub op_service: Nanos,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            period: 5 * SEC,
            grace: 5 * SEC,
            op_service: 5_000,
        }
    }
}

/// Requests understood by the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseRequest {
    /// Acquire (or extend) the lease of directory `ino`.
    Acquire { client: NodeId, ino: Ino },
    /// Voluntarily give the lease back after flushing everything.
    Release { client: NodeId, ino: Ino },
}

/// Manager responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseResponse {
    /// The caller is now (still) the directory leader.
    Granted {
        expires_at: Nanos,
        /// The caller must (re)load the metatable from object storage.
        /// `false` only for seamless extension / same-holder re-acquire,
        /// whose in-memory metatable is guaranteed up to date (§III-B).
        must_load: bool,
        /// The previous holder expired without releasing: the new leader
        /// must scan the per-directory journal for unfinished
        /// transactions and recover (§III-E.1).
        takeover_dirty: bool,
    },
    /// Someone else is the leader; forward operations to them.
    Redirect { leader: NodeId },
    /// Temporarily unavailable (recovery hold-off or manager restart
    /// grace); try again at `until`.
    Retry { until: Nanos },
    /// Release acknowledged (or ignored: not the holder).
    Released,
}

#[derive(Debug)]
struct LeaseState {
    holder: NodeId,
    expires_at: Nanos,
    /// Holder released voluntarily (all state flushed).
    clean: bool,
}

#[derive(Debug, Default)]
struct ManagerState {
    leases: HashMap<Ino, LeaseState>,
    /// Monotone view of time derived from request arrivals.
    now: Nanos,
}

/// The cluster-wide directory lease manager. Register it on a
/// [`arkfs_netsim::Bus`] as the service of its node.
pub struct LeaseManager {
    config: LeaseConfig,
    /// Requests are serialized at the manager; this models its CPU.
    server: SharedResource,
    state: Mutex<ManagerState>,
    /// Virtual boot time. After a restart the manager refuses grants for
    /// one lease period so stale leaders can expire (§III-E.2).
    boot_at: Nanos,
    tel: Option<LeaseTelemetry>,
}

/// Pre-resolved registry handles (see [`LeaseManager::with_telemetry`]).
struct LeaseTelemetry {
    telemetry: Arc<Telemetry>,
    acquires: Arc<Counter>,
    grants: Arc<Counter>,
    redirects: Arc<Counter>,
    retries: Arc<Counter>,
    releases: Arc<Counter>,
}

impl LeaseManager {
    pub fn new(config: LeaseConfig) -> Self {
        Self::restarted_at(config, 0)
    }

    /// A manager that (re)booted at virtual time `boot_at`: it enforces
    /// the startup grace window from that point.
    pub fn restarted_at(config: LeaseConfig, boot_at: Nanos) -> Self {
        LeaseManager {
            config,
            server: SharedResource::ideal("lease-mgr"),
            state: Mutex::new(ManagerState {
                leases: HashMap::new(),
                now: boot_at,
            }),
            boot_at,
            tel: None,
        }
    }

    /// Record request/outcome counters (`lease.*`) and service spans
    /// into a deployment's shared telemetry.
    pub fn with_telemetry(mut self, telemetry: &Arc<Telemetry>) -> Self {
        let reg = &telemetry.registry;
        self.tel = Some(LeaseTelemetry {
            telemetry: Arc::clone(telemetry),
            acquires: reg.counter("lease.acquire.count"),
            grants: reg.counter("lease.grant.count"),
            redirects: reg.counter("lease.redirect.count"),
            retries: reg.counter("lease.retry.count"),
            releases: reg.counter("lease.release.count"),
        });
        self
    }

    pub fn config(&self) -> &LeaseConfig {
        &self.config
    }

    /// Number of directories with a currently tracked lease record.
    pub fn tracked_leases(&self) -> usize {
        self.state.lock().leases.len()
    }

    fn acquire(&self, now: Nanos, client: NodeId, ino: Ino) -> LeaseResponse {
        // Startup grace: a freshly (re)started manager must not grant
        // until leases issued before the crash have certainly expired.
        let ready_at = self.boot_at.saturating_add(if self.boot_at == 0 {
            0
        } else {
            self.config.period
        });
        if now < ready_at {
            return LeaseResponse::Retry { until: ready_at };
        }
        let mut st = self.state.lock();
        st.now = st.now.max(now);
        let now = st.now;
        let expires_at = now.saturating_add(self.config.period);
        let st = &mut *st;
        match st.leases.get_mut(&ino) {
            None => {
                st.leases.insert(
                    ino,
                    LeaseState {
                        holder: client,
                        expires_at,
                        clean: false,
                    },
                );
                LeaseResponse::Granted {
                    expires_at,
                    must_load: true,
                    takeover_dirty: false,
                }
            }
            Some(lease) if lease.holder == client => {
                // Extension (before expiry) or same-holder re-acquire
                // (after): either way the in-memory metatable is still
                // authoritative, because nobody else could have led the
                // directory in between.
                lease.expires_at = expires_at;
                lease.clean = false;
                LeaseResponse::Granted {
                    expires_at,
                    must_load: false,
                    takeover_dirty: false,
                }
            }
            // A cleanly released lease is immediately grantable even if
            // virtual clocks make `now` land exactly on its expiry.
            Some(lease) if now <= lease.expires_at && !lease.clean => LeaseResponse::Redirect {
                leader: lease.holder,
            },
            Some(lease) => {
                // Previous holder expired. Dirty takeovers wait out the
                // grace window so the dead leader's file leases drain.
                if !lease.clean {
                    let until = lease.expires_at.saturating_add(self.config.grace);
                    if now < until {
                        return LeaseResponse::Retry { until };
                    }
                }
                let takeover_dirty = !lease.clean;
                *lease = LeaseState {
                    holder: client,
                    expires_at,
                    clean: false,
                };
                LeaseResponse::Granted {
                    expires_at,
                    must_load: true,
                    takeover_dirty,
                }
            }
        }
    }

    fn release(&self, now: Nanos, client: NodeId, ino: Ino) -> LeaseResponse {
        let mut st = self.state.lock();
        st.now = st.now.max(now);
        let released_at = st.now;
        if let Some(lease) = st.leases.get_mut(&ino) {
            if lease.holder == client {
                lease.expires_at = released_at;
                lease.clean = true;
            }
        }
        LeaseResponse::Released
    }
}

impl Service<LeaseRequest, LeaseResponse> for LeaseManager {
    fn handle(&self, arrival: Nanos, req: LeaseRequest) -> (LeaseResponse, Nanos) {
        // "Acquiring/extending a lease is a very lightweight operation"
        // (§III-B) — but it is still serialized at the single manager.
        let done = self.server.reserve(arrival, self.config.op_service);
        let is_acquire = matches!(req, LeaseRequest::Acquire { .. });
        let resp = match req {
            LeaseRequest::Acquire { client, ino } => self.acquire(done, client, ino),
            LeaseRequest::Release { client, ino } => self.release(done, client, ino),
        };
        if let Some(tel) = &self.tel {
            if is_acquire {
                tel.acquires.inc();
            }
            match &resp {
                LeaseResponse::Granted { .. } => tel.grants.inc(),
                LeaseResponse::Redirect { .. } => tel.redirects.inc(),
                LeaseResponse::Retry { .. } => tel.retries.inc(),
                LeaseResponse::Released => tel.releases.inc(),
            }
            if tel.telemetry.tracer.enabled() {
                let name = if is_acquire {
                    "lease.acquire"
                } else {
                    "lease.release"
                };
                tel.telemetry
                    .tracer
                    .record(PID_LEASE, 0, name, "lease", arrival, done);
            }
        }
        (resp, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIR: Ino = 42;
    const C1: NodeId = NodeId(1);
    const C2: NodeId = NodeId(2);

    fn mgr() -> LeaseManager {
        LeaseManager::new(LeaseConfig {
            period: 100,
            grace: 100,
            op_service: 0,
        })
    }

    fn acquire(m: &LeaseManager, now: Nanos, c: NodeId) -> LeaseResponse {
        m.acquire(now, c, DIR)
    }

    #[test]
    fn first_come_first_served() {
        let m = mgr();
        let r1 = acquire(&m, 0, C1);
        assert_eq!(
            r1,
            LeaseResponse::Granted {
                expires_at: 100,
                must_load: true,
                takeover_dirty: false
            }
        );
        // C2 is redirected to the leader while the lease is valid.
        assert_eq!(acquire(&m, 50, C2), LeaseResponse::Redirect { leader: C1 });
        assert_eq!(m.tracked_leases(), 1);
    }

    #[test]
    fn extension_skips_reload() {
        let m = mgr();
        acquire(&m, 0, C1);
        let r = acquire(&m, 90, C1);
        assert_eq!(
            r,
            LeaseResponse::Granted {
                expires_at: 190,
                must_load: false,
                takeover_dirty: false
            }
        );
    }

    #[test]
    fn same_holder_reacquire_after_expiry_skips_reload() {
        let m = mgr();
        acquire(&m, 0, C1);
        // Long after expiry, the same client re-acquires: nobody else led
        // the directory, so its metatable is still valid.
        let r = acquire(&m, 500, C1);
        assert!(matches!(
            r,
            LeaseResponse::Granted {
                must_load: false,
                ..
            }
        ));
    }

    #[test]
    fn dirty_takeover_waits_grace_then_flags_recovery() {
        let m = mgr();
        acquire(&m, 0, C1); // expires at 100
                            // C2 at t=150: lease expired but grace (until 200) not over.
        assert_eq!(acquire(&m, 150, C2), LeaseResponse::Retry { until: 200 });
        // C2 at t=200: takeover succeeds, flagged dirty.
        let r = acquire(&m, 200, C2);
        assert_eq!(
            r,
            LeaseResponse::Granted {
                expires_at: 300,
                must_load: true,
                takeover_dirty: true
            }
        );
    }

    #[test]
    fn clean_release_allows_immediate_takeover() {
        let m = mgr();
        acquire(&m, 0, C1);
        assert_eq!(m.release(10, C1, DIR), LeaseResponse::Released);
        let r = acquire(&m, 11, C2);
        assert_eq!(
            r,
            LeaseResponse::Granted {
                expires_at: 111,
                must_load: true,
                takeover_dirty: false
            }
        );
    }

    #[test]
    fn release_by_non_holder_is_ignored() {
        let m = mgr();
        acquire(&m, 0, C1);
        m.release(10, C2, DIR);
        // C1 still the leader.
        assert_eq!(acquire(&m, 20, C2), LeaseResponse::Redirect { leader: C1 });
    }

    #[test]
    fn restarted_manager_enforces_startup_grace() {
        let cfg = LeaseConfig {
            period: 100,
            grace: 100,
            op_service: 0,
        };
        let m = LeaseManager::restarted_at(cfg, 1000);
        assert_eq!(
            m.acquire(1050, C1, DIR),
            LeaseResponse::Retry { until: 1100 }
        );
        assert!(matches!(
            m.acquire(1100, C1, DIR),
            LeaseResponse::Granted { .. }
        ));
    }

    #[test]
    fn fresh_manager_at_time_zero_has_no_grace() {
        let m = mgr();
        assert!(matches!(
            m.acquire(0, C1, DIR),
            LeaseResponse::Granted { .. }
        ));
    }

    #[test]
    fn time_never_runs_backwards() {
        let m = mgr();
        acquire(&m, 1000, C1);
        // A stale arrival (t=0) cannot observe the lease as unexpired
        // forever; internal time is max-merged, so C2's early-arrival
        // request is treated at t>=1000 and gets redirected (valid lease).
        assert_eq!(acquire(&m, 0, C2), LeaseResponse::Redirect { leader: C1 });
    }

    #[test]
    fn service_trait_charges_server_time() {
        let m = LeaseManager::new(LeaseConfig {
            period: 100,
            grace: 0,
            op_service: 7,
        });
        let (resp, done) = m.handle(
            0,
            LeaseRequest::Acquire {
                client: C1,
                ino: DIR,
            },
        );
        assert!(matches!(resp, LeaseResponse::Granted { .. }));
        assert_eq!(done, 7);
        // Second request queues behind the first.
        let (_, done2) = m.handle(
            0,
            LeaseRequest::Release {
                client: C1,
                ino: DIR,
            },
        );
        assert_eq!(done2, 14);
    }

    #[test]
    fn leases_are_per_directory() {
        let m = mgr();
        assert!(matches!(m.acquire(0, C1, 1), LeaseResponse::Granted { .. }));
        assert!(matches!(m.acquire(0, C2, 2), LeaseResponse::Granted { .. }));
        assert_eq!(m.tracked_leases(), 2);
    }
}
