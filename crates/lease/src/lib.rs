//! Lease management (§III-B, §III-D, §III-E of the paper).
//!
//! Two kinds of leases exist in ArkFS:
//!
//! * **Directory leases**, issued by the cluster-wide [`LeaseManager`]:
//!   whoever holds the lease of a directory is its *directory leader*,
//!   builds the per-directory metatable, owns the per-directory journal,
//!   and serves all metadata operations for it. First-come first-served,
//!   5 s period by default, extension supported, with the recovery
//!   hold-off rules of §III-E.
//! * **File read/write leases**, issued *by directory leaders* for the
//!   child files of their directory ([`FileLeaseTable`]): shared read
//!   leases let any client cache data objects; a write lease requires
//!   exclusivity, otherwise the leader broadcasts cache flushes and the
//!   file degrades to direct object-store I/O.

pub mod dir;
pub mod file;

pub use dir::{LeaseConfig, LeaseManager, LeaseRequest, LeaseResponse};
pub use file::{FileLeaseDecision, FileLeaseTable};

/// Inode number (mirrors `arkfs_vfs::Ino` without the dependency).
pub type Ino = u128;
