//! Per-file read/write leases (§III-D).
//!
//! "Initially, all the clients are issued read leases for the target file
//! [...] When WRITE is called for the first time, the read lease may be
//! upgraded to the write lease if there are no other clients who have
//! read/write leases at that time [...] If there are other clients who
//! have read leases, the leader broadcasts cache flushing requests [...]
//! and lets the clients perform I/O operations directly on object
//! storage."
//!
//! The table is owned by the leader of the parent directory; one instance
//! per metatable.

use crate::Ino;
use arkfs_netsim::NodeId;
use arkfs_simkit::Nanos;
use std::collections::HashMap;

/// Outcome of a lease request at the directory leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileLeaseDecision {
    /// Lease granted; the client may cache data objects until then.
    Granted { expires_at: Nanos },
    /// Conflict: the leader must broadcast cache-flush requests to
    /// `flush` and the file operates in direct (uncached) mode until
    /// outstanding leases drain at `direct_until`.
    Direct {
        flush: Vec<NodeId>,
        direct_until: Nanos,
    },
}

#[derive(Debug)]
enum FileState {
    /// Shared readers with individual expiries.
    Readers(HashMap<NodeId, Nanos>),
    /// One exclusive writer.
    Writer { holder: NodeId, expires_at: Nanos },
    /// Conflicted: everyone does direct object-store I/O until the time
    /// at which all previously issued leases have expired.
    Direct { until: Nanos },
}

/// Read/write lease state for the child files of one directory.
#[derive(Debug, Default)]
pub struct FileLeaseTable {
    files: HashMap<Ino, FileState>,
    period: Nanos,
}

impl FileLeaseTable {
    pub fn new(period: Nanos) -> Self {
        FileLeaseTable {
            files: HashMap::new(),
            period,
        }
    }

    /// Drop expired state; called lazily from the accessors.
    fn normalize(&mut self, ino: Ino, now: Nanos) {
        if let Some(state) = self.files.get_mut(&ino) {
            let empty = match state {
                FileState::Readers(readers) => {
                    readers.retain(|_, exp| *exp > now);
                    readers.is_empty()
                }
                FileState::Writer { expires_at, .. } => *expires_at <= now,
                FileState::Direct { until } => *until <= now,
            };
            if empty {
                self.files.remove(&ino);
            }
        }
    }

    /// OPEN/CREATE path: grant a shared read lease.
    pub fn acquire_read(&mut self, client: NodeId, ino: Ino, now: Nanos) -> FileLeaseDecision {
        self.normalize(ino, now);
        let expires_at = now + self.period;
        match self.files.get_mut(&ino) {
            None => {
                let mut readers = HashMap::new();
                readers.insert(client, expires_at);
                self.files.insert(ino, FileState::Readers(readers));
                FileLeaseDecision::Granted { expires_at }
            }
            Some(FileState::Readers(readers)) => {
                readers.insert(client, expires_at);
                FileLeaseDecision::Granted { expires_at }
            }
            Some(FileState::Writer {
                holder,
                expires_at: w_exp,
            }) => {
                if *holder == client {
                    // A writer may keep reading through its own cache.
                    *w_exp = expires_at;
                    FileLeaseDecision::Granted { expires_at }
                } else {
                    // Reader vs foreign writer: flush the writer and go
                    // direct until its lease has certainly drained.
                    let until = (*w_exp).max(expires_at);
                    let flush = vec![*holder];
                    self.files.insert(ino, FileState::Direct { until });
                    FileLeaseDecision::Direct {
                        flush,
                        direct_until: until,
                    }
                }
            }
            Some(FileState::Direct { until }) => FileLeaseDecision::Direct {
                flush: Vec::new(),
                direct_until: *until,
            },
        }
    }

    /// First WRITE on a handle: try to upgrade to an exclusive write
    /// lease.
    pub fn acquire_write(&mut self, client: NodeId, ino: Ino, now: Nanos) -> FileLeaseDecision {
        self.normalize(ino, now);
        let expires_at = now + self.period;
        match self.files.get_mut(&ino) {
            None => {
                self.files.insert(
                    ino,
                    FileState::Writer {
                        holder: client,
                        expires_at,
                    },
                );
                FileLeaseDecision::Granted { expires_at }
            }
            Some(FileState::Readers(readers)) => {
                let only_self = readers.len() == 1 && readers.contains_key(&client);
                if readers.is_empty() || only_self {
                    self.files.insert(
                        ino,
                        FileState::Writer {
                            holder: client,
                            expires_at,
                        },
                    );
                    FileLeaseDecision::Granted { expires_at }
                } else {
                    let mut flush: Vec<NodeId> =
                        readers.keys().copied().filter(|c| *c != client).collect();
                    flush.sort();
                    let until = readers
                        .values()
                        .copied()
                        .max()
                        .unwrap_or(now)
                        .max(expires_at);
                    self.files.insert(ino, FileState::Direct { until });
                    FileLeaseDecision::Direct {
                        flush,
                        direct_until: until,
                    }
                }
            }
            Some(FileState::Writer {
                holder,
                expires_at: w_exp,
            }) => {
                if *holder == client {
                    *w_exp = expires_at;
                    FileLeaseDecision::Granted { expires_at }
                } else {
                    let until = (*w_exp).max(expires_at);
                    let flush = vec![*holder];
                    self.files.insert(ino, FileState::Direct { until });
                    FileLeaseDecision::Direct {
                        flush,
                        direct_until: until,
                    }
                }
            }
            Some(FileState::Direct { until }) => FileLeaseDecision::Direct {
                flush: Vec::new(),
                direct_until: *until,
            },
        }
    }

    /// Voluntary release (file closed and flushed).
    pub fn release(&mut self, client: NodeId, ino: Ino, now: Nanos) {
        self.normalize(ino, now);
        match self.files.get_mut(&ino) {
            Some(FileState::Readers(readers)) => {
                readers.remove(&client);
                if readers.is_empty() {
                    self.files.remove(&ino);
                }
            }
            Some(FileState::Writer { holder, .. }) if *holder == client => {
                self.files.remove(&ino);
            }
            _ => {}
        }
    }

    /// Number of files with active lease state (after expiry sweep at
    /// `now`).
    pub fn active_files(&mut self, now: Nanos) -> usize {
        let inos: Vec<Ino> = self.files.keys().copied().collect();
        for ino in inos {
            self.normalize(ino, now);
        }
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Ino = 7;
    const C1: NodeId = NodeId(1);
    const C2: NodeId = NodeId(2);
    const C3: NodeId = NodeId(3);

    fn table() -> FileLeaseTable {
        FileLeaseTable::new(100)
    }

    #[test]
    fn shared_reads() {
        let mut t = table();
        assert_eq!(
            t.acquire_read(C1, F, 0),
            FileLeaseDecision::Granted { expires_at: 100 }
        );
        assert_eq!(
            t.acquire_read(C2, F, 10),
            FileLeaseDecision::Granted { expires_at: 110 }
        );
        assert_eq!(t.active_files(50), 1);
    }

    #[test]
    fn sole_reader_upgrades_to_writer() {
        let mut t = table();
        t.acquire_read(C1, F, 0);
        assert_eq!(
            t.acquire_write(C1, F, 10),
            FileLeaseDecision::Granted { expires_at: 110 }
        );
        // And the writer can renew.
        assert_eq!(
            t.acquire_write(C1, F, 20),
            FileLeaseDecision::Granted { expires_at: 120 }
        );
    }

    #[test]
    fn write_with_foreign_readers_goes_direct_with_flush() {
        let mut t = table();
        t.acquire_read(C1, F, 0);
        t.acquire_read(C2, F, 0);
        t.acquire_read(C3, F, 0);
        let d = t.acquire_write(C1, F, 10);
        match d {
            FileLeaseDecision::Direct {
                flush,
                direct_until,
            } => {
                assert_eq!(flush, vec![C2, C3]);
                assert!(direct_until >= 110);
            }
            other => panic!("expected Direct, got {other:?}"),
        }
        // Subsequent accesses stay direct (no more flushes needed).
        assert!(matches!(
            t.acquire_write(C2, F, 20),
            FileLeaseDecision::Direct { flush, .. } if flush.is_empty()
        ));
    }

    #[test]
    fn reader_vs_foreign_writer_flushes_writer() {
        let mut t = table();
        t.acquire_write(C1, F, 0);
        let d = t.acquire_read(C2, F, 10);
        match d {
            FileLeaseDecision::Direct { flush, .. } => assert_eq!(flush, vec![C1]),
            other => panic!("expected Direct, got {other:?}"),
        }
    }

    #[test]
    fn writer_keeps_reading_its_own_cache() {
        let mut t = table();
        t.acquire_write(C1, F, 0);
        assert!(matches!(
            t.acquire_read(C1, F, 10),
            FileLeaseDecision::Granted { .. }
        ));
    }

    #[test]
    fn leases_expire() {
        let mut t = table();
        t.acquire_read(C2, F, 0); // expires at 100
                                  // C1 writes at t=150: reader expired, exclusive grant.
        assert!(matches!(
            t.acquire_write(C1, F, 150),
            FileLeaseDecision::Granted { .. }
        ));
    }

    #[test]
    fn direct_mode_drains_back_to_cached() {
        let mut t = table();
        t.acquire_read(C1, F, 0);
        t.acquire_read(C2, F, 0);
        let FileLeaseDecision::Direct { direct_until, .. } = t.acquire_write(C1, F, 10) else {
            panic!("expected Direct");
        };
        // After the drain time, caching resumes.
        assert!(matches!(
            t.acquire_write(C1, F, direct_until + 1),
            FileLeaseDecision::Granted { .. }
        ));
    }

    #[test]
    fn release_frees_state() {
        let mut t = table();
        t.acquire_read(C1, F, 0);
        t.acquire_read(C2, F, 0);
        t.release(C1, F, 10);
        t.release(C2, F, 10);
        assert_eq!(t.active_files(10), 0);
        // Writer release too.
        t.acquire_write(C1, F, 20);
        t.release(C1, F, 30);
        assert_eq!(t.active_files(30), 0);
        // After both readers released, a write is exclusive again.
        t.acquire_read(C1, F, 40);
        t.release(C1, F, 50);
        assert!(matches!(
            t.acquire_write(C2, F, 60),
            FileLeaseDecision::Granted { .. }
        ));
    }

    #[test]
    fn tables_are_per_file() {
        let mut t = table();
        t.acquire_write(C1, 1, 0);
        assert!(matches!(
            t.acquire_write(C2, 2, 0),
            FileLeaseDecision::Granted { .. }
        ));
        assert_eq!(t.active_files(0), 2);
    }
}
