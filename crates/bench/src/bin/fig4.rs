//! Figure 4 — "Throughput of mdtest-easy": CREATE / STAT / DELETE of
//! empty files, 16 processes, private leaf directories, across ArkFS,
//! CephFS-F, CephFS-K (1 and 16 MDS), and MarFS.
//!
//! Expected shape (paper): ArkFS far ahead on every phase (up to ~24.9×
//! CephFS); CephFS-K > CephFS-F > MarFS; 16 MDS ≤ 2.41× of 1 MDS.

use arkfs::ArkConfig;
use arkfs_baselines::MountType;
use arkfs_bench::{
    ark_fleet, bench_files, bench_procs, ceph_fleet, enable_tracing, kops, marfs_fleet,
    phase_latency_metrics, print_table, save_bench_json, save_results, trace_path,
    write_chrome_trace, BenchRecord, System,
};
use arkfs_workloads::mdtest::{mdtest_easy, MdtestEasyConfig};

fn main() {
    let procs = bench_procs(16);
    let files = bench_files(100_000);
    let chunk = 64 * 1024;
    let trace = trace_path();
    let systems: Vec<System> = vec![
        ark_fleet(procs, ArkConfig::default(), true),
        ceph_fleet(procs, 1, MountType::Fuse, chunk, true),
        ceph_fleet(procs, 1, MountType::Kernel, chunk, true),
        ceph_fleet(procs, 16, MountType::Kernel, chunk, true),
        marfs_fleet(procs, chunk),
    ];
    let refs: Vec<&System> = systems.iter().collect();
    if trace.is_some() {
        enable_tracing(&refs);
    }
    let cfg = MdtestEasyConfig {
        files_total: files,
        create_only: false,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for system in &systems {
        let result = mdtest_easy(&system.clients, &cfg).expect("mdtest-easy");
        let get = |name: &str| result.phase(name).map(|p| p.ops_per_sec()).unwrap_or(0.0);
        rows.push(vec![
            system.name.clone(),
            kops(get("create")),
            kops(get("stat")),
            kops(get("delete")),
        ]);
        let mut metrics = vec![
            ("create_ops_s".to_string(), get("create")),
            ("stat_ops_s".to_string(), get("stat")),
            ("delete_ops_s".to_string(), get("delete")),
        ];
        for phase in &result.phases {
            metrics.extend(phase_latency_metrics(phase));
        }
        // ArkFS decouples ack from durability: report both sides of the
        // pipeline. Ack percentiles are the exact phase order statistics
        // (the return to the caller is the ack); durable percentiles
        // come from the `op.<name>.durable_ns` histograms stamped when
        // the sealed batch lands on the object store (stat mutates
        // nothing, so it has no durable side). Baselines have neither
        // histogram and emit neither key.
        if let Some(tel) = system.clients.first().and_then(|c| c.telemetry()) {
            let phase_ops = [
                ("create", "op.create"),
                ("stat", "op.stat"),
                ("delete", "op.unlink"),
            ];
            for (phase_name, op) in phase_ops {
                if tel.registry.histogram(&format!("{op}.ack_ns")).count() == 0 {
                    continue;
                }
                if let Some(p) = result.phase(phase_name) {
                    metrics.push((format!("{phase_name}_ack_p50_ns"), p.latency_p50 as f64));
                    metrics.push((format!("{phase_name}_ack_p99_ns"), p.latency_p99 as f64));
                }
                let durable = tel.registry.histogram(&format!("{op}.durable_ns"));
                if durable.count() > 0 {
                    let snap = durable.snapshot();
                    metrics.push((
                        format!("{phase_name}_durable_p50_ns"),
                        snap.quantile(0.5) as f64,
                    ));
                    metrics.push((
                        format!("{phase_name}_durable_p99_ns"),
                        snap.quantile(0.99) as f64,
                    ));
                }
            }
        }
        records.push(BenchRecord {
            group: "mdtest-easy".to_string(),
            system: system.name.clone(),
            metrics,
        });
        eprintln!("fig4: {} done", system.name);
    }
    let lines = print_table(
        &format!("Figure 4: mdtest-easy throughput (kops/s, {files} files, {procs} procs)"),
        &["system", "CREATE", "STAT", "DELETE"],
        &rows,
    );
    save_results("fig4", &lines);
    save_bench_json(
        "fig4",
        &[("files", files as f64), ("procs", procs as f64)],
        &records,
    );
    if let Some(path) = trace {
        write_chrome_trace(&path, &refs);
    }
}
