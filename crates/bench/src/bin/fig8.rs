//! Figure 8 — hot-directory sharding: CREATE throughput into ONE shared
//! directory (a million entries at full scale) under 64 writer
//! processes, with the directory's dentry space served by 1, 2 or 8
//! partition leaders.
//!
//! Expected shape: ops/s scales with the partition count (acceptance
//! floor: 8 partitions ≥ 3× 1 partition) because independent creates
//! commit through independent leaders, journal streams and commit
//! lanes. The ack/durable p99 split is reported per partition count;
//! per-partition `journal.sealed_depth.p<i>` gauges are sampled after
//! the last create, before the drain barrier zeroes them.

use arkfs::{ArkCluster, ArkConfig};
use arkfs_bench::{
    bench_files, bench_procs, kops, print_table, save_bench_json, save_results, trace_path,
    BenchRecord,
};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_telemetry::{critpath, merged_chrome_trace, Telemetry, Tracer};
use arkfs_vfs::{Credentials, Vfs};
use arkfs_workloads::mdtest::shared_dir_create;
use arkfs_workloads::Drive;
use arkfs_workloads::SimClient;
use std::sync::Arc;

fn main() {
    let procs = bench_procs(64);
    let files = bench_files(100_000);
    let trace = trace_path();
    let mut traced_tels: Vec<(String, Arc<Telemetry>)> = Vec::new();
    let ctx = Credentials::root();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut ops_by_pcount: Vec<(u32, f64)> = Vec::new();
    for pcount in [1u32, 2, 8] {
        let config = ArkConfig::default();
        let store_cfg = ClusterConfig::rados(config.spec.clone()).with_discard_payload(true);
        let cluster = ArkCluster::new(config, Arc::new(ObjectCluster::new(store_cfg)));
        if trace.is_some() {
            // Deterministic sampled causal tracing (head-based, every
            // 64th op per client); never advances virtual time, so the
            // figures match an untraced run exactly.
            cluster.telemetry().tracer.set_sample_every(64);
            cluster.telemetry().tracer.set_enabled(true);
        }
        let admin = cluster.client();
        admin.mkdir(&ctx, "/shared", 0o755).unwrap();
        admin.sync_all(&ctx).unwrap();
        if pcount > 1 {
            admin.set_dir_partitions(&ctx, "/shared", pcount).unwrap();
        }
        // Hand every lease back so partition leadership lands on the
        // writers that first touch each partition, not on the admin.
        admin.release_all(&ctx).unwrap();
        let clients: Vec<Arc<dyn SimClient>> = (0..procs)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect();
        let tel = Arc::clone(cluster.telemetry());
        let mut sealed_depth = vec![0i64; pcount as usize];
        let result = shared_dir_create(&clients, "/shared", files, Drive::Engine, || {
            for (p, slot) in sealed_depth.iter_mut().enumerate() {
                *slot = tel
                    .registry
                    .gauge(&format!("journal.sealed_depth.p{p}"))
                    .get();
            }
        })
        .expect("shared-dir create");
        assert_eq!(result.errors[0], 0, "shared-dir creates failed");
        let phase = &result.phases[0];
        let ops_s = phase.ops_per_sec();
        ops_by_pcount.push((pcount, ops_s));
        let counter = |name: &str| tel.registry.counter(name).get() as f64;
        let durable = tel.registry.histogram("op.create.durable_ns").snapshot();
        let mut metrics: Vec<(String, f64)> = vec![
            ("partitions".to_string(), pcount as f64),
            ("create_ops_s".to_string(), ops_s),
            ("create_p50_ns".to_string(), phase.latency_p50 as f64),
            ("create_p99_ns".to_string(), phase.latency_p99 as f64),
            ("create_max_ns".to_string(), phase.latency_max as f64),
            // Ack percentiles are the exact phase order statistics (the
            // return to the caller is the ack); durable percentiles come
            // from `op.create.durable_ns`, stamped when the sealed batch
            // lands on the object store.
            ("create_ack_p50_ns".to_string(), phase.latency_p50 as f64),
            ("create_ack_p99_ns".to_string(), phase.latency_p99 as f64),
            (
                "create_durable_p50_ns".to_string(),
                durable.quantile(0.5) as f64,
            ),
            (
                "create_durable_p99_ns".to_string(),
                durable.quantile(0.99) as f64,
            ),
            (
                "partition_splits".to_string(),
                counter("meta.partition.split.count"),
            ),
            (
                "partition_handoffs".to_string(),
                counter("meta.partition.handoff.count"),
            ),
            (
                "lease_handoff_failed".to_string(),
                counter("lease.handoff_failed.count"),
            ),
        ];
        for (p, depth) in sealed_depth.iter().enumerate() {
            metrics.push((format!("sealed_depth_p{p}"), *depth as f64));
        }
        if trace.is_some() {
            let aggs = critpath::aggregate(&tel.tracer.events());
            if let Some(agg) = aggs.get("op.create") {
                for (i, seg) in critpath::SEGMENTS.iter().enumerate() {
                    metrics.push((format!("create_cp_{seg}_ns"), agg.mean_seg(i)));
                }
                metrics.push(("create_cp_total_ns".to_string(), agg.mean_total()));
            }
            traced_tels.push((format!("ArkFS-P{pcount}"), Arc::clone(&tel)));
        }
        rows.push(vec![
            pcount.to_string(),
            kops(ops_s),
            phase.latency_p99.to_string(),
            durable.quantile(0.99).to_string(),
        ]);
        records.push(BenchRecord {
            group: "shared-dir-create".to_string(),
            system: format!("ArkFS-P{pcount}"),
            metrics,
        });
        eprintln!(
            "fig8: {pcount} partition(s) done ({:.1} kops/s)",
            ops_s / 1000.0
        );
    }
    let base = ops_by_pcount[0].1;
    let speedup8 = ops_by_pcount
        .iter()
        .find(|&&(p, _)| p == 8)
        .map(|&(_, v)| v / base)
        .unwrap_or(0.0);
    let mut lines = print_table(
        &format!(
            "Figure 8: shared-directory create vs partition count ({files} files, {procs} writers)"
        ),
        &[
            "partitions",
            "CREATE kops/s",
            "ack p99 ns",
            "durable p99 ns",
        ],
        &rows,
    );
    let speedup_line = format!("8-partition speedup over 1 partition: {speedup8:.2}x");
    println!("{speedup_line}");
    lines.push(speedup_line);
    save_results("fig8", &lines);
    save_bench_json(
        "fig8",
        &[
            ("files", files as f64),
            ("procs", procs as f64),
            ("speedup_8p_vs_1p", speedup8),
        ],
        &records,
    );
    assert!(
        speedup8 >= 3.0,
        "acceptance: 8 partitions must be >= 3x of 1 partition (got {speedup8:.2}x)"
    );
    if let Some(path) = trace {
        let groups: Vec<(&str, &Tracer)> = traced_tels
            .iter()
            .map(|(name, tel)| (name.as_str(), &tel.tracer))
            .collect();
        match std::fs::write(&path, merged_chrome_trace(&groups)) {
            Ok(()) => eprintln!("fig8: wrote causal trace to {path}"),
            Err(err) => eprintln!("fig8: failed to write trace {path}: {err}"),
        }
    }
}
