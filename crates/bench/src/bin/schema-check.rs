//! Validate the committed `BENCH_*.json` regression baselines against
//! the versioned schema, and (optionally) a Chrome `trace_event` JSON
//! produced with `--trace`.
//!
//! ```text
//! schema-check [--trace <trace.json>] [BENCH_fig4.json ...]
//! ```
//!
//! With no file arguments, checks `BENCH_fig4.json`, `BENCH_fig5.json`,
//! `BENCH_fig6.json`, `BENCH_fig8.json` and `BENCH_fig9.json` in the
//! working directory. The check is strict
//! both ways: a document fails on *missing* fields (a phase lost its
//! percentiles) and on *unknown* fields (someone added a metric without
//! extending this checker and, if needed, bumping the schema version).
//! Latency percentiles must be ordered: p50 <= p99 <= max.
//!
//! Some metrics are *optional*: the ack/durable latency split is only
//! reported by systems whose client decouples ack from durability
//! (ArkFS), so baselines legitimately omit those keys. Optional keys
//! come in p50/p99 pairs that must appear together and be ordered.
//!
//! Schema v3 adds critical-path attribution groups
//! (`<phase>_cp_<segment>_ns` + `<phase>_cp_total_ns`, derived from
//! sampled causal traces). A cp group is all-or-nothing per phase: if
//! any key appears, all must, every value must be non-negative, and the
//! segment means must sum to the total mean (within fp tolerance). The
//! group is *required* for fig9 (the knee attribution depends on it)
//! and optional for fig8 (only emitted on traced runs).

use arkfs_bench::BENCH_SCHEMA_VERSION;
use std::collections::BTreeSet;

// ---- minimal JSON parser (no external deps) ----------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data"));
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|_| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

fn parse(text: &str) -> Result<Json, String> {
    Parser::new(text).parse()
}

// ---- bench schema -------------------------------------------------------

/// The exact metric keys every record of a bench must carry.
fn expected_metrics(bench: &str) -> Option<Vec<String>> {
    let lat = |phase: &str| {
        vec![
            format!("{phase}_p50_ns"),
            format!("{phase}_p99_ns"),
            format!("{phase}_max_ns"),
        ]
    };
    let mut keys: Vec<String> = Vec::new();
    match bench {
        "fig4" => {
            for phase in ["create", "stat", "delete"] {
                keys.push(format!("{phase}_ops_s"));
                keys.extend(lat(phase));
            }
        }
        "fig5" => {
            for phase in ["write", "stat", "read", "delete"] {
                keys.push(format!("{phase}_ops_s"));
                keys.extend(lat(phase));
            }
            keys.push("read_errors".to_string());
        }
        "fig6" => {
            for phase in ["write", "read"] {
                keys.push(format!("{phase}_mib_s"));
                keys.extend(lat(phase));
            }
        }
        // fig8 also carries one `sealed_depth_p<i>` gauge per partition,
        // validated per record against its own `partitions` metric (the
        // key set varies across records of one document).
        "fig8" => {
            keys.push("partitions".to_string());
            keys.push("create_ops_s".to_string());
            keys.extend(lat("create"));
            keys.push("partition_splits".to_string());
            keys.push("partition_handoffs".to_string());
            keys.push("lease_handoff_failed".to_string());
        }
        // fig9 is the event-engine scaling curve: one record per client
        // count, each carrying the saturation telemetry for that point.
        "fig9" => {
            keys.push("clients".to_string());
            keys.push("create_ops_s".to_string());
            keys.extend(lat("create"));
            keys.push("lease_acquires".to_string());
            keys.push("lease_retries".to_string());
            keys.push("lease_redirects".to_string());
            keys.push("journal_flights".to_string());
            keys.push("partition_splits".to_string());
        }
        _ => return None,
    }
    Some(keys)
}

/// Optional metric keys, as (p50, p99) pairs: only systems exposing
/// the ack/durable split (ArkFS) carry them. Each pair is
/// all-or-nothing and must be ordered p50 <= p99. Stat mutates
/// nothing, so it has an ack pair but no durable pair.
fn optional_metric_pairs(bench: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    if bench == "fig4" {
        for phase in ["create", "stat", "delete"] {
            pairs.push((format!("{phase}_ack_p50_ns"), format!("{phase}_ack_p99_ns")));
        }
        for phase in ["create", "delete"] {
            pairs.push((
                format!("{phase}_durable_p50_ns"),
                format!("{phase}_durable_p99_ns"),
            ));
        }
    }
    if bench == "fig8" || bench == "fig9" {
        pairs.push(("create_ack_p50_ns".into(), "create_ack_p99_ns".into()));
        pairs.push((
            "create_durable_p50_ns".into(),
            "create_durable_p99_ns".into(),
        ));
    }
    pairs
}

/// Critical-path segments, mirroring `telemetry::critpath::SEGMENTS`.
const CP_SEGMENTS: [&str; 6] = [
    "lease_wait",
    "partition_route",
    "lane_queue",
    "seal_flush",
    "store_io",
    "client_cpu",
];

/// Phases that may carry a critical-path attribution group, and whether
/// the group is mandatory for this bench.
fn cp_phases(bench: &str) -> &'static [(&'static str, bool)] {
    match bench {
        // fig9's knee attribution is computed from these, so every
        // record must carry the full group.
        "fig9" => &[("create", true)],
        // fig8 emits the group only when run with `--trace`.
        "fig8" => &[("create", false)],
        _ => &[],
    }
}

fn cp_keys(bench: &str) -> Vec<String> {
    let mut keys = Vec::new();
    for (phase, _) in cp_phases(bench) {
        for seg in CP_SEGMENTS {
            keys.push(format!("{phase}_cp_{seg}_ns"));
        }
        keys.push(format!("{phase}_cp_total_ns"));
    }
    keys
}

/// Validate one record's cp groups: all-or-nothing per phase,
/// non-negative values, and segment means summing to the total mean.
fn check_cp_groups(bench: &str, metrics: &Json, i: usize, system: &str) -> Result<(), String> {
    for (phase, required) in cp_phases(bench) {
        let seg_keys: Vec<String> = CP_SEGMENTS
            .iter()
            .map(|seg| format!("{phase}_cp_{seg}_ns"))
            .collect();
        let total_key = format!("{phase}_cp_total_ns");
        let present = seg_keys
            .iter()
            .chain(std::iter::once(&total_key))
            .filter(|k| metrics.get(k).is_some())
            .count();
        if present == 0 {
            if *required {
                return Err(format!(
                    "results[{i}] ({system}): {phase} critical-path group missing \
                     (required for {bench})"
                ));
            }
            continue;
        }
        if present != seg_keys.len() + 1 {
            return Err(format!(
                "results[{i}] ({system}): {phase} critical-path group is partial \
                 ({present} of {} keys); cp keys are all-or-nothing",
                seg_keys.len() + 1
            ));
        }
        let num = |key: &str| -> Result<f64, String> {
            metrics
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("results[{i}] ({system}): {key} is not a number"))
        };
        let total = num(&total_key)?;
        let mut sum = 0.0;
        for key in &seg_keys {
            let v = num(key)?;
            if v < 0.0 {
                return Err(format!("results[{i}] ({system}): {key}={v} is negative"));
            }
            sum += v;
        }
        if total < 0.0 {
            return Err(format!(
                "results[{i}] ({system}): {total_key}={total} is negative"
            ));
        }
        // The analyzer charges every interval of the root window to
        // exactly one segment, so the means agree up to fp rounding.
        let tolerance = 1e-6 * total.max(1.0) + 1e-3;
        if sum > total + tolerance {
            return Err(format!(
                "results[{i}] ({system}): {phase} cp segments sum to {sum} \
                 > total {total}"
            ));
        }
    }
    Ok(())
}

/// Phases whose percentiles must be ordered p50 <= p99 <= max.
fn latency_phases(bench: &str) -> &'static [&'static str] {
    match bench {
        "fig4" => &["create", "stat", "delete"],
        "fig5" => &["write", "stat", "read", "delete"],
        "fig6" => &["write", "read"],
        "fig8" => &["create"],
        "fig9" => &["create"],
        _ => &[],
    }
}

fn check_bench_doc(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let doc = parse(&text)?;

    let top: BTreeSet<&str> = doc.keys().into_iter().collect();
    let want: BTreeSet<&str> = ["bench", "schema", "config", "results"].into();
    if top != want {
        return Err(format!("top-level keys {top:?}, expected {want:?}"));
    }
    let schema = doc
        .get("schema")
        .and_then(Json::as_num)
        .ok_or("schema: not a number")?;
    if schema != BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema version {schema}, expected {BENCH_SCHEMA_VERSION}"
        ));
    }
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("bench: not a string")?;
    let expected = expected_metrics(bench)
        .ok_or_else(|| format!("unknown bench '{bench}' — extend schema-check"))?;
    let expected: BTreeSet<&str> = expected.iter().map(String::as_str).collect();
    let pairs = optional_metric_pairs(bench);
    let cp = cp_keys(bench);
    let mut optional: BTreeSet<&str> = pairs
        .iter()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .collect();
    // cp keys are exempt from the unknown-key check; their presence
    // rules (all-or-nothing, required for fig9) are enforced per record
    // by `check_cp_groups`.
    optional.extend(cp.iter().map(String::as_str));

    for (key, value) in match doc.get("config") {
        Some(Json::Obj(fields)) => fields.iter(),
        _ => return Err("config: not an object".to_string()),
    } {
        if value.as_num().is_none() {
            return Err(format!("config.{key}: not a number"));
        }
    }

    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("results: not an array")?;
    if results.is_empty() {
        return Err("results: empty".to_string());
    }
    for (i, rec) in results.iter().enumerate() {
        let rkeys: BTreeSet<&str> = rec.keys().into_iter().collect();
        let rwant: BTreeSet<&str> = ["group", "system", "metrics"].into();
        if rkeys != rwant {
            return Err(format!("results[{i}] keys {rkeys:?}, expected {rwant:?}"));
        }
        let system = rec.get("system").and_then(Json::as_str).unwrap_or("?");
        let metrics = rec.get("metrics").ok_or("metrics missing")?;
        let mkeys: BTreeSet<&str> = metrics.keys().into_iter().collect();
        // fig8 carries one sealed-depth gauge per partition; the record's
        // own `partitions` metric says how many this record must have.
        let per_record: Vec<String> = if bench == "fig8" {
            let parts = metrics
                .get("partitions")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("results[{i}] ({system}): partitions missing"))?;
            (0..parts as usize)
                .map(|p| format!("sealed_depth_p{p}"))
                .collect()
        } else {
            Vec::new()
        };
        let mut expected = expected.clone();
        expected.extend(per_record.iter().map(String::as_str));
        let missing: Vec<&&str> = expected.difference(&mkeys).collect();
        let unknown: Vec<&&str> = mkeys
            .difference(&expected)
            .filter(|k| !optional.contains(*k))
            .collect();
        if !missing.is_empty() || !unknown.is_empty() {
            return Err(format!(
                "results[{i}] ({system}): missing {missing:?}, unknown {unknown:?}"
            ));
        }
        let num = |key: &str| -> Result<f64, String> {
            metrics
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("results[{i}] ({system}): {key} is not a number"))
        };
        for phase in latency_phases(bench) {
            let p50 = num(&format!("{phase}_p50_ns"))?;
            let p99 = num(&format!("{phase}_p99_ns"))?;
            let max = num(&format!("{phase}_max_ns"))?;
            if !(p50 <= p99 && p99 <= max) {
                return Err(format!(
                    "results[{i}] ({system}): {phase} percentiles unordered: \
                     p50={p50} p99={p99} max={max}"
                ));
            }
        }
        for (lo, hi) in &pairs {
            let p50 = metrics.get(lo).and_then(Json::as_num);
            let p99 = metrics.get(hi).and_then(Json::as_num);
            match (p50, p99) {
                (None, None) => {}
                (Some(p50), Some(p99)) => {
                    if p50 > p99 {
                        return Err(format!("results[{i}] ({system}): {lo}={p50} > {hi}={p99}"));
                    }
                }
                _ => {
                    return Err(format!(
                        "results[{i}] ({system}): {lo} and {hi} must appear together"
                    ));
                }
            }
        }
        check_cp_groups(bench, metrics, i, system)?;
    }
    // fig9 is a scaling curve: one record per client count, strictly
    // increasing, so consumers can treat the results array as the X axis.
    if bench == "fig9" {
        let mut prev = 0.0f64;
        for (i, rec) in results.iter().enumerate() {
            let clients = rec
                .get("metrics")
                .and_then(|m| m.get("clients"))
                .and_then(Json::as_num)
                .ok_or_else(|| format!("results[{i}]: clients missing"))?;
            if clients <= prev {
                return Err(format!(
                    "results[{i}]: client counts must be strictly increasing \
                     ({clients} after {prev})"
                ));
            }
            prev = clients;
        }
    }
    Ok(())
}

// ---- Chrome trace -------------------------------------------------------

fn check_trace_doc(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let doc = parse(&text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("traceEvents: not an array")?;
    if events.is_empty() {
        return Err("traceEvents: empty (was tracing enabled?)".to_string());
    }
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}]: missing ph"))?;
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("traceEvents[{i}]: missing numeric {key}"));
            }
        }
        match ph {
            "X" => {
                complete += 1;
                if ev.get("name").and_then(Json::as_str).is_none() {
                    return Err(format!("traceEvents[{i}]: X event without name"));
                }
                for key in ["ts", "dur"] {
                    if ev.get(key).and_then(Json::as_num).is_none() {
                        return Err(format!("traceEvents[{i}]: X event missing {key}"));
                    }
                }
                // Spans from causally-traced ops carry an args object
                // linking them to the originating client op. It is
                // optional (untraced spans omit it), but when present
                // must be well-formed.
                if let Some(args) = ev.get("args") {
                    for key in ["trace", "parent"] {
                        if args.get(key).and_then(Json::as_num).is_none() {
                            return Err(format!("traceEvents[{i}]: args missing numeric {key}"));
                        }
                    }
                    if !matches!(args.get("follows"), Some(Json::Bool(_))) {
                        return Err(format!("traceEvents[{i}]: args missing boolean follows"));
                    }
                }
            }
            "M" => {}
            other => return Err(format!("traceEvents[{i}]: unexpected ph '{other}'")),
        }
    }
    if complete == 0 {
        return Err("no complete ('X') span events".to_string());
    }
    Ok(())
}

fn main() {
    let mut benches: Vec<String> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            traces.extend(args.next());
        } else if let Some(p) = a.strip_prefix("--trace=") {
            traces.push(p.to_string());
        } else {
            benches.push(a);
        }
    }
    if benches.is_empty() && traces.is_empty() {
        benches = [
            "BENCH_fig4.json",
            "BENCH_fig5.json",
            "BENCH_fig6.json",
            "BENCH_fig8.json",
            "BENCH_fig9.json",
        ]
        .map(String::from)
        .to_vec();
    }

    let mut failed = false;
    for path in &benches {
        match check_bench_doc(path) {
            Ok(()) => println!("{path}: OK"),
            Err(e) => {
                println!("{path}: FAIL: {e}");
                failed = true;
            }
        }
    }
    for path in &traces {
        match check_trace_doc(path) {
            Ok(()) => println!("{path}: OK (trace)"),
            Err(e) => {
                println!("{path}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
