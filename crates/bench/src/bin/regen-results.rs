//! Regenerate every committed results artifact in one go:
//! `results/*.txt` and the `BENCH_*.json` regression baselines.
//!
//! ```text
//! cargo run --release --bin regen-results [-- --check]
//! ```
//!
//! Runs the figure/table binaries in sequence at the default committed
//! scales (honouring `ARKFS_BENCH_FILES` / `ARKFS_BENCH_PROCS` /
//! `ARKFS_BENCH_FULL` like the binaries themselves). Prefers sibling
//! binaries from the same build; falls back to `cargo run` when a
//! binary is missing from the target directory.
//!
//! With `--check`, after regenerating, fail if any committed artifact
//! drifted from what the binaries now produce (`git diff --exit-code`).
//! The engine-driven benches are virtual-time deterministic (verified
//! by back-to-back runs), so a diff means code changed benchmark
//! behaviour without `regen-results` being re-run. `fig7` is included
//! since the discrete-event engine replaced its threaded setup.
//! Excluded from the check, having real run-to-run variance:
//! `ablations.txt` (wall-clock lock-striping section) and `table2.txt`
//! (tar workloads still race OS threads on shared virtual resources,
//! so reservation order varies with the scheduler).

use std::path::PathBuf;
use std::process::Command;

const BINS: &[&str] = &[
    "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2", "ablate",
];

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().map(PathBuf::from).unwrap_or_default();
    let mut failed: Vec<&str> = Vec::new();
    for name in BINS {
        eprintln!("regen-results: running {name}");
        let sibling = dir.join(name);
        let status = if sibling.is_file() {
            Command::new(&sibling).status()
        } else {
            Command::new("cargo")
                .args(["run", "--release", "--quiet", "--bin", name])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("regen-results: {name} exited with {s}");
                failed.push(name);
            }
            Err(e) => {
                eprintln!("regen-results: {name} failed to start: {e}");
                failed.push(name);
            }
        }
    }
    if !failed.is_empty() {
        eprintln!("regen-results: FAILED: {}", failed.join(", "));
        std::process::exit(1);
    }
    eprintln!("regen-results: all {} binaries succeeded", BINS.len());
    if check {
        let status = Command::new("git")
            .args([
                "diff",
                "--exit-code",
                "--",
                "BENCH_*.json",
                "results",
                ":(exclude)results/ablations.txt",
                ":(exclude)results/table2.txt",
            ])
            .status()
            .expect("git diff");
        if !status.success() {
            eprintln!(
                "regen-results: committed artifacts drifted from regenerated \
                 output (see diff above); re-run regen-results and commit"
            );
            std::process::exit(1);
        }
        eprintln!("regen-results: committed artifacts match regenerated output");
    }
}
