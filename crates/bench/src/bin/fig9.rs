//! Figure 9 — event-engine scaling curve: CREATE throughput and
//! ack/durable tail latency vs client count, 64 → 16384 simulated
//! clients multiplexed on ONE host thread by the discrete-event engine,
//! with Zipf-skewed directory popularity (s = 0.9 over 256 directories
//! — a handful of hot directories absorb most of the small-file storm).
//!
//! Strong scaling: the total file count is fixed, so the curve shows
//! where adding clients stops buying throughput. Expected shape: ops/s
//! climbs while the metadata service has headroom, then hits a knee —
//! a throughput plateau and/or an ack-p99 inflection — as the hot
//! directories' leaders saturate. The per-point lease and commit-lane
//! telemetry (redirects, retries, journal flights, partition splits)
//! identifies which resource saturates at the knee.
//!
//! Scale knobs: `ARKFS_BENCH_FILES` (total creates per point),
//! `ARKFS_BENCH_CLIENTS` (cap on the largest client count; CI uses
//! 1024 to keep the job short — the committed baseline runs the full
//! curve to 16384).

use arkfs::{ArkCluster, ArkConfig};
use arkfs_bench::{bench_files, kops, print_table, save_bench_json, save_results, BenchRecord};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::ThroughputMeter;
use arkfs_telemetry::critpath;
use arkfs_vfs::{Credentials, Vfs};
use arkfs_workloads::client::barrier;
use arkfs_workloads::{gen_iter, run_ops, Drive, Op, OpGen, SimClient, Zipf};
use std::sync::Arc;
use std::time::Instant;

const DIRS: usize = 256;
const ZIPF_S: f64 = 0.9;
const SEED: u64 = 0xF19;
/// Head-based sampling period for the causal tracer: every 64th op per
/// client is traced end to end. Deterministic (a modulus on the
/// per-client op sequence), and tracing never advances virtual time,
/// so the committed figures are byte-identical with or without it.
const SAMPLE_EVERY: u64 = 64;

/// One point of the scaling curve.
struct Point {
    clients: usize,
    ops_s: f64,
    ack_p50: u64,
    ack_p99: u64,
    ack_max: u64,
    durable_p50: u64,
    durable_p99: u64,
    lease_acquires: u64,
    lease_retries: u64,
    lease_redirects: u64,
    journal_flights: u64,
    partition_splits: u64,
    /// Mean critical-path nanoseconds per segment of the sampled
    /// create traces, indexed by [`critpath::SEGMENTS`].
    cp_segs: [f64; critpath::SEGMENTS.len()],
    /// Mean end-to-end ack latency of the sampled traces (the segments
    /// sum to this exactly, by construction of the sweep).
    cp_total: f64,
}

fn run_point(n_clients: usize, files_total: u64) -> Point {
    let ctx = Credentials::root();
    let config = ArkConfig::default();
    let store_cfg = ClusterConfig::rados(config.spec.clone()).with_discard_payload(true);
    let cluster = ArkCluster::new(config, Arc::new(ObjectCluster::new(store_cfg)));
    // Deterministic sampled causal tracing: the knee attribution below
    // reads real span data instead of guessing from counters.
    cluster.telemetry().tracer.set_sample_every(SAMPLE_EVERY);
    cluster.telemetry().tracer.set_enabled(true);

    // Admin creates the directory pool, then hands every lease back so
    // leadership lands on the writers that first touch each directory.
    let admin = cluster.client();
    admin.mkdir(&ctx, "/zipf", 0o755).unwrap();
    for d in 0..DIRS {
        admin.mkdir(&ctx, &format!("/zipf/d{d}"), 0o755).unwrap();
    }
    admin.sync_all(&ctx).unwrap();
    admin.release_all(&ctx).unwrap();

    let clients: Vec<Arc<dyn SimClient>> = (0..n_clients)
        .map(|_| cluster.client() as Arc<dyn SimClient>)
        .collect();
    let per_client = (files_total / n_clients as u64).max(1);
    let gens: Vec<Box<dyn OpGen>> = (0..n_clients)
        .map(|i| {
            let mut zipf = Zipf::new(DIRS, ZIPF_S, SEED ^ (i as u64).wrapping_mul(0x9E37));
            gen_iter((0..per_client).map(move |j| Op::Create {
                path: format!("/zipf/d{}/c{i}-f{j}", zipf.sample()),
            }))
        })
        .collect();

    let meter = ThroughputMeter::new();
    let starts: Vec<u64> = clients.iter().map(|c| c.port().now()).collect();
    let host_t0 = Instant::now();
    let report = run_ops(&clients, gens, Drive::Engine, Some(&meter));
    let host_secs = host_t0.elapsed().as_secs_f64();
    assert_eq!(report.total_errors(), 0, "zipf creates failed");
    for (i, c) in clients.iter().enumerate() {
        let _ = c.sync_all(&ctx);
        meter.record_span(per_client, starts[i], c.port().now());
    }
    barrier(&clients);
    let phase = meter.finish("create");

    let tel = cluster.telemetry();
    let counter = |name: &str| tel.registry.counter(name).get();
    let durable = tel.registry.histogram("op.create.durable_ns").snapshot();
    eprintln!(
        "fig9: {n_clients} clients: {} kops/s virtual, {} creates in {host_secs:.1}s host \
         ({:.0} steps/s on one thread)",
        kops(phase.ops_per_sec()),
        phase.ops,
        phase.ops as f64 / host_secs.max(1e-9),
    );
    // Critical-path attribution of the sampled create traces.
    let aggs = critpath::aggregate(&tel.tracer.events());
    let (cp_segs, cp_total) = match aggs.get("op.create") {
        Some(a) => {
            let mut segs = [0.0f64; critpath::SEGMENTS.len()];
            for (i, s) in segs.iter_mut().enumerate() {
                *s = a.mean_seg(i);
            }
            (segs, a.mean_total())
        }
        None => ([0.0; critpath::SEGMENTS.len()], 0.0),
    };
    Point {
        clients: n_clients,
        ops_s: phase.ops_per_sec(),
        ack_p50: phase.latency_p50,
        ack_p99: phase.latency_p99,
        ack_max: phase.latency_max,
        durable_p50: durable.quantile(0.5),
        durable_p99: durable.quantile(0.99),
        lease_acquires: counter("lease.acquire.count"),
        lease_retries: counter("lease.retry.count"),
        lease_redirects: counter("lease.redirect.count"),
        journal_flights: counter("journal.flight.count"),
        partition_splits: counter("meta.partition.split.count"),
        cp_segs,
        cp_total,
    }
}

/// First index k where the curve knees between point k and k+1: the
/// ack p99 inflects (>= 1.3x) or throughput stops growing (< 1.10x).
fn knee_index(points: &[Point]) -> Option<usize> {
    points.windows(2).position(|w| {
        let p99_ratio = w[1].ack_p99 as f64 / (w[0].ack_p99 as f64).max(1.0);
        let tput_ratio = w[1].ops_s / w[0].ops_s.max(f64::MIN_POSITIVE);
        p99_ratio >= 1.3 || tput_ratio < 1.10
    })
}

/// Which pipeline segment saturated at the knee: the critical-path
/// segment whose *share* of the mean ack latency grew the most from
/// the pre-knee point to the post-knee point. Attribution comes from
/// real sampled span graphs, not counter heuristics — a segment can
/// only win here if traced ops actually spent more of their ack time
/// in it.
fn saturated_segment(pre: &Point, post: &Point) -> (&'static str, f64) {
    let share = |p: &Point, i: usize| {
        if p.cp_total > 0.0 {
            p.cp_segs[i] / p.cp_total
        } else {
            0.0
        }
    };
    let mut best = (critpath::SEGMENTS[0], f64::NEG_INFINITY);
    for (i, seg) in critpath::SEGMENTS.iter().enumerate() {
        let delta = share(post, i) - share(pre, i);
        if delta > best.1 {
            best = (seg, delta);
        }
    }
    best
}

fn main() {
    let files_total = bench_files(131_072);
    let cap: usize = std::env::var("ARKFS_BENCH_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_384);
    let scales: Vec<usize> = [64usize, 256, 1024, 4096, 16_384]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    assert!(!scales.is_empty(), "ARKFS_BENCH_CLIENTS below 64");

    let points: Vec<Point> = scales.iter().map(|&n| run_point(n, files_total)).collect();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for p in &points {
        rows.push(vec![
            p.clients.to_string(),
            kops(p.ops_s),
            p.ack_p99.to_string(),
            p.durable_p99.to_string(),
            p.lease_redirects.to_string(),
            p.journal_flights.to_string(),
            p.partition_splits.to_string(),
        ]);
        let mut metrics = vec![
            ("clients".to_string(), p.clients as f64),
            ("create_ops_s".to_string(), p.ops_s),
            ("create_p50_ns".to_string(), p.ack_p50 as f64),
            ("create_p99_ns".to_string(), p.ack_p99 as f64),
            ("create_max_ns".to_string(), p.ack_max as f64),
            ("create_ack_p50_ns".to_string(), p.ack_p50 as f64),
            ("create_ack_p99_ns".to_string(), p.ack_p99 as f64),
            ("create_durable_p50_ns".to_string(), p.durable_p50 as f64),
            ("create_durable_p99_ns".to_string(), p.durable_p99 as f64),
            ("lease_acquires".to_string(), p.lease_acquires as f64),
            ("lease_retries".to_string(), p.lease_retries as f64),
            ("lease_redirects".to_string(), p.lease_redirects as f64),
            ("journal_flights".to_string(), p.journal_flights as f64),
            ("partition_splits".to_string(), p.partition_splits as f64),
        ];
        for (i, seg) in critpath::SEGMENTS.iter().enumerate() {
            metrics.push((format!("create_cp_{seg}_ns"), p.cp_segs[i]));
        }
        metrics.push(("create_cp_total_ns".to_string(), p.cp_total));
        records.push(BenchRecord {
            group: "zipf-create".to_string(),
            system: format!("ArkFS-C{}", p.clients),
            metrics,
        });
    }
    let mut lines = print_table(
        &format!(
            "Figure 9: Zipf(s={ZIPF_S}) create scaling over {DIRS} dirs \
             ({files_total} files total, event engine, one host thread)"
        ),
        &[
            "clients",
            "CREATE kops/s",
            "ack p99 ns",
            "durable p99 ns",
            "lease redirects",
            "journal flights",
            "partition splits",
        ],
        &rows,
    );

    let knee = knee_index(&points);
    if let Some(k) = knee {
        let (segment, delta) = saturated_segment(&points[k], &points[k + 1]);
        let knee_line = format!(
            "knee between {} and {} clients: ack p99 {} -> {} ns, \
             {:.2} kops/s -> {:.2} kops/s; critical path shifted into: \
             {segment} (+{:.1} pp of mean ack latency)",
            points[k].clients,
            points[k + 1].clients,
            points[k].ack_p99,
            points[k + 1].ack_p99,
            points[k].ops_s / 1000.0,
            points[k + 1].ops_s / 1000.0,
            delta * 100.0,
        );
        println!("{knee_line}");
        lines.push(knee_line);
        // Per-point breakdown under the table, from the same span data.
        for p in &points {
            let mut parts = Vec::new();
            for (i, seg) in critpath::SEGMENTS.iter().enumerate() {
                let share = if p.cp_total > 0.0 {
                    100.0 * p.cp_segs[i] / p.cp_total
                } else {
                    0.0
                };
                parts.push(format!("{seg} {share:.1}%"));
            }
            let line = format!(
                "critpath @{} clients (mean ack {:.0} ns): {}",
                p.clients,
                p.cp_total,
                parts.join(", ")
            );
            println!("{line}");
            lines.push(line);
        }
    }
    save_results("fig9", &lines);
    save_bench_json(
        "fig9",
        &[
            ("files", files_total as f64),
            ("dirs", DIRS as f64),
            ("zipf_s", ZIPF_S),
            ("seed", SEED as f64),
        ],
        &records,
    );
    // Acceptance (full curve only; CI caps the client count and skips
    // this): the curve must show a measurable knee.
    if scales.last() == Some(&16_384) || *scales.last().unwrap() >= 4096 {
        assert!(
            knee.is_some(),
            "acceptance: no knee found — neither an ack-p99 inflection (>=1.3x) \
             nor a throughput plateau (<1.10x growth) between consecutive scales"
        );
    }
}
