//! Figure 6 — "Large File I/O Bandwidth": sequential WRITE then READ
//! with 128 KB requests.
//!
//! (a) RADOS backend: ArkFS ≈ CephFS-K on WRITE and READ; CephFS-F READ
//!     trails (128 KB max read-ahead).
//! (b) S3 backend: ArkFS ~5.95× S3FS WRITE and ~3.59× S3FS READ; goofys
//!     READ far ahead of ArkFS-ra8MB; ArkFS-ra400MB ≈ goofys.
//!
//! File sizes are scaled from the paper's 32 GB/process; the virtual-time
//! model preserves bandwidth ratios.

use arkfs::ArkConfig;
use arkfs_baselines::MountType;
use arkfs_bench::{
    ark_fleet, ark_fleet_s3, bench_procs, ceph_fleet, enable_tracing, goofys_fleet,
    phase_latency_metrics, print_table, s3fs_fleet, save_bench_json, save_results, trace_path,
    write_chrome_trace, BenchRecord, System,
};
use arkfs_workloads::fio::{fio, FioConfig};

fn run(systems: &[System], cfg: &FioConfig, title: &str, out: &str) -> Vec<BenchRecord> {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for system in systems {
        let result = fio(&system.clients, cfg).expect("fio");
        rows.push(vec![
            system.name.clone(),
            format!("{:.0}", result.write_mib_s()),
            format!("{:.0}", result.read_mib_s()),
        ]);
        let mut metrics = vec![
            ("write_mib_s".to_string(), result.write_mib_s()),
            ("read_mib_s".to_string(), result.read_mib_s()),
        ];
        metrics.extend(phase_latency_metrics(&result.write));
        metrics.extend(phase_latency_metrics(&result.read));
        records.push(BenchRecord {
            group: out.to_string(),
            system: system.name.clone(),
            metrics,
        });
        eprintln!("fig6: {} done", system.name);
    }
    let lines = print_table(title, &["system", "WRITE MiB/s", "READ MiB/s"], &rows);
    save_results(out, &lines);
    records
}

#[allow(clippy::field_reassign_with_default)]
fn main() {
    let procs = bench_procs(8);
    let chunk = 512 * 1024;
    let full = std::env::var("ARKFS_BENCH_FULL").is_ok();
    let file_size: u64 = if full {
        2 * 1024 * 1024 * 1024
    } else {
        64 * 1024 * 1024
    };
    let cfg = FioConfig {
        file_size,
        request_size: 128 * 1024,
        ..Default::default()
    };
    let trace = trace_path();

    // (a) RADOS backend.
    let mut ark_cfg = ArkConfig::default();
    ark_cfg.chunk_size = chunk;
    ark_cfg.cache_entries = 256;
    let systems_a = vec![
        ark_fleet(procs, ark_cfg, true),
        ceph_fleet(procs, 1, MountType::Kernel, chunk, true),
        ceph_fleet(procs, 1, MountType::Fuse, chunk, true),
    ];
    if trace.is_some() {
        enable_tracing(&systems_a.iter().collect::<Vec<_>>());
    }
    let mut records = run(
        &systems_a,
        &cfg,
        &format!(
            "Figure 6(a): large-file bandwidth on RADOS ({procs} procs, {} MiB files)",
            file_size / (1024 * 1024)
        ),
        "fig6a",
    );

    // (b) S3 backend.
    let systems_b = vec![
        ark_fleet_s3(procs, 8 * 1024 * 1024, chunk, true),
        ark_fleet_s3(procs, 400 * 1024 * 1024, chunk, true),
        s3fs_fleet(procs, chunk, true),
        goofys_fleet(procs, chunk, 400 * 1024 * 1024, true),
    ];
    if trace.is_some() {
        enable_tracing(&systems_b.iter().collect::<Vec<_>>());
    }
    records.extend(run(
        &systems_b,
        &cfg,
        &format!(
            "Figure 6(b): large-file bandwidth on S3 ({procs} procs, {} MiB files)",
            file_size / (1024 * 1024)
        ),
        "fig6b",
    ));
    save_bench_json(
        "fig6",
        &[
            ("procs", procs as f64),
            ("file_size", file_size as f64),
            ("request_size", cfg.request_size as f64),
        ],
        &records,
    );
    if let Some(path) = trace {
        let refs: Vec<&System> = systems_a.iter().chain(systems_b.iter()).collect();
        write_chrome_trace(&path, &refs);
    }
}
