//! Figure 5 — "Throughput of mdtest-hard": WRITE / STAT / READ / DELETE
//! of 3901-byte files across a shared directory pool.
//!
//! Expected shape (paper): ArkFS ahead everywhere but by less than in
//! mdtest-easy (shared dirs + small data I/O); up to 4.65× in READ;
//! MarFS errors out of the READ phase; CephFS-K 16 MDS ≈ 1 MDS with a
//! DELETE regression.

use arkfs::ArkConfig;
use arkfs_baselines::MountType;
use arkfs_bench::{
    ark_fleet, bench_files, bench_procs, ceph_fleet, enable_tracing, kops, marfs_fleet,
    phase_latency_metrics, print_table, save_bench_json, save_results, trace_path,
    write_chrome_trace, BenchRecord, System,
};
use arkfs_workloads::mdtest::{mdtest_hard, MdtestHardConfig};

fn main() {
    let procs = bench_procs(16);
    let files = bench_files(50_000);
    let chunk = 64 * 1024;
    let trace = trace_path();
    let systems: Vec<System> = vec![
        ark_fleet(procs, ArkConfig::default(), true),
        ceph_fleet(procs, 1, MountType::Fuse, chunk, true),
        ceph_fleet(procs, 1, MountType::Kernel, chunk, true),
        ceph_fleet(procs, 16, MountType::Kernel, chunk, true),
        marfs_fleet(procs, chunk),
    ];
    let refs: Vec<&System> = systems.iter().collect();
    if trace.is_some() {
        enable_tracing(&refs);
    }
    let cfg = MdtestHardConfig {
        files_total: files,
        dirs: 16,
        file_size: 3901,
        seed: 42,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for system in &systems {
        let result = mdtest_hard(&system.clients, &cfg).expect("mdtest-hard");
        let get = |name: &str| result.phase(name).map(|p| p.ops_per_sec()).unwrap_or(0.0);
        let read_cell = if result.errors[2] > 0 {
            format!("ERR({})", result.errors[2])
        } else {
            kops(get("read"))
        };
        rows.push(vec![
            system.name.clone(),
            kops(get("write")),
            kops(get("stat")),
            read_cell,
            kops(get("delete")),
        ]);
        let mut metrics = vec![
            ("write_ops_s".to_string(), get("write")),
            ("stat_ops_s".to_string(), get("stat")),
            ("read_ops_s".to_string(), get("read")),
            ("delete_ops_s".to_string(), get("delete")),
            ("read_errors".to_string(), result.errors[2] as f64),
        ];
        for phase in &result.phases {
            metrics.extend(phase_latency_metrics(phase));
        }
        records.push(BenchRecord {
            group: "mdtest-hard".to_string(),
            system: system.name.clone(),
            metrics,
        });
        eprintln!("fig5: {} done", system.name);
    }
    let lines = print_table(
        &format!("Figure 5: mdtest-hard throughput (kops/s, {files} files, {procs} procs)"),
        &["system", "WRITE", "STAT", "READ", "DELETE"],
        &rows,
    );
    save_results("fig5", &lines);
    save_bench_json(
        "fig5",
        &[
            ("files", files as f64),
            ("procs", procs as f64),
            ("file_size", 3901.0),
        ],
        &records,
    );
    if let Some(path) = trace {
        write_chrome_trace(&path, &refs);
    }
}
