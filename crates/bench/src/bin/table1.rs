//! Table I — "System configurations of public cloud cluster node".
//!
//! The AWS instances reduce to the simulation's cost-model constants;
//! this binary prints them next to the paper's hardware figures.

use arkfs_bench::{print_table, save_results};
use arkfs_simkit::ClusterSpec;

fn main() {
    let spec = ClusterSpec::aws_paper();
    let rows: Vec<Vec<String>> = spec
        .rows()
        .into_iter()
        .map(|(k, v)| vec![k.to_string(), v])
        .collect();
    let mut lines = print_table(
        "Table I (simulated): cost-model constants standing in for the AWS testbed",
        &["parameter", "value"],
        &rows,
    );
    let paper = vec![
        vec![
            "instances".to_string(),
            "c5a.8xlarge clients / c5n.9xlarge storage".to_string(),
        ],
        vec!["vCPU".to_string(), "32 / 36".to_string()],
        vec!["memory".to_string(), "64 GB / 96 GB DDR4".to_string()],
        vec!["network".to_string(), "10 Gbit / 50 Gbit".to_string()],
        vec!["disk".to_string(), "EBS 32 GB / EBS 128 GB x 4".to_string()],
        vec!["storage nodes".to_string(), "16 (64 OSDs)".to_string()],
    ];
    lines.extend(print_table(
        "Table I (paper): AWS configuration",
        &["item", "value"],
        &paper,
    ));
    save_results("table1", &lines);
}
