//! Ablation studies of ArkFS design choices (§III), in virtual time:
//!
//! * compound-transaction buffering window (1 s vs commit-per-op),
//! * commit pipeline (async ack-at-seal vs sync ack-at-durable),
//! * group commit across co-laned directories (grouped vs per-dir
//!   sealing, journal flights and txns-per-flight),
//! * read-ahead policy (none / doubling / immediate-max-at-zero),
//! * permission caching (also Figure 7, measured here at small scale),
//! * dentry bucket count (dirty-bucket write amplification),
//! * lease period (extension traffic vs takeover latency).

use arkfs::ArkConfig;
use arkfs_bench::{ark_fleet, bench_files, print_table, save_results};
use arkfs_simkit::{MSEC, SEC};
use arkfs_vfs::OpenFlags;
use arkfs_workloads::mdtest::{fanned_dir_create, mdtest_easy, MdtestEasyConfig};
use arkfs_workloads::SimClient;
use std::sync::Arc;

fn create_throughput(config: ArkConfig, procs: usize, files: u64) -> f64 {
    let system = ark_fleet(procs, config, true);
    let cfg = MdtestEasyConfig {
        files_total: files,
        create_only: true,
        ..Default::default()
    };
    mdtest_easy(&system.clients, &cfg).expect("mdtest").phases[0].ops_per_sec()
}

/// Sequential read bandwidth (MiB/s) for a given read-ahead policy.
#[allow(clippy::field_reassign_with_default)]
fn read_bandwidth(max_readahead: u64, full_at_zero: bool) -> f64 {
    let mut config = ArkConfig::default();
    config.chunk_size = 512 * 1024;
    config.cache_entries = 256;
    config.max_readahead = max_readahead;
    config.readahead_full_at_zero = full_at_zero;
    let system = ark_fleet(4, config, true);
    let ctx = arkfs_vfs::Credentials::root();
    let c: &Arc<dyn SimClient> = &system.clients[0];
    let size: u64 = 64 * 1024 * 1024;
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    let fh = c.create(&ctx, "/d/f", 0o644).unwrap();
    let block = vec![0u8; 1024 * 1024];
    let mut off = 0;
    while off < size {
        c.write(&ctx, fh, off, &block).unwrap();
        off += block.len() as u64;
    }
    c.fsync(&ctx, fh).unwrap();
    c.close(&ctx, fh).unwrap();
    c.drop_caches();
    let t0 = c.port().now();
    let fh = c.open(&ctx, "/d/f", OpenFlags::RDONLY).unwrap();
    let mut buf = vec![0u8; 128 * 1024];
    let mut off = 0;
    while off < size {
        let n = c.read(&ctx, fh, off, &mut buf).unwrap();
        off += n as u64;
    }
    c.close(&ctx, fh).unwrap();
    let dt = (c.port().now() - t0) as f64 / 1e9;
    size as f64 / (1024.0 * 1024.0) / dt
}

#[allow(clippy::field_reassign_with_default)]
fn main() {
    let procs = 16;
    let files = bench_files(20_000);
    let mut lines = Vec::new();

    // 1. Compound-transaction buffering (§III-E: "buffering journal
    //    entries in an in-memory transaction for 1 second").
    let rows: Vec<Vec<String>> = [
        ("1s window (paper)", ArkConfig::default()),
        (
            "100ms window",
            ArkConfig::default().with_journal_window(100 * MSEC),
        ),
        ("commit per op", ArkConfig::default().with_journal_window(0)),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        vec![
            name.to_string(),
            format!("{:.1}", create_throughput(cfg, procs, files) / 1000.0),
        ]
    })
    .collect();
    lines.extend(print_table(
        "Ablation: compound-transaction window (create kops/s)",
        &["window", "kops/s"],
        &rows,
    ));

    // 1b. Commit pipeline: async acks at seal, sync acks at durable.
    //     Same create workload; the async rows also split latency into
    //     ack (exact phase percentile — the return to the caller) vs
    //     durable (`op.create.durable_ns`, stamped when the sealed
    //     batch lands on the object store). Sync mode has no separate
    //     ack: the caller waits out the forced commit.
    let rows: Vec<Vec<String>> = [
        ("async (pipeline)", ArkConfig::default()),
        (
            "sync (ack at durable)",
            ArkConfig::default().with_commit_mode(arkfs::CommitMode::Sync),
        ),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        let system = ark_fleet(procs, cfg, true);
        let wl = MdtestEasyConfig {
            files_total: files,
            create_only: true,
            ..Default::default()
        };
        let result = mdtest_easy(&system.clients, &wl).expect("mdtest");
        let phase = &result.phases[0];
        let durable = system.clients[0]
            .telemetry()
            .map(|t| t.registry.histogram("op.create.durable_ns").snapshot())
            .filter(|h| h.count() > 0);
        vec![
            name.to_string(),
            format!("{:.1}", phase.ops_per_sec() / 1000.0),
            phase.latency_p50.to_string(),
            durable.map_or_else(|| "-".to_string(), |h| h.quantile(0.5).to_string()),
        ]
    })
    .collect();
    lines.extend(print_table(
        "Ablation: commit pipeline (create kops/s, ack vs durable p50 ns)",
        &["mode", "kops/s", "ack p50", "durable p50"],
        &rows,
    ));

    // 1c. Group commit across co-laned directories: 64 clients create
    //     round-robin into 8 directories each, so every client's 8 led
    //     journals share its 4 commit lanes. Grouped sealing carries
    //     every co-laned directory's due transactions in one batched
    //     multi-PUT per lane flight; per-dir sealing pays one store
    //     round trip per sealed transaction. `journal.flight.count` /
    //     `journal.flight.txns` count exactly the append flights and
    //     the transactions they carry (checkpoint batches are excluded
    //     by construction), so txns-per-flight reads the amortization
    //     directly. A 10 ms commit window makes window-triggered seals
    //     the dominant flight source (the default 100 ms fires about
    //     once per directory in a run this short).
    let rows: Vec<Vec<String>> = [
        (
            "grouped (default)",
            ArkConfig::default().with_async_commit(10 * MSEC, 8),
        ),
        (
            "per-dir sealing",
            ArkConfig::default()
                .with_async_commit(10 * MSEC, 8)
                .with_group_commit(false),
        ),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        let system = ark_fleet(64, cfg, true);
        let result = fanned_dir_create(&system.clients, 8, 64 * 500).expect("fanned create");
        let phase = &result.phases[0];
        let tel = system.clients[0].telemetry().expect("telemetry");
        let durable = tel.registry.histogram("op.create.durable_ns").snapshot();
        let flights = tel.registry.counter("journal.flight.count").get();
        let txns = tel.registry.counter("journal.flight.txns").get();
        vec![
            name.to_string(),
            format!("{:.1}", phase.ops_per_sec() / 1000.0),
            durable.quantile(0.5).to_string(),
            flights.to_string(),
            format!("{:.2}", txns as f64 / flights.max(1) as f64),
        ]
    })
    .collect();
    lines.extend(print_table(
        "Ablation: group commit across co-laned dirs at 64 clients",
        &[
            "mode",
            "kops/s",
            "durable p50 ns",
            "journal flights",
            "txns/flight",
        ],
        &rows,
    ));

    // 2. Permission cache (§III-C, near-root hotspot) at 64 clients.
    let rows: Vec<Vec<String>> = [
        ("pcache on", ArkConfig::default()),
        (
            "pcache off",
            ArkConfig::default().with_permission_cache(false),
        ),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        vec![
            name.to_string(),
            format!("{:.1}", create_throughput(cfg, 64, 64 * 500) / 1000.0),
        ]
    })
    .collect();
    lines.extend(print_table(
        "Ablation: permission caching at 64 clients (create kops/s)",
        &["mode", "kops/s"],
        &rows,
    ));

    // 3. Dentry bucket count (dirty-bucket write amplification on
    //    checkpoint; more buckets = smaller rewrites).
    let rows: Vec<Vec<String>> = [1u64, 4, 16, 64]
        .into_iter()
        .map(|buckets| {
            let mut cfg = ArkConfig::default();
            cfg.dentry_buckets = buckets;
            vec![
                buckets.to_string(),
                format!("{:.1}", create_throughput(cfg, procs, files) / 1000.0),
            ]
        })
        .collect();
    lines.extend(print_table(
        "Ablation: dentry buckets per directory (create kops/s)",
        &["buckets", "kops/s"],
        &rows,
    ));

    // 4. Read-ahead policy (§III-D).
    let rows: Vec<Vec<String>> = [
        ("no read-ahead", 0u64, false),
        ("doubling to 8MB", 8 * 1024 * 1024, false),
        ("8MB + max-at-zero (paper)", 8 * 1024 * 1024, true),
    ]
    .into_iter()
    .map(|(name, ra, fz)| vec![name.to_string(), format!("{:.0}", read_bandwidth(ra, fz))])
    .collect();
    lines.extend(print_table(
        "Ablation: read-ahead policy (sequential read MiB/s, 1 client)",
        &["policy", "MiB/s"],
        &rows,
    ));

    // 5. Lease period: shorter periods mean more manager traffic.
    let rows: Vec<Vec<String>> = [SEC / 2, SEC, 5 * SEC, 30 * SEC]
        .into_iter()
        .map(|period| {
            let cfg = ArkConfig::default().with_lease_period(period, period);
            vec![
                format!("{:.1}s", period as f64 / 1e9),
                format!("{:.1}", create_throughput(cfg, procs, files) / 1000.0),
            ]
        })
        .collect();
    lines.extend(print_table(
        "Ablation: lease period (create kops/s)",
        &["period", "kops/s"],
        &rows,
    ));

    // 6. Unified telemetry: one deployment runs the cached data path
    //    (16 MiB write + cold read), then 64 creates, a clean lease
    //    hand-back, and a leader takeover by a second client. Every
    //    counter and latency histogram the stack recorded — cache,
    //    store, meta, journal, lease, and per-op — comes out of a
    //    single sorted `Registry::snapshot()`.
    {
        use arkfs::ArkCluster;
        use arkfs_objstore::{ClusterConfig, ObjectCluster};
        use arkfs_telemetry::MetricValue;
        use arkfs_vfs::Vfs;
        let mut config = ArkConfig::default();
        config.chunk_size = 512 * 1024;
        config.cache_entries = 256;
        let store_cfg = ClusterConfig::rados(config.spec.clone());
        let store = Arc::new(ObjectCluster::new(store_cfg));
        let cluster = ArkCluster::new(config, store);
        let trace = arkfs_bench::trace_path();
        if trace.is_some() {
            cluster.telemetry().tracer.set_enabled(true);
        }
        let writer = cluster.client();
        let reader = cluster.client();
        let ctx = arkfs_vfs::Credentials::root();

        // Data path: write 16 MiB, drop the cache, read it back cold.
        let size: u64 = 16 * 1024 * 1024;
        writer.mkdir(&ctx, "/d", 0o755).unwrap();
        let fh = writer.create(&ctx, "/d/f", 0o644).unwrap();
        let block = vec![0u8; 1024 * 1024];
        let mut off = 0;
        while off < size {
            writer.write(&ctx, fh, off, &block).unwrap();
            off += block.len() as u64;
        }
        writer.fsync(&ctx, fh).unwrap();
        writer.drop_data_cache().unwrap();
        let mut buf = vec![0u8; 128 * 1024];
        let mut off = 0;
        while off < size {
            let n = writer.read(&ctx, fh, off, &mut buf).unwrap();
            off += n as u64;
        }
        writer.close(&ctx, fh).unwrap();

        // Metadata path: 64 creates, then hand the lease back so the
        // reader's first stat is an uncached leader takeover
        // (batched Metatable::load from the store).
        writer.mkdir(&ctx, "/meta", 0o755).unwrap();
        for i in 0..64 {
            let fh = writer.create(&ctx, &format!("/meta/f{i}"), 0o644).unwrap();
            writer.close(&ctx, fh).unwrap();
        }
        writer.release_all(&ctx).unwrap();
        for i in 0..64 {
            reader.stat(&ctx, &format!("/meta/f{i}")).unwrap();
        }

        // Fold the observability-layer loss counters and the client's
        // lock-contention counters into the registry so the snapshot
        // below is the one uniform view of everything the stack
        // recorded. Lock contended/blocked_ns are host wall-clock
        // (nondeterministic), which is fine here: the ablation report
        // is exempt from the byte-identical drift check.
        cluster.telemetry().publish_ring_losses();
        writer.publish_lock_stats();

        let rows: Vec<Vec<String>> = cluster
            .telemetry()
            .registry
            .snapshot()
            .into_iter()
            .map(|(name, value)| {
                let rendered = match value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => v.to_string(),
                    MetricValue::Histogram(h) => format!(
                        "count={} p50={}ns p99={}ns max={}ns",
                        h.count(),
                        h.quantile(0.50),
                        h.quantile(0.99),
                        h.max()
                    ),
                };
                vec![name, rendered]
            })
            .collect();
        lines.extend(print_table(
            "Telemetry registry snapshot (data path + takeover workload)",
            &["metric", "value"],
            &rows,
        ));
        if let Some(path) = trace {
            // Critical-path attribution from the causal spans: for each
            // op family, how the mean ack latency splits across the
            // pipeline segments.
            use arkfs_telemetry::critpath;
            let events = cluster.telemetry().tracer.events();
            let cp_rows: Vec<Vec<String>> = critpath::aggregate(&events)
                .into_iter()
                .map(|(root, agg)| {
                    let mut row = vec![root, format!("{:.0}", agg.mean_total())];
                    row.extend(
                        (0..critpath::SEGMENTS.len())
                            .map(|i| format!("{:.1}%", agg.share(i) * 100.0)),
                    );
                    row
                })
                .collect();
            if !cp_rows.is_empty() {
                let mut headers = vec!["op", "mean ns"];
                headers.extend(critpath::SEGMENTS);
                lines.extend(print_table(
                    "Critical-path attribution (mean ack latency by segment)",
                    &headers,
                    &cp_rows,
                ));
            }
            match cluster
                .telemetry()
                .tracer
                .write_chrome_trace(std::path::Path::new(&path))
            {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }

    // 7a. Shared-client op/lock-acquisition counts, measured
    //     deterministically: the same 8-worker op mix multiplexed onto
    //     the ONE client by the discrete-event engine on one host
    //     thread. Wall-clock contention cannot show up here — the point
    //     is that the op count and the striped-lock acquisition count
    //     are exact, reproducible numbers, so a change in either is a
    //     code change, not scheduler noise. The wall-clock section below
    //     keeps measuring the real contention.
    {
        let rows: Vec<Vec<String>> = [("striped (16)", 16usize), ("global lock (1)", 1)]
            .into_iter()
            .map(|(name, stripes)| {
                let (ops, acquisitions) = shared_client_engine_counts(stripes);
                vec![name.to_string(), ops.to_string(), acquisitions.to_string()]
            })
            .collect();
        lines.extend(print_table(
            "Ablation: shared-client op/lock counts (event engine, deterministic)",
            &["mode", "ops", "striped lock acquisitions"],
            &rows,
        ));
    }

    // 7. Shared-client lock striping: 8 real OS threads hammer ONE
    //    ArkClient with mixed create/write/stat across 8 directories.
    //    Virtual time is oblivious to real-thread contention (the
    //    Timeline just advances), so this scenario is scored in
    //    *wall-clock* terms: ops/s, plus the contention diagnostics
    //    from `ArkClient::lock_stats()` — how many lock acquisitions
    //    found the lock held, and how long they blocked. `stripes = 1`
    //    collapses every table to one global lock (the pre-striping
    //    client this refactor replaced): a thread descheduled inside
    //    any critical section stalls every other thread, instead of
    //    only the ones needing the same stripe.
    {
        // Wall-clock timing is noisy (allocator/page-fault warm-up favors
        // whichever config runs first), so warm up once, then score each
        // config by its median ops/s of five runs; contention counters are
        // summed across the five runs. The "striped" columns cover the
        // three lock-striped families (dir table, pcache, handle shards);
        // the data-cache lock is a single lock in both configs and is
        // reported separately so it does not mask the striping effect.
        let _ = shared_client_run(16);
        let _ = shared_client_run(1);
        #[derive(Default)]
        struct Tally {
            rates: Vec<f64>,
            locks: u64,
            contended: u64,
            wait_ns: u64,
            cache_contended: u64,
        }
        let configs = [("striped (16)", 16usize), ("global lock (1)", 1)];
        let mut tallies = [Tally::default(), Tally::default()];
        // Interleave the runs so slow drift (thermal, background load)
        // hits both configs equally.
        for _ in 0..5 {
            for (t, &(_, stripes)) in tallies.iter_mut().zip(&configs) {
                let (ops_per_sec, s) = shared_client_run(stripes);
                let striped = s.striped();
                t.rates.push(ops_per_sec);
                t.locks = striped.acquisitions;
                t.contended += striped.contended;
                t.wait_ns += striped.wait_ns;
                t.cache_contended += s.data_cache.contended;
            }
        }
        let rows: Vec<Vec<String>> = configs
            .iter()
            .zip(&mut tallies)
            .map(|(&(name, _), t)| {
                t.rates.sort_by(|a, b| a.total_cmp(b));
                let median = t.rates[t.rates.len() / 2];
                vec![
                    name.to_string(),
                    format!("{:.1}", median / 1000.0),
                    t.locks.to_string(),
                    t.contended.to_string(),
                    format!("{:.0}", t.wait_ns as f64 / 1000.0),
                    t.cache_contended.to_string(),
                ]
            })
            .collect();
        lines.extend(print_table(
            "Ablation: shared-client lock striping (8 threads, wall-clock)",
            &[
                "mode",
                "kops/s",
                "striped locks",
                "striped contended",
                "striped wait µs",
                "cache contended",
            ],
            &rows,
        ));
    }

    save_results("ablations", &lines);
}

const SHARED_THREADS: usize = 8;
const SHARED_FILES: usize = 1000;
const SHARED_STATS_PER_FILE: usize = 8;

/// Build the one-client deployment and its per-worker directory tree
/// for the shared-client scenarios. Two path levels per worker: the
/// root directory's stripe is shared by every resolution no matter the
/// stripe count, so deeper paths shift lock traffic onto the per-worker
/// stripes where striping can actually spread it.
fn shared_client_setup(stripes: usize) -> Arc<arkfs::ArkClient> {
    use arkfs::ArkCluster;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use arkfs_vfs::{Credentials, Vfs};

    let config = ArkConfig::default().with_client_lock_stripes(stripes);
    let store_cfg = ClusterConfig::rados(config.spec.clone());
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let cluster = ArkCluster::new(config, store);
    let client = cluster.client();
    let ctx = Credentials::root();
    for i in 0..SHARED_THREADS {
        client.mkdir(&ctx, &format!("/d{i}"), 0o755).unwrap();
        for j in 0..4 {
            client.mkdir(&ctx, &format!("/d{i}/s{j}"), 0o755).unwrap();
        }
    }
    client
}

/// The shared-client op mix as engine-driven generators: 8 per-worker
/// op streams multiplexed onto ONE client. Returns (ops executed,
/// striped lock acquisitions) — both deterministic.
fn shared_client_engine_counts(stripes: usize) -> (u64, u64) {
    use arkfs_workloads::{gen_iter, run_ops, Drive, Op, OpGen};

    let client = shared_client_setup(stripes);
    let clients: Vec<Arc<dyn SimClient>> = (0..SHARED_THREADS)
        .map(|_| Arc::clone(&client) as Arc<dyn SimClient>)
        .collect();
    let gens: Vec<Box<dyn OpGen>> = (0..SHARED_THREADS)
        .map(|i| {
            gen_iter((0..SHARED_FILES).flat_map(move |k| {
                let path = format!("/d{i}/s{}/f{k}", k % 4);
                let mut ops = vec![
                    Op::OpenCreate { path: path.clone() },
                    Op::Write {
                        off: 0,
                        len: 4096,
                        fill: i as u8,
                    },
                    Op::Close,
                ];
                ops.extend((0..SHARED_STATS_PER_FILE).map(|_| Op::Stat { path: path.clone() }));
                ops.into_iter()
            }))
        })
        .collect();
    let report = run_ops(&clients, gens, Drive::Engine, None);
    assert_eq!(report.total_errors(), 0, "shared-client engine ops failed");
    (
        report.ops.iter().sum(),
        client.lock_stats().striped().acquisitions,
    )
}

/// One `ArkClient`, 8 real worker threads, mixed ops across 8 directories.
/// Returns wall-clock ops/s and the client's lock-acquisition counters.
fn shared_client_run(stripes: usize) -> (f64, arkfs::LockStats) {
    use arkfs_vfs::{Credentials, Vfs};
    use std::thread;
    use std::time::Instant;

    const THREADS: usize = SHARED_THREADS;
    const FILES: usize = SHARED_FILES;
    const STATS_PER_FILE: usize = SHARED_STATS_PER_FILE;
    const OPS_PER_FILE: u64 = 3 + STATS_PER_FILE as u64; // create, write, close, stats

    let client = shared_client_setup(stripes);

    let t0 = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let c = Arc::clone(&client);
            thread::spawn(move || {
                let ctx = Credentials::root();
                let payload = vec![i as u8; 4096];
                for k in 0..FILES {
                    let path = format!("/d{i}/s{}/f{k}", k % 4);
                    let fh = c.create(&ctx, &path, 0o644).unwrap();
                    c.write(&ctx, fh, 0, &payload).unwrap();
                    c.close(&ctx, fh).unwrap();
                    // Metadata-read heavy tail: stats resolve through the
                    // pcache + dir stripes, where striping matters most.
                    for _ in 0..STATS_PER_FILE {
                        assert_eq!(c.stat(&ctx, &path).unwrap().size, 4096);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("shared-client worker panicked");
    }
    let dt = t0.elapsed().as_secs_f64();

    let ops = (THREADS * FILES) as f64 * OPS_PER_FILE as f64;
    (ops / dt, client.lock_stats())
}
