//! Ablation studies of ArkFS design choices (§III), in virtual time:
//!
//! * compound-transaction buffering window (1 s vs commit-per-op),
//! * read-ahead policy (none / doubling / immediate-max-at-zero),
//! * permission caching (also Figure 7, measured here at small scale),
//! * dentry bucket count (dirty-bucket write amplification),
//! * lease period (extension traffic vs takeover latency).

use arkfs::ArkConfig;
use arkfs_bench::{ark_fleet, bench_files, print_table, save_results};
use arkfs_simkit::{MSEC, SEC};
use arkfs_vfs::OpenFlags;
use arkfs_workloads::mdtest::{mdtest_easy, MdtestEasyConfig};
use arkfs_workloads::SimClient;
use std::sync::Arc;

fn create_throughput(config: ArkConfig, procs: usize, files: u64) -> f64 {
    let system = ark_fleet(procs, config, true);
    let cfg = MdtestEasyConfig {
        files_total: files,
        create_only: true,
    };
    mdtest_easy(&system.clients, &cfg).expect("mdtest").phases[0].ops_per_sec()
}

/// Sequential read bandwidth (MiB/s) for a given read-ahead policy.
#[allow(clippy::field_reassign_with_default)]
fn read_bandwidth(max_readahead: u64, full_at_zero: bool) -> f64 {
    let mut config = ArkConfig::default();
    config.chunk_size = 512 * 1024;
    config.cache_entries = 256;
    config.max_readahead = max_readahead;
    config.readahead_full_at_zero = full_at_zero;
    let system = ark_fleet(4, config, true);
    let ctx = arkfs_vfs::Credentials::root();
    let c: &Arc<dyn SimClient> = &system.clients[0];
    let size: u64 = 64 * 1024 * 1024;
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    let fh = c.create(&ctx, "/d/f", 0o644).unwrap();
    let block = vec![0u8; 1024 * 1024];
    let mut off = 0;
    while off < size {
        c.write(&ctx, fh, off, &block).unwrap();
        off += block.len() as u64;
    }
    c.fsync(&ctx, fh).unwrap();
    c.close(&ctx, fh).unwrap();
    c.drop_caches();
    let t0 = c.port().now();
    let fh = c.open(&ctx, "/d/f", OpenFlags::RDONLY).unwrap();
    let mut buf = vec![0u8; 128 * 1024];
    let mut off = 0;
    while off < size {
        let n = c.read(&ctx, fh, off, &mut buf).unwrap();
        off += n as u64;
    }
    c.close(&ctx, fh).unwrap();
    let dt = (c.port().now() - t0) as f64 / 1e9;
    size as f64 / (1024.0 * 1024.0) / dt
}

#[allow(clippy::field_reassign_with_default)]
fn main() {
    let procs = 16;
    let files = bench_files(20_000);
    let mut lines = Vec::new();

    // 1. Compound-transaction buffering (§III-E: "buffering journal
    //    entries in an in-memory transaction for 1 second").
    let rows: Vec<Vec<String>> = [
        ("1s window (paper)", ArkConfig::default()),
        (
            "100ms window",
            ArkConfig::default().with_journal_window(100 * MSEC),
        ),
        ("commit per op", ArkConfig::default().with_journal_window(0)),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        vec![
            name.to_string(),
            format!("{:.1}", create_throughput(cfg, procs, files) / 1000.0),
        ]
    })
    .collect();
    lines.extend(print_table(
        "Ablation: compound-transaction window (create kops/s)",
        &["window", "kops/s"],
        &rows,
    ));

    // 2. Permission cache (§III-C, near-root hotspot) at 64 clients.
    let rows: Vec<Vec<String>> = [
        ("pcache on", ArkConfig::default()),
        (
            "pcache off",
            ArkConfig::default().with_permission_cache(false),
        ),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        vec![
            name.to_string(),
            format!("{:.1}", create_throughput(cfg, 64, 64 * 500) / 1000.0),
        ]
    })
    .collect();
    lines.extend(print_table(
        "Ablation: permission caching at 64 clients (create kops/s)",
        &["mode", "kops/s"],
        &rows,
    ));

    // 3. Dentry bucket count (dirty-bucket write amplification on
    //    checkpoint; more buckets = smaller rewrites).
    let rows: Vec<Vec<String>> = [1u64, 4, 16, 64]
        .into_iter()
        .map(|buckets| {
            let mut cfg = ArkConfig::default();
            cfg.dentry_buckets = buckets;
            vec![
                buckets.to_string(),
                format!("{:.1}", create_throughput(cfg, procs, files) / 1000.0),
            ]
        })
        .collect();
    lines.extend(print_table(
        "Ablation: dentry buckets per directory (create kops/s)",
        &["buckets", "kops/s"],
        &rows,
    ));

    // 4. Read-ahead policy (§III-D).
    let rows: Vec<Vec<String>> = [
        ("no read-ahead", 0u64, false),
        ("doubling to 8MB", 8 * 1024 * 1024, false),
        ("8MB + max-at-zero (paper)", 8 * 1024 * 1024, true),
    ]
    .into_iter()
    .map(|(name, ra, fz)| vec![name.to_string(), format!("{:.0}", read_bandwidth(ra, fz))])
    .collect();
    lines.extend(print_table(
        "Ablation: read-ahead policy (sequential read MiB/s, 1 client)",
        &["policy", "MiB/s"],
        &rows,
    ));

    // 5. Lease period: shorter periods mean more manager traffic.
    let rows: Vec<Vec<String>> = [SEC / 2, SEC, 5 * SEC, 30 * SEC]
        .into_iter()
        .map(|period| {
            let cfg = ArkConfig::default().with_lease_period(period, period);
            vec![
                format!("{:.1}s", period as f64 / 1e9),
                format!("{:.1}", create_throughput(cfg, procs, files) / 1000.0),
            ]
        })
        .collect();
    lines.extend(print_table(
        "Ablation: lease period (create kops/s)",
        &["period", "kops/s"],
        &rows,
    ));

    // 6. Unified telemetry: one deployment runs the cached data path
    //    (16 MiB write + cold read), then 64 creates, a clean lease
    //    hand-back, and a leader takeover by a second client. Every
    //    counter and latency histogram the stack recorded — cache,
    //    store, meta, journal, lease, and per-op — comes out of a
    //    single sorted `Registry::snapshot()`.
    {
        use arkfs::ArkCluster;
        use arkfs_objstore::{ClusterConfig, ObjectCluster};
        use arkfs_telemetry::MetricValue;
        use arkfs_vfs::Vfs;
        let mut config = ArkConfig::default();
        config.chunk_size = 512 * 1024;
        config.cache_entries = 256;
        let store_cfg = ClusterConfig::rados(config.spec.clone());
        let store = Arc::new(ObjectCluster::new(store_cfg));
        let cluster = ArkCluster::new(config, store);
        let trace = arkfs_bench::trace_path();
        if trace.is_some() {
            cluster.telemetry().tracer.set_enabled(true);
        }
        let writer = cluster.client();
        let reader = cluster.client();
        let ctx = arkfs_vfs::Credentials::root();

        // Data path: write 16 MiB, drop the cache, read it back cold.
        let size: u64 = 16 * 1024 * 1024;
        writer.mkdir(&ctx, "/d", 0o755).unwrap();
        let fh = writer.create(&ctx, "/d/f", 0o644).unwrap();
        let block = vec![0u8; 1024 * 1024];
        let mut off = 0;
        while off < size {
            writer.write(&ctx, fh, off, &block).unwrap();
            off += block.len() as u64;
        }
        writer.fsync(&ctx, fh).unwrap();
        writer.drop_data_cache().unwrap();
        let mut buf = vec![0u8; 128 * 1024];
        let mut off = 0;
        while off < size {
            let n = writer.read(&ctx, fh, off, &mut buf).unwrap();
            off += n as u64;
        }
        writer.close(&ctx, fh).unwrap();

        // Metadata path: 64 creates, then hand the lease back so the
        // reader's first stat is an uncached leader takeover
        // (batched Metatable::load from the store).
        writer.mkdir(&ctx, "/meta", 0o755).unwrap();
        for i in 0..64 {
            let fh = writer.create(&ctx, &format!("/meta/f{i}"), 0o644).unwrap();
            writer.close(&ctx, fh).unwrap();
        }
        writer.release_all(&ctx).unwrap();
        for i in 0..64 {
            reader.stat(&ctx, &format!("/meta/f{i}")).unwrap();
        }

        let rows: Vec<Vec<String>> = cluster
            .telemetry()
            .registry
            .snapshot()
            .into_iter()
            .map(|(name, value)| {
                let rendered = match value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => v.to_string(),
                    MetricValue::Histogram(h) => format!(
                        "count={} p50={}ns p99={}ns max={}ns",
                        h.count(),
                        h.quantile(0.50),
                        h.quantile(0.99),
                        h.max()
                    ),
                };
                vec![name, rendered]
            })
            .collect();
        lines.extend(print_table(
            "Telemetry registry snapshot (data path + takeover workload)",
            &["metric", "value"],
            &rows,
        ));
        if let Some(path) = trace {
            match cluster
                .telemetry()
                .tracer
                .write_chrome_trace(std::path::Path::new(&path))
            {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }

    save_results("ablations", &lines);
}
