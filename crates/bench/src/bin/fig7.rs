//! Figure 7 — "Scalability Test": mdtest-easy file creation while
//! varying the number of clients up to 512, normalized throughput.
//!
//! Expected shape (paper): ArkFS-pcache near-linear to 512 clients;
//! ArkFS-no-pcache collapses as soon as clients > 1 (FUSE LOOKUP storm on
//! the near-root directory leaders, §III-C); CephFS-K (1 MDS) flat-lines;
//! CephFS-K (16 MDS) at most ~3.24× of 1 MDS beyond 64 clients.

use arkfs::ArkConfig;
use arkfs_baselines::MountType;
use arkfs_bench::{ark_fleet, bench_files, ceph_fleet, kops, print_table, save_results};
use arkfs_workloads::mdtest::{mdtest_easy, MdtestEasyConfig};
use arkfs_workloads::SimClient;
use std::sync::Arc;

fn run(clients: Vec<Arc<dyn SimClient>>, per_client: u64) -> f64 {
    let cfg = MdtestEasyConfig {
        files_total: per_client * clients.len() as u64,
        create_only: true,
        ..Default::default()
    };
    mdtest_easy(&clients, &cfg).expect("mdtest-easy").phases[0].ops_per_sec()
}

fn main() {
    let per_client = bench_files(500);
    let scales = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();

    for (label, builder) in [
        (
            "ArkFS-pcache",
            Box::new(|n: usize| ark_fleet(n, ArkConfig::default(), true).clients)
                as Box<dyn Fn(usize) -> Vec<Arc<dyn SimClient>>>,
        ),
        (
            "ArkFS-no-pcache",
            Box::new(|n: usize| {
                ark_fleet(n, ArkConfig::default().with_permission_cache(false), true).clients
            }),
        ),
        (
            "CephFS-K (1 MDS)",
            Box::new(|n: usize| ceph_fleet(n, 1, MountType::Kernel, 65536, true).clients),
        ),
        (
            "CephFS-K (16 MDS)",
            Box::new(|n: usize| ceph_fleet(n, 16, MountType::Kernel, 65536, true).clients),
        ),
    ] {
        let mut points = Vec::new();
        for &n in &scales {
            let tput = run(builder(n), per_client);
            points.push(tput);
            eprintln!("fig7: {label} @ {n} clients: {} kops/s", kops(tput));
        }
        series.push((label.to_string(), points));
    }

    // Raw throughput table.
    let mut rows = Vec::new();
    for (i, &n) in scales.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (_, points) in &series {
            row.push(kops(points[i]));
        }
        rows.push(row);
    }
    let names: Vec<&str> = series.iter().map(|(n, _)| n.as_str()).collect();
    let mut header = vec!["clients"];
    header.extend(names.iter());
    let mut lines = print_table(
        &format!("Figure 7: create scalability, raw kops/s ({per_client} files/client)"),
        &header,
        &rows,
    );

    // Normalized (each series to its own 1-client throughput), the
    // paper's log-scale Y axis.
    let mut rows = Vec::new();
    for (i, &n) in scales.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (_, points) in &series {
            let base = points[0].max(f64::MIN_POSITIVE);
            row.push(format!("{:.2}", points[i] / base));
        }
        rows.push(row);
    }
    lines.extend(print_table(
        "Figure 7: normalized throughput (each system vs its own 1-client run)",
        &header,
        &rows,
    ));
    save_results("fig7", &lines);
}
