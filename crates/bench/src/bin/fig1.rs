//! Figure 1 — motivation: "Scalability problem of a dedicated metadata
//! server. Massive file creations are performed while varying the number
//! of clients up to 512. The dotted line indicates the ideal, linearly
//! scalable performance."
//!
//! CephFS-K with 1 MDS, mdtest-easy CREATE only, per-client private
//! directories.

use arkfs_baselines::MountType;
use arkfs_bench::{bench_files, ceph_fleet, kops, print_table, save_results};
use arkfs_workloads::mdtest::{mdtest_easy, MdtestEasyConfig};

fn main() {
    let per_client = bench_files(1000);
    let mut rows = Vec::new();
    let mut ideal_base = 0.0f64;
    for clients in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let system = ceph_fleet(clients, 1, MountType::Kernel, 64 * 1024, true);
        let cfg = MdtestEasyConfig {
            files_total: per_client * clients as u64,
            create_only: true,
            ..Default::default()
        };
        let result = mdtest_easy(&system.clients, &cfg).expect("mdtest-easy");
        let tput = result.phases[0].ops_per_sec();
        if clients == 1 {
            ideal_base = tput;
        }
        rows.push(vec![
            clients.to_string(),
            kops(tput),
            kops(ideal_base * clients as f64),
        ]);
        eprintln!("fig1: {clients} clients done ({} kops/s)", kops(tput));
    }
    let lines = print_table(
        "Figure 1: CephFS-K (1 MDS) file creation scalability",
        &["clients", "kops/s", "ideal kops/s"],
        &rows,
    );
    save_results("fig1", &lines);
}
