//! Table II — "Execution times of two archiving scenarios on each file
//! system": tar-based archiving and unarchiving of an MS-COCO-like
//! dataset (§IV-D).
//!
//! Expected shape (paper): ArkFS fastest; speed-ups over CephFS-F /
//! CephFS-K of 6.78× / 1.51× (archiving) and 3.76× / 1.76× (unarchiving);
//! the EBS bandwidth floor limits the CephFS-K gap.
//!
//! Dataset is scaled from 32×7 GB by default; EBS bandwidth is scaled
//! with it so the bandwidth-floor share of the runtime matches the paper.

use arkfs::ArkConfig;
use arkfs_baselines::MountType;
use arkfs_bench::{ark_fleet, bench_procs, ceph_fleet, print_table, save_results, System};
use arkfs_workloads::tar::{archive_scenario, ArchiveConfig};
use arkfs_workloads::DatasetSpec;

#[allow(clippy::field_reassign_with_default)]
fn main() {
    let procs = bench_procs(8);
    let full = std::env::var("ARKFS_BENCH_FULL").is_ok();
    // Scaled dataset: same distribution shape; EBS bandwidth scaled so
    // the EBS floor keeps the paper's share of total runtime.
    let (dataset, ebs_bw) = if full {
        (DatasetSpec::ms_coco(), 1_000_000_000)
    } else {
        (DatasetSpec::scaled(3000, 16 * 1024, 0xC0C0), 100_000_000)
    };
    let cfg = ArchiveConfig { dataset, ebs_bw };
    let chunk = 512 * 1024;

    let mut ark_cfg = ArkConfig::default();
    ark_cfg.chunk_size = chunk;
    ark_cfg.cache_entries = 64;
    let systems: Vec<System> = vec![
        ceph_fleet(procs, 1, MountType::Fuse, chunk, false),
        ceph_fleet(procs, 1, MountType::Kernel, chunk, false),
        ark_fleet(procs, ark_cfg, false),
    ];

    let mut results = Vec::new();
    for system in systems {
        let r = archive_scenario(&system.clients, &cfg).expect("archive scenario");
        eprintln!(
            "table2: {}: archive {:.1}s unarchive {:.1}s",
            system.name,
            r.archive_secs(),
            r.unarchive_secs()
        );
        results.push((system.name, r));
    }

    let ark = &results[2].1;
    let speedup = |x: f64, y: f64| format!("{:.2}x", x / y);
    let rows = vec![
        vec![
            "Archiving (s)".to_string(),
            format!("{:.1}", results[0].1.archive_secs()),
            format!("{:.1}", results[1].1.archive_secs()),
            format!("{:.1}", ark.archive_secs()),
            format!(
                "{} / {}",
                speedup(results[0].1.archive_secs(), ark.archive_secs()),
                speedup(results[1].1.archive_secs(), ark.archive_secs())
            ),
        ],
        vec![
            "Unarchiving (s)".to_string(),
            format!("{:.1}", results[0].1.unarchive_secs()),
            format!("{:.1}", results[1].1.unarchive_secs()),
            format!("{:.1}", ark.unarchive_secs()),
            format!(
                "{} / {}",
                speedup(results[0].1.unarchive_secs(), ark.unarchive_secs()),
                speedup(results[1].1.unarchive_secs(), ark.unarchive_secs())
            ),
        ],
    ];
    let lines = print_table(
        &format!(
            "Table II: archiving scenarios ({procs} procs, {:.0} MB dataset total)",
            results[2].1.dataset_bytes as f64 / 1e6
        ),
        &["scenario", "CephFS-F", "CephFS-K", "ArkFS", "Speed-up"],
        &rows,
    );
    save_results("table2", &lines);
}
