//! Shared harness for the figure/table regeneration binaries.
//!
//! Each binary (`fig1`, `fig4`, `fig5`, `fig6`, `fig7`, `table1`,
//! `table2`) rebuilds one piece of the paper's evaluation (§IV) on the
//! simulated cluster and prints the same rows/series the paper reports.
//! Absolute numbers differ from the AWS testbed; shapes are the claim.
//!
//! Scale knobs (environment variables):
//! * `ARKFS_BENCH_FILES` — total mdtest files (default scaled down from
//!   the paper's 1 M).
//! * `ARKFS_BENCH_PROCS` — mdtest/fio process count.
//! * `ARKFS_BENCH_FULL=1` — paper-scale parameters (slow, memory-heavy).

use arkfs::{ArkCluster, ArkConfig};
use arkfs_baselines::pathfs::Bucket;
use arkfs_baselines::{CephFs, GoofysFs, MarFs, MountType, S3Fs};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::{ClusterSpec, PhaseResult};
use arkfs_telemetry::{critpath, merged_chrome_trace, Telemetry, Tracer};
use arkfs_workloads::SimClient;
use std::sync::Arc;

/// Version of the `BENCH_*.json` document layout. Consumers should
/// reject documents with an unknown version; purely additive metric
/// fields do not bump it. v3 adds critical-path attribution metrics
/// (`<phase>_cp_<segment>_ns`, from the causal tracing layer) to
/// benches that run traced.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// A named fleet of clients of one file system under test.
pub struct System {
    pub name: String,
    pub clients: Vec<Arc<dyn SimClient>>,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Total mdtest file count (paper: 1 000 000).
pub fn bench_files(default: u64) -> u64 {
    if std::env::var("ARKFS_BENCH_FULL").is_ok() {
        return 1_000_000;
    }
    env_usize("ARKFS_BENCH_FILES", default as usize) as u64
}

/// Benchmark process count (paper: 16 for mdtest, 32 for fio).
pub fn bench_procs(default: usize) -> usize {
    env_usize("ARKFS_BENCH_PROCS", default)
}

/// Build an ArkFS fleet on a fresh RADOS-profile store.
pub fn ark_fleet(n: usize, config: ArkConfig, discard_payload: bool) -> System {
    let store_cfg = ClusterConfig::rados(config.spec.clone()).with_discard_payload(discard_payload);
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let cluster = ArkCluster::new(config.clone(), store);
    let name = if config.permission_cache {
        "ArkFS"
    } else {
        "ArkFS-no-pcache"
    };
    System {
        name: name.to_string(),
        clients: (0..n)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect(),
    }
}

/// ArkFS on an S3-profile store (Figure 6b), with a configurable
/// read-ahead limit.
pub fn ark_fleet_s3(n: usize, max_readahead: u64, chunk: u64, discard: bool) -> System {
    let mut config = ArkConfig::default().with_max_readahead(max_readahead);
    config.chunk_size = chunk;
    // Page-cache-equivalent sizing: hold a whole fio file plus the
    // read-ahead window ("ArkFS also uses its data cache in the same
    // way [as the kernel page cache]", §IV-B).
    config.cache_entries = ((max_readahead / chunk) as usize + 32).max(256);
    let store_cfg = ClusterConfig::s3(config.spec.clone()).with_discard_payload(discard);
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let cluster = ArkCluster::new(config, store);
    System {
        name: format!("ArkFS-ra{}MB", max_readahead / (1024 * 1024)),
        clients: (0..n)
            .map(|_| cluster.client() as Arc<dyn SimClient>)
            .collect(),
    }
}

/// Build a CephFS fleet (one deployment, n mounted clients).
pub fn ceph_fleet(n: usize, mds: usize, mount: MountType, chunk: u64, discard: bool) -> System {
    let spec = ClusterSpec::aws_paper();
    let store_cfg = ClusterConfig::rados(spec.clone()).with_discard_payload(discard);
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let fs = CephFs::new(store, mds, spec, chunk);
    let tag = match mount {
        MountType::Kernel => "CephFS-K",
        MountType::Fuse => "CephFS-F",
    };
    let name = if mds == 1 {
        tag.to_string()
    } else {
        format!("{tag} ({mds} MDS)")
    };
    System {
        name,
        clients: (0..n)
            .map(|_| fs.client(mount) as Arc<dyn SimClient>)
            .collect(),
    }
}

/// Build a MarFS fleet.
pub fn marfs_fleet(n: usize, chunk: u64) -> System {
    let spec = ClusterSpec::aws_paper();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::rados(spec.clone())));
    let shared = MarFs::deployment(store, spec, chunk);
    System {
        name: "MarFS".to_string(),
        clients: (0..n)
            .map(|_| MarFs::client(&shared) as Arc<dyn SimClient>)
            .collect(),
    }
}

/// Build an S3FS fleet on an S3-profile store.
pub fn s3fs_fleet(n: usize, part: u64, discard: bool) -> System {
    let spec = ClusterSpec::aws_paper();
    let store_cfg = ClusterConfig::s3(spec.clone()).with_discard_payload(discard);
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let bucket = Bucket::new(store, part);
    System {
        name: "S3FS".to_string(),
        clients: (0..n)
            .map(|_| S3Fs::new(Arc::clone(&bucket), spec.clone()) as Arc<dyn SimClient>)
            .collect(),
    }
}

/// Build a goofys fleet on an S3-profile store.
pub fn goofys_fleet(n: usize, part: u64, readahead: u64, discard: bool) -> System {
    let spec = ClusterSpec::aws_paper();
    let store_cfg = ClusterConfig::s3(spec.clone()).with_discard_payload(discard);
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let bucket = Bucket::new(store, part);
    System {
        name: "goofys".to_string(),
        clients: (0..n)
            .map(|_| {
                GoofysFs::with_readahead(Arc::clone(&bucket), spec.clone(), readahead)
                    as Arc<dyn SimClient>
            })
            .collect(),
    }
}

/// Print an aligned results table and return it as lines (for files).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> Vec<String> {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut lines = Vec::new();
    lines.push(format!("== {title} =="));
    let fmt_row = |cells: Vec<String>| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    lines.push(fmt_row(header.iter().map(|s| s.to_string()).collect()));
    lines.push("-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        lines.push(fmt_row(row.clone()));
    }
    for line in &lines {
        println!("{line}");
    }
    println!();
    lines
}

/// Append result lines to `results/<name>.txt` (best effort).
pub fn save_results(name: &str, lines: &[String]) {
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(format!("results/{name}.txt"), lines.join("\n") + "\n");
}

/// Format ops/sec as kops with sensible precision.
pub fn kops(v: f64) -> String {
    format!("{:.2}", v / 1000.0)
}

/// One measured series in a benchmark: a system under test plus its
/// metric values, grouped by sub-figure/phase.
pub struct BenchRecord {
    pub group: String,
    pub system: String,
    pub metrics: Vec<(String, f64)>,
}

/// Latency percentiles of one workload phase as benchmark metrics:
/// `<phase>_p50_ns`, `<phase>_p99_ns`, `<phase>_max_ns`.
pub fn phase_latency_metrics(phase: &PhaseResult) -> Vec<(String, f64)> {
    vec![
        (format!("{}_p50_ns", phase.name), phase.latency_p50 as f64),
        (format!("{}_p99_ns", phase.name), phase.latency_p99 as f64),
        (format!("{}_max_ns", phase.name), phase.latency_max as f64),
    ]
}

/// The `--trace <path>` / `--trace=<path>` CLI argument, if present.
pub fn trace_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(p.to_string());
        }
    }
    None
}

fn system_telemetry(system: &System) -> Option<Arc<Telemetry>> {
    system.clients.first().and_then(|c| c.telemetry())
}

/// Turn span tracing on for every deployment in `systems` (clients of
/// one system share a deployment, so the first client's telemetry
/// covers the fleet).
pub fn enable_tracing(systems: &[&System]) {
    for s in systems {
        if let Some(t) = system_telemetry(s) {
            t.tracer.set_enabled(true);
        }
    }
}

/// Turn *deterministic sampled* tracing on for every deployment in
/// `systems`: every `every`-th op per client is traced end to end
/// (head-based — the decision is a modulus on the client's op
/// sequence, so it never perturbs seeded RNG streams and two runs of
/// the same workload trace the same ops). Tracing rides the virtual
/// clock and never advances it, so enabling this leaves every
/// committed benchmark figure byte-identical.
pub fn enable_sampled_tracing(systems: &[&System], every: u64) {
    for s in systems {
        if let Some(t) = system_telemetry(s) {
            t.tracer.set_sample_every(every);
            t.tracer.set_enabled(true);
        }
    }
}

/// Mean critical-path attribution of a traced system's retained spans,
/// keyed per op phase: `<phase>_cp_<segment>_ns` for each segment in
/// [`critpath::SEGMENTS`] plus `<phase>_cp_total_ns` (phase = the root
/// span name minus its `op.` prefix). Empty when the system records no
/// telemetry or tracing was off.
pub fn critpath_metrics(system: &System) -> Vec<(String, f64)> {
    let Some(tel) = system_telemetry(system) else {
        return Vec::new();
    };
    let events = tel.tracer.events();
    let mut out = Vec::new();
    for (root, agg) in critpath::aggregate(&events) {
        let phase = root.strip_prefix("op.").unwrap_or(&root);
        for (i, seg) in critpath::SEGMENTS.iter().enumerate() {
            out.push((format!("{phase}_cp_{seg}_ns"), agg.mean_seg(i)));
        }
        out.push((format!("{phase}_cp_total_ns"), agg.mean_total()));
    }
    out
}

/// Write one merged Chrome `trace_event` JSON covering every traced
/// system — load it in chrome://tracing or https://ui.perfetto.dev.
pub fn write_chrome_trace(path: &str, systems: &[&System]) {
    let tels: Vec<(String, Arc<Telemetry>)> = systems
        .iter()
        .filter_map(|s| system_telemetry(s).map(|t| (s.name.clone(), t)))
        .collect();
    let groups: Vec<(&str, &Tracer)> = tels.iter().map(|(n, t)| (n.as_str(), &t.tracer)).collect();
    match std::fs::write(path, merged_chrome_trace(&groups)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    // JSON has no NaN/Infinity; benchmark failures surface as null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render benchmark records as a machine-readable JSON document.
pub fn bench_json_string(name: &str, config: &[(&str, f64)], records: &[BenchRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(name)));
    s.push_str(&format!("  \"schema\": {BENCH_SCHEMA_VERSION},\n"));
    s.push_str("  \"config\": {");
    let cfg: Vec<String> = config
        .iter()
        .map(|(k, v)| format!("\"{}\": {}", json_escape(k), json_num(*v)))
        .collect();
    s.push_str(&cfg.join(", "));
    s.push_str("},\n  \"results\": [\n");
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            let metrics: Vec<String> = r
                .metrics
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", json_escape(k), json_num(*v)))
                .collect();
            format!(
                "    {{\"group\": \"{}\", \"system\": \"{}\", \"metrics\": {{{}}}}}",
                json_escape(&r.group),
                json_escape(&r.system),
                metrics.join(", ")
            )
        })
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Write benchmark records to `BENCH_<name>.json` in the working
/// directory (best effort), as a committed regression baseline.
pub fn save_bench_json(name: &str, config: &[(&str, f64)], records: &[BenchRecord]) {
    let doc = bench_json_string(name, config, records);
    let path = format!("BENCH_{name}.json");
    if std::fs::write(&path, &doc).is_ok() {
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_vfs::Credentials;

    #[test]
    fn fleet_builders_produce_working_clients() {
        let ctx = Credentials::root();
        for system in [
            ark_fleet(2, ArkConfig::test_tiny(), false),
            ceph_fleet(2, 1, MountType::Kernel, 64, false),
            marfs_fleet(2, 64),
            s3fs_fleet(2, 64, false),
            goofys_fleet(2, 64, 256, false),
        ] {
            assert_eq!(system.clients.len(), 2);
            system.clients[0]
                .mkdir(&ctx, "/probe", 0o755)
                .unwrap_or_else(|e| panic!("{}: {e}", system.name));
            assert!(
                system.clients[1].stat(&ctx, "/probe").is_ok(),
                "{}",
                system.name
            );
        }
    }

    #[test]
    fn table_printer_aligns() {
        let lines = print_table(
            "t",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("long-header"));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let records = vec![BenchRecord {
            group: "a\"b".to_string(),
            system: "ArkFS".to_string(),
            metrics: vec![
                ("write_ops_s".to_string(), 1234.5),
                ("bad".to_string(), f64::NAN),
            ],
        }];
        let doc = bench_json_string("fig9", &[("procs", 16.0)], &records);
        assert!(doc.contains("\"bench\": \"fig9\""));
        assert!(doc.contains(&format!("\"schema\": {BENCH_SCHEMA_VERSION}")));
        assert!(doc.contains("\"procs\": 16"));
        assert!(doc.contains("\"group\": \"a\\\"b\""));
        assert!(doc.contains("\"write_ops_s\": 1234.5"));
        assert!(
            doc.contains("\"bad\": null"),
            "non-finite metrics must become null"
        );
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn env_scale_defaults() {
        assert_eq!(bench_files(50_000), 50_000);
        assert_eq!(bench_procs(16), 16);
    }
}
