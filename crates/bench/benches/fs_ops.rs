//! Criterion benchmarks of whole file-system operations (real CPU time
//! per op on the in-memory substrate): metatable mutations, journal
//! commits, and end-to-end ArkFS client operations.

use arkfs::journal::{DirJournal, JournalOp};
use arkfs::meta::InodeRecord;
use arkfs::metatable::Metatable;
use arkfs::prt::Prt;
use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::{Port, SharedResource};
use arkfs_vfs::{Credentials, FileType, Vfs};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_metatable(c: &mut Criterion) {
    let mut group = c.benchmark_group("metatable");
    group.bench_function("create_child", |b| {
        let dir = InodeRecord::new(100, FileType::Directory, 0o755, 0, 0, 0);
        let mut mt = Metatable::fresh(dir, 16, 1_000_000);
        let mut i = 0u128;
        b.iter(|| {
            i += 1;
            let rec = InodeRecord::new(i + 1000, FileType::Regular, 0o644, 0, 0, 0);
            mt.create_child(rec, &format!("f{i}"), 0).unwrap();
        })
    });
    group.bench_function("lookup", |b| {
        let dir = InodeRecord::new(100, FileType::Directory, 0o755, 0, 0, 0);
        let mut mt = Metatable::fresh(dir, 16, 1_000_000);
        for i in 0..10_000u128 {
            let rec = InodeRecord::new(i + 1000, FileType::Regular, 0o644, 0, 0, 0);
            mt.create_child(rec, &format!("f{i}"), 0).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(mt.lookup(&format!("f{i}")).is_some())
        })
    });
    group.finish();
}

fn bench_journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal");
    group.bench_function("commit_64_entry_txn", |b| {
        let prt = Prt::new(
            Arc::new(ObjectCluster::new(ClusterConfig::test_tiny())),
            65536,
        );
        let port = Port::new();
        let lane = SharedResource::ideal("lane");
        let mut j = DirJournal::new(7, 0);
        b.iter(|| {
            for i in 0..64u128 {
                j.append(
                    JournalOp::UpsertDentry {
                        name: format!("f{i}"),
                        ino: i,
                        ftype: FileType::Regular,
                    },
                    0,
                );
            }
            j.commit(&prt, &port, &lane, 0).unwrap();
            j.take_committed();
        })
    });
    group.finish();
}

fn bench_client_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("arkfs_client");
    group.sample_size(50);
    let ctx = Credentials::root();

    group.bench_function("create_empty_file", |b| {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        let client = cluster.client();
        client.mkdir(&ctx, "/bench", 0o755).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let fh = client.create(&ctx, &format!("/bench/f{i}"), 0o644).unwrap();
            client.close(&ctx, fh).unwrap();
        })
    });

    group.bench_function("stat_hot_path", |b| {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        let client = cluster.client();
        client.mkdir(&ctx, "/bench", 0o755).unwrap();
        arkfs_vfs::write_file(&*client, &ctx, "/bench/target", b"x").unwrap();
        b.iter(|| black_box(client.stat(&ctx, "/bench/target").unwrap()))
    });

    group.bench_function("write_4k_cached", |b| {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
        let client = cluster.client();
        let fh = client.create(&ctx, "/big.bin", 0o644).unwrap();
        let block = vec![0u8; 4096];
        let mut off = 0u64;
        b.iter(|| {
            client.write(&ctx, fh, off % (1 << 20), &block).unwrap();
            off += 4096;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_metatable, bench_journal, bench_client_ops);
criterion_main!(benches);
