//! Criterion micro-benchmarks of ArkFS's core data structures: the wire
//! codec, CRC32, the radix tree behind the data cache, and the cache
//! itself. These measure real CPU time (not virtual time) and guard
//! against regressions in the hot paths.

use arkfs::cache::DataCache;
use arkfs::meta::{DentryBlock, DentryEntry, InodeRecord};
use arkfs::radix::RadixTree;
use arkfs::wire::{crc32, WireCodec};
use arkfs_vfs::FileType;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let inode = InodeRecord::new(0xDEADBEEF_CAFEBABE, FileType::Regular, 0o644, 10, 20, 1234);
    group.bench_function("inode_encode", |b| {
        b.iter(|| black_box(black_box(&inode).to_bytes()))
    });
    let bytes = inode.to_bytes();
    group.bench_function("inode_decode", |b| {
        b.iter(|| InodeRecord::from_bytes(black_box(&bytes)).unwrap())
    });

    let block = DentryBlock {
        entries: (0..64)
            .map(|i| DentryEntry {
                name: format!("file-{i:04}.dat"),
                ino: i as u128,
                ftype: FileType::Regular,
            })
            .collect(),
    };
    group.bench_function("dentry_block64_encode", |b| {
        b.iter(|| black_box(black_box(&block).to_bytes()))
    });
    let bytes = block.to_bytes();
    group.bench_function("dentry_block64_decode", |b| {
        b.iter(|| DentryBlock::from_bytes(black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| crc32(black_box(data)))
        });
    }
    group.finish();
}

fn bench_radix(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix");
    group.bench_function("insert_1k_sequential", |b| {
        b.iter(|| {
            let mut t = RadixTree::new();
            for k in 0..1000u64 {
                t.insert(k, k);
            }
            black_box(t.len())
        })
    });
    let mut tree = RadixTree::new();
    for k in 0..10_000u64 {
        tree.insert(k, k);
    }
    group.bench_function("get_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 10_000;
            black_box(tree.get(black_box(k)))
        })
    });
    group.bench_function("get_miss", |b| {
        b.iter(|| black_box(tree.get(black_box(1 << 40))))
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_cache");
    group.bench_function("hit", |b| {
        let mut cache = DataCache::new(256);
        for chunk in 0..128u64 {
            cache.insert_clean(1, chunk, vec![0u8; 1024]);
        }
        let mut chunk = 0u64;
        b.iter(|| {
            chunk = (chunk + 1) % 128;
            black_box(cache.get(1, chunk).is_some())
        })
    });
    group.bench_function("write_with_eviction", |b| {
        let mut cache = DataCache::new(64);
        let mut chunk = 0u64;
        b.iter(|| {
            chunk += 1;
            black_box(cache.write(1, chunk, 0, &[0u8; 256]).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wire, bench_crc, bench_radix, bench_cache);
criterion_main!(benches);
