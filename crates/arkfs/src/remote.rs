//! Remote object storage over a [`Transport`]: the third wire protocol.
//!
//! In a two-process deployment the metadata stack is symmetric — every
//! client runs the same code — but the object store lives in exactly one
//! process (the `cli serve` side, standing in for the RADOS/S3 cluster).
//! [`StoreService`] exports a local [`ObjectStore`] at [`STORE_NODE`];
//! [`RemoteStore`] is the client-side stub implementing [`ObjectStore`]
//! by forwarding every call. Clients talk to the store *directly* (the
//! paper's clients do their own librados I/O): metatable loads, journal
//! commits, and data chunks all cross this protocol, not the op protocol.
//!
//! This module also owns the [`WireFns`] codec tables gluing the three
//! protocols to [`arkfs_netsim::TcpTransport`] — they live here, not in
//! `netsim`, because the codecs are this crate's `WireCodec` impls.

use crate::rpc::{OpRequest, OpResponse};
use crate::wire::{
    from_frame, intern, to_frame, Decoder, Encoder, WireCodec, WireError, WireResult,
};
use arkfs_lease::{LeaseRequest, LeaseResponse};
use arkfs_netsim::{NetError, NodeId, Service, Transport, WireFns};
use arkfs_objstore::{KeyKind, ObjectKey, ObjectStore, OsError, OsResult, StoreProfile};
use arkfs_simkit::Nanos;
use arkfs_simkit::Port;
use arkfs_telemetry::Telemetry;
use bytes::Bytes;
use std::sync::Arc;

/// Well-known node id of the object-store endpoint. Sits in the middle
/// of the id space: clients count up from 1, lease managers count down
/// from `u32::MAX`, so it collides with neither.
pub const STORE_NODE: NodeId = NodeId(0x7FFF_FFFF);

/// One object-store operation, as carried on the wire.
#[derive(Debug, Clone)]
pub enum StoreRequest {
    Profile,
    Usage,
    Put(ObjectKey, Bytes),
    Get(ObjectKey),
    GetRange(ObjectKey, u64, u64),
    PutRange(ObjectKey, u64, Bytes),
    Delete(ObjectKey),
    Head(ObjectKey),
    List(Option<KeyKind>, Option<u128>),
    GetMany(Vec<ObjectKey>),
    PutMany(Vec<(ObjectKey, Bytes)>),
    DeleteMany(Vec<ObjectKey>),
    GetRangeMany(Vec<(ObjectKey, u64, u64)>),
    PutRangeMany(Vec<(ObjectKey, u64, Bytes)>),
}

/// The response to a [`StoreRequest`] (variant shape is dictated by the
/// request kind).
#[derive(Debug, Clone)]
pub enum StoreResponse {
    Profile(StoreProfile),
    Usage(u64, u64),
    Unit(Result<(), OsError>),
    Data(Result<Bytes, OsError>),
    Size(Result<u64, OsError>),
    Keys(Result<Vec<ObjectKey>, OsError>),
    Units(Vec<Result<(), OsError>>),
    Datas(Vec<Result<Bytes, OsError>>),
}

const MAX_VEC: usize = 1 << 16;

fn checked_len(dec: &mut Decoder<'_>) -> WireResult<usize> {
    let n = dec.get_u32()? as usize;
    if n > MAX_VEC {
        return Err(WireError::Invalid("collection too large"));
    }
    Ok(n)
}

impl WireCodec for KeyKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            KeyKind::Inode => 0,
            KeyKind::Dentry => 1,
            KeyKind::Journal => 2,
            KeyKind::Data => 3,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(match dec.get_u8()? {
            0 => KeyKind::Inode,
            1 => KeyKind::Dentry,
            2 => KeyKind::Journal,
            3 => KeyKind::Data,
            _ => return Err(WireError::Invalid("key kind")),
        })
    }
}

impl WireCodec for ObjectKey {
    fn encode(&self, enc: &mut Encoder) {
        self.kind.encode(enc);
        enc.put_u128(self.ino);
        enc.put_u64(self.index);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(ObjectKey {
            kind: KeyKind::decode(dec)?,
            ino: dec.get_u128()?,
            index: dec.get_u64()?,
        })
    }
}

impl WireCodec for OsError {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            OsError::NotFound => enc.put_u8(0),
            OsError::Unsupported(what) => {
                enc.put_u8(1);
                enc.put_str(what);
            }
            OsError::Injected(what) => {
                enc.put_u8(2);
                enc.put_str(what);
            }
            OsError::BadRange => enc.put_u8(3),
            OsError::BadKey => enc.put_u8(4),
            OsError::InsufficientFragments => enc.put_u8(5),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(match dec.get_u8()? {
            0 => OsError::NotFound,
            1 => OsError::Unsupported(intern(dec.get_str()?)?),
            2 => OsError::Injected(intern(dec.get_str()?)?),
            3 => OsError::BadRange,
            4 => OsError::BadKey,
            5 => OsError::InsufficientFragments,
            _ => return Err(WireError::Invalid("os error tag")),
        })
    }
}

impl WireCodec for StoreProfile {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.name);
        enc.put_u64(self.op_service);
        enc.put_u64(self.op_latency);
        enc.put_bool(self.partial_writes);
        enc.put_bool(self.ranged_reads);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(StoreProfile {
            name: intern(dec.get_str()?)?,
            op_service: dec.get_u64()?,
            op_latency: dec.get_u64()?,
            partial_writes: dec.get_bool()?,
            ranged_reads: dec.get_bool()?,
        })
    }
}

fn put_result<T: WireCodec>(enc: &mut Encoder, r: &Result<T, OsError>) {
    match r {
        Ok(v) => {
            enc.put_bool(true);
            v.encode(enc);
        }
        Err(e) => {
            enc.put_bool(false);
            e.encode(enc);
        }
    }
}

fn get_result<T: WireCodec>(dec: &mut Decoder<'_>) -> WireResult<Result<T, OsError>> {
    Ok(if dec.get_bool()? {
        Ok(T::decode(dec)?)
    } else {
        Err(OsError::decode(dec)?)
    })
}

/// Unit stand-in so `Result<(), OsError>` fits the generic helpers.
struct Nothing;
impl WireCodec for Nothing {
    fn encode(&self, _enc: &mut Encoder) {}
    fn decode(_dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Nothing)
    }
}

struct Blob(Bytes);
impl WireCodec for Blob {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(&self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Blob(Bytes::copy_from_slice(dec.get_bytes()?)))
    }
}

struct U64(u64);
impl WireCodec for U64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(U64(dec.get_u64()?))
    }
}

impl WireCodec for StoreRequest {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            StoreRequest::Profile => enc.put_u8(0),
            StoreRequest::Usage => enc.put_u8(1),
            StoreRequest::Put(key, data) => {
                enc.put_u8(2);
                key.encode(enc);
                enc.put_bytes(data);
            }
            StoreRequest::Get(key) => {
                enc.put_u8(3);
                key.encode(enc);
            }
            StoreRequest::GetRange(key, offset, len) => {
                enc.put_u8(4);
                key.encode(enc);
                enc.put_u64(*offset);
                enc.put_u64(*len);
            }
            StoreRequest::PutRange(key, offset, data) => {
                enc.put_u8(5);
                key.encode(enc);
                enc.put_u64(*offset);
                enc.put_bytes(data);
            }
            StoreRequest::Delete(key) => {
                enc.put_u8(6);
                key.encode(enc);
            }
            StoreRequest::Head(key) => {
                enc.put_u8(7);
                key.encode(enc);
            }
            StoreRequest::List(kind, ino) => {
                enc.put_u8(8);
                match kind {
                    Some(k) => {
                        enc.put_bool(true);
                        k.encode(enc);
                    }
                    None => enc.put_bool(false),
                }
                match ino {
                    Some(i) => {
                        enc.put_bool(true);
                        enc.put_u128(*i);
                    }
                    None => enc.put_bool(false),
                }
            }
            StoreRequest::GetMany(keys) => {
                enc.put_u8(9);
                enc.put_u32(keys.len() as u32);
                for k in keys {
                    k.encode(enc);
                }
            }
            StoreRequest::PutMany(items) => {
                enc.put_u8(10);
                enc.put_u32(items.len() as u32);
                for (k, d) in items {
                    k.encode(enc);
                    enc.put_bytes(d);
                }
            }
            StoreRequest::DeleteMany(keys) => {
                enc.put_u8(11);
                enc.put_u32(keys.len() as u32);
                for k in keys {
                    k.encode(enc);
                }
            }
            StoreRequest::GetRangeMany(reqs) => {
                enc.put_u8(12);
                enc.put_u32(reqs.len() as u32);
                for (k, offset, len) in reqs {
                    k.encode(enc);
                    enc.put_u64(*offset);
                    enc.put_u64(*len);
                }
            }
            StoreRequest::PutRangeMany(items) => {
                enc.put_u8(13);
                enc.put_u32(items.len() as u32);
                for (k, offset, d) in items {
                    k.encode(enc);
                    enc.put_u64(*offset);
                    enc.put_bytes(d);
                }
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(match dec.get_u8()? {
            0 => StoreRequest::Profile,
            1 => StoreRequest::Usage,
            2 => StoreRequest::Put(
                ObjectKey::decode(dec)?,
                Bytes::copy_from_slice(dec.get_bytes()?),
            ),
            3 => StoreRequest::Get(ObjectKey::decode(dec)?),
            4 => StoreRequest::GetRange(ObjectKey::decode(dec)?, dec.get_u64()?, dec.get_u64()?),
            5 => StoreRequest::PutRange(
                ObjectKey::decode(dec)?,
                dec.get_u64()?,
                Bytes::copy_from_slice(dec.get_bytes()?),
            ),
            6 => StoreRequest::Delete(ObjectKey::decode(dec)?),
            7 => StoreRequest::Head(ObjectKey::decode(dec)?),
            8 => {
                let kind = if dec.get_bool()? {
                    Some(KeyKind::decode(dec)?)
                } else {
                    None
                };
                let ino = if dec.get_bool()? {
                    Some(dec.get_u128()?)
                } else {
                    None
                };
                StoreRequest::List(kind, ino)
            }
            9 => {
                let n = checked_len(dec)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(ObjectKey::decode(dec)?);
                }
                StoreRequest::GetMany(keys)
            }
            10 => {
                let n = checked_len(dec)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push((
                        ObjectKey::decode(dec)?,
                        Bytes::copy_from_slice(dec.get_bytes()?),
                    ));
                }
                StoreRequest::PutMany(items)
            }
            11 => {
                let n = checked_len(dec)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(ObjectKey::decode(dec)?);
                }
                StoreRequest::DeleteMany(keys)
            }
            12 => {
                let n = checked_len(dec)?;
                let mut reqs = Vec::with_capacity(n);
                for _ in 0..n {
                    reqs.push((ObjectKey::decode(dec)?, dec.get_u64()?, dec.get_u64()?));
                }
                StoreRequest::GetRangeMany(reqs)
            }
            13 => {
                let n = checked_len(dec)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push((
                        ObjectKey::decode(dec)?,
                        dec.get_u64()?,
                        Bytes::copy_from_slice(dec.get_bytes()?),
                    ));
                }
                StoreRequest::PutRangeMany(items)
            }
            _ => return Err(WireError::Invalid("store request tag")),
        })
    }
}

impl WireCodec for StoreResponse {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            StoreResponse::Profile(p) => {
                enc.put_u8(0);
                p.encode(enc);
            }
            StoreResponse::Usage(objects, bytes) => {
                enc.put_u8(1);
                enc.put_u64(*objects);
                enc.put_u64(*bytes);
            }
            StoreResponse::Unit(r) => {
                enc.put_u8(2);
                put_result(enc, &r.clone().map(|()| Nothing));
            }
            StoreResponse::Data(r) => {
                enc.put_u8(3);
                put_result(enc, &r.clone().map(Blob));
            }
            StoreResponse::Size(r) => {
                enc.put_u8(4);
                put_result(enc, &r.clone().map(U64));
            }
            StoreResponse::Keys(r) => {
                enc.put_u8(5);
                match r {
                    Ok(keys) => {
                        enc.put_bool(true);
                        enc.put_u32(keys.len() as u32);
                        for k in keys {
                            k.encode(enc);
                        }
                    }
                    Err(e) => {
                        enc.put_bool(false);
                        e.encode(enc);
                    }
                }
            }
            StoreResponse::Units(rs) => {
                enc.put_u8(6);
                enc.put_u32(rs.len() as u32);
                for r in rs {
                    put_result(enc, &r.clone().map(|()| Nothing));
                }
            }
            StoreResponse::Datas(rs) => {
                enc.put_u8(7);
                enc.put_u32(rs.len() as u32);
                for r in rs {
                    put_result(enc, &r.clone().map(Blob));
                }
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(match dec.get_u8()? {
            0 => StoreResponse::Profile(StoreProfile::decode(dec)?),
            1 => StoreResponse::Usage(dec.get_u64()?, dec.get_u64()?),
            2 => StoreResponse::Unit(get_result::<Nothing>(dec)?.map(|_| ())),
            3 => StoreResponse::Data(get_result::<Blob>(dec)?.map(|b| b.0)),
            4 => StoreResponse::Size(get_result::<U64>(dec)?.map(|v| v.0)),
            5 => StoreResponse::Keys(if dec.get_bool()? {
                let n = checked_len(dec)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(ObjectKey::decode(dec)?);
                }
                Ok(keys)
            } else {
                Err(OsError::decode(dec)?)
            }),
            6 => {
                let n = checked_len(dec)?;
                let mut rs = Vec::with_capacity(n);
                for _ in 0..n {
                    rs.push(get_result::<Nothing>(dec)?.map(|_| ()));
                }
                StoreResponse::Units(rs)
            }
            7 => {
                let n = checked_len(dec)?;
                let mut rs = Vec::with_capacity(n);
                for _ in 0..n {
                    rs.push(get_result::<Blob>(dec)?.map(|b| b.0));
                }
                StoreResponse::Datas(rs)
            }
            _ => return Err(WireError::Invalid("store response tag")),
        })
    }
}

/// Serves a local [`ObjectStore`] to remote peers. Registered at
/// [`STORE_NODE`] on the store transport of the `cli serve` process.
pub struct StoreService {
    store: Arc<dyn ObjectStore>,
}

impl StoreService {
    pub fn new(store: Arc<dyn ObjectStore>) -> Self {
        StoreService { store }
    }
}

impl Service<StoreRequest, StoreResponse> for StoreService {
    fn handle(&self, arrival: Nanos, req: StoreRequest) -> (StoreResponse, Nanos) {
        let port = Port::starting_at(arrival);
        let s = &self.store;
        let resp = match req {
            StoreRequest::Profile => StoreResponse::Profile(s.profile().clone()),
            StoreRequest::Usage => {
                let (objects, bytes) = s.usage();
                StoreResponse::Usage(objects, bytes)
            }
            StoreRequest::Put(key, data) => StoreResponse::Unit(s.put(&port, key, data)),
            StoreRequest::Get(key) => StoreResponse::Data(s.get(&port, key)),
            StoreRequest::GetRange(key, offset, len) => {
                StoreResponse::Data(s.get_range(&port, key, offset, len as usize))
            }
            StoreRequest::PutRange(key, offset, data) => {
                StoreResponse::Unit(s.put_range(&port, key, offset, data))
            }
            StoreRequest::Delete(key) => StoreResponse::Unit(s.delete(&port, key)),
            StoreRequest::Head(key) => StoreResponse::Size(s.head(&port, key)),
            StoreRequest::List(kind, ino) => StoreResponse::Keys(s.list(&port, kind, ino)),
            StoreRequest::GetMany(keys) => StoreResponse::Datas(s.get_many(&port, &keys)),
            StoreRequest::PutMany(items) => StoreResponse::Units(s.put_many(&port, items)),
            StoreRequest::DeleteMany(keys) => StoreResponse::Units(s.delete_many(&port, &keys)),
            StoreRequest::GetRangeMany(reqs) => {
                let reqs: Vec<(ObjectKey, u64, usize)> = reqs
                    .into_iter()
                    .map(|(k, o, l)| (k, o, l as usize))
                    .collect();
                StoreResponse::Datas(s.get_range_many(&port, &reqs))
            }
            StoreRequest::PutRangeMany(items) => {
                StoreResponse::Units(s.put_range_many(&port, items))
            }
        };
        (resp, port.now())
    }
}

/// Client-side [`ObjectStore`] stub forwarding every call over a
/// transport to the [`StoreService`] at [`STORE_NODE`].
pub struct RemoteStore {
    net: Arc<dyn Transport<StoreRequest, StoreResponse>>,
    profile: StoreProfile,
    telemetry: Arc<Telemetry>,
}

impl RemoteStore {
    /// Connect: fetches the remote backend's profile so cost/semantics
    /// decisions (ranged writes, chunking) match the serving side.
    pub fn connect(
        net: Arc<dyn Transport<StoreRequest, StoreResponse>>,
    ) -> Result<Arc<Self>, NetError> {
        let port = Port::new();
        let profile = match net.call(&port, STORE_NODE, StoreRequest::Profile)? {
            StoreResponse::Profile(p) => p,
            _ => return Err(NetError::Decode),
        };
        Ok(Arc::new(RemoteStore {
            net,
            profile,
            telemetry: Telemetry::new(),
        }))
    }

    fn call(&self, port: &Port, req: StoreRequest) -> Result<StoreResponse, NetError> {
        self.net.call(port, STORE_NODE, req)
    }
}

/// A transport failure surfaced through the object-store error space.
fn net_err(e: NetError) -> OsError {
    OsError::Injected(match e {
        NetError::Unreachable => "net: store unreachable",
        NetError::Timeout => "net: store timeout",
        NetError::Decode => "net: store decode error",
        NetError::ConnReset => "net: store connection reset",
    })
}

/// The response arrived but with the wrong shape for the request.
fn bad_shape() -> OsError {
    OsError::Injected("net: store protocol shape mismatch")
}

impl ObjectStore for RemoteStore {
    fn profile(&self) -> &StoreProfile {
        &self.profile
    }

    fn usage(&self) -> (u64, u64) {
        let port = Port::new();
        match self.call(&port, StoreRequest::Usage) {
            Ok(StoreResponse::Usage(objects, bytes)) => (objects, bytes),
            _ => (0, 0),
        }
    }

    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        Some(&self.telemetry)
    }

    fn put(&self, port: &Port, key: ObjectKey, data: Bytes) -> OsResult<()> {
        match self.call(port, StoreRequest::Put(key, data)) {
            Ok(StoreResponse::Unit(r)) => r,
            Ok(_) => Err(bad_shape()),
            Err(e) => Err(net_err(e)),
        }
    }

    fn get(&self, port: &Port, key: ObjectKey) -> OsResult<Bytes> {
        match self.call(port, StoreRequest::Get(key)) {
            Ok(StoreResponse::Data(r)) => r,
            Ok(_) => Err(bad_shape()),
            Err(e) => Err(net_err(e)),
        }
    }

    fn get_range(&self, port: &Port, key: ObjectKey, offset: u64, len: usize) -> OsResult<Bytes> {
        match self.call(port, StoreRequest::GetRange(key, offset, len as u64)) {
            Ok(StoreResponse::Data(r)) => r,
            Ok(_) => Err(bad_shape()),
            Err(e) => Err(net_err(e)),
        }
    }

    fn put_range(&self, port: &Port, key: ObjectKey, offset: u64, data: Bytes) -> OsResult<()> {
        match self.call(port, StoreRequest::PutRange(key, offset, data)) {
            Ok(StoreResponse::Unit(r)) => r,
            Ok(_) => Err(bad_shape()),
            Err(e) => Err(net_err(e)),
        }
    }

    fn delete(&self, port: &Port, key: ObjectKey) -> OsResult<()> {
        match self.call(port, StoreRequest::Delete(key)) {
            Ok(StoreResponse::Unit(r)) => r,
            Ok(_) => Err(bad_shape()),
            Err(e) => Err(net_err(e)),
        }
    }

    fn head(&self, port: &Port, key: ObjectKey) -> OsResult<u64> {
        match self.call(port, StoreRequest::Head(key)) {
            Ok(StoreResponse::Size(r)) => r,
            Ok(_) => Err(bad_shape()),
            Err(e) => Err(net_err(e)),
        }
    }

    fn list(
        &self,
        port: &Port,
        kind: Option<KeyKind>,
        ino: Option<u128>,
    ) -> OsResult<Vec<ObjectKey>> {
        match self.call(port, StoreRequest::List(kind, ino)) {
            Ok(StoreResponse::Keys(r)) => r,
            Ok(_) => Err(bad_shape()),
            Err(e) => Err(net_err(e)),
        }
    }

    fn get_many(&self, port: &Port, keys: &[ObjectKey]) -> Vec<OsResult<Bytes>> {
        // One frame for the whole batch — the server still pipelines the
        // virtual-time cost; the socket pays one round trip.
        match self.call(port, StoreRequest::GetMany(keys.to_vec())) {
            Ok(StoreResponse::Datas(rs)) if rs.len() == keys.len() => rs,
            Ok(_) => keys.iter().map(|_| Err(bad_shape())).collect(),
            Err(e) => keys.iter().map(|_| Err(net_err(e))).collect(),
        }
    }

    fn put_many(&self, port: &Port, items: Vec<(ObjectKey, Bytes)>) -> Vec<OsResult<()>> {
        let n = items.len();
        match self.call(port, StoreRequest::PutMany(items)) {
            Ok(StoreResponse::Units(rs)) if rs.len() == n => rs,
            Ok(_) => (0..n).map(|_| Err(bad_shape())).collect(),
            Err(e) => (0..n).map(|_| Err(net_err(e))).collect(),
        }
    }

    fn get_range_many(
        &self,
        port: &Port,
        reqs: &[(ObjectKey, u64, usize)],
    ) -> Vec<OsResult<Bytes>> {
        let wire_reqs: Vec<(ObjectKey, u64, u64)> =
            reqs.iter().map(|&(k, o, l)| (k, o, l as u64)).collect();
        match self.call(port, StoreRequest::GetRangeMany(wire_reqs)) {
            Ok(StoreResponse::Datas(rs)) if rs.len() == reqs.len() => rs,
            Ok(_) => reqs.iter().map(|_| Err(bad_shape())).collect(),
            Err(e) => reqs.iter().map(|_| Err(net_err(e))).collect(),
        }
    }

    fn put_range_many(
        &self,
        port: &Port,
        items: Vec<(ObjectKey, u64, Bytes)>,
    ) -> Vec<OsResult<()>> {
        let n = items.len();
        let wire_items: Vec<(ObjectKey, u64, Bytes)> = items;
        match self.call(port, StoreRequest::PutRangeMany(wire_items)) {
            Ok(StoreResponse::Units(rs)) if rs.len() == n => rs,
            Ok(_) => (0..n).map(|_| Err(bad_shape())).collect(),
            Err(e) => (0..n).map(|_| Err(net_err(e))).collect(),
        }
    }

    fn delete_many(&self, port: &Port, keys: &[ObjectKey]) -> Vec<OsResult<()>> {
        match self.call(port, StoreRequest::DeleteMany(keys.to_vec())) {
            Ok(StoreResponse::Units(rs)) if rs.len() == keys.len() => rs,
            Ok(_) => keys.iter().map(|_| Err(bad_shape())).collect(),
            Err(e) => keys.iter().map(|_| Err(net_err(e))).collect(),
        }
    }
}

fn enc_frame<T: WireCodec>(v: &T) -> Vec<u8> {
    to_frame(v)
}

fn dec_frame<T: WireCodec>(buf: &[u8]) -> Option<T> {
    from_frame(buf).ok()
}

/// Codec table for the forwarded-operation protocol over TCP.
pub fn ops_wire() -> WireFns<OpRequest, OpResponse> {
    WireFns {
        enc_req: enc_frame::<OpRequest>,
        dec_req: dec_frame::<OpRequest>,
        enc_resp: enc_frame::<OpResponse>,
        dec_resp: dec_frame::<OpResponse>,
    }
}

/// Codec table for the lease protocol over TCP.
pub fn lease_wire() -> WireFns<LeaseRequest, LeaseResponse> {
    WireFns {
        enc_req: enc_frame::<LeaseRequest>,
        dec_req: dec_frame::<LeaseRequest>,
        enc_resp: enc_frame::<LeaseResponse>,
        dec_resp: dec_frame::<LeaseResponse>,
    }
}

/// Codec table for the object-store protocol over TCP.
pub fn store_wire() -> WireFns<StoreRequest, StoreResponse> {
    WireFns {
        enc_req: enc_frame::<StoreRequest>,
        dec_req: dec_frame::<StoreRequest>,
        enc_resp: enc_frame::<StoreResponse>,
        dec_resp: dec_frame::<StoreResponse>,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use arkfs_simkit::ClusterSpec;

    fn bus() -> Arc<arkfs_netsim::Bus<StoreRequest, StoreResponse>> {
        Arc::new(arkfs_netsim::Bus::new(0))
    }

    #[test]
    fn remote_store_forwards_over_a_transport() {
        let store: Arc<dyn ObjectStore> = Arc::new(ObjectCluster::new(ClusterConfig::rados(
            ClusterSpec::test_tiny(),
        )));
        let net = bus();
        net.register(STORE_NODE, Arc::new(StoreService::new(Arc::clone(&store))));
        let remote = RemoteStore::connect(net).unwrap();
        assert_eq!(remote.profile(), store.profile());

        let port = Port::new();
        let key = ObjectKey {
            kind: KeyKind::Data,
            ino: 42,
            index: 0,
        };
        remote
            .put(&port, key, Bytes::from_static(b"hello"))
            .unwrap();
        assert_eq!(remote.get(&port, key).unwrap().as_ref(), b"hello");
        assert_eq!(remote.head(&port, key).unwrap(), 5);
        assert_eq!(
            remote.list(&port, Some(KeyKind::Data), None).unwrap(),
            vec![key]
        );
        let (objects, bytes) = remote.usage();
        // Replication may multiply the physical counts; the point is the
        // numbers crossed the wire at all.
        assert!(objects >= 1 && bytes >= 5);
        remote.delete(&port, key).unwrap();
        assert_eq!(remote.get(&port, key), Err(OsError::NotFound));
        // Batch path.
        let keys: Vec<ObjectKey> = (0..3)
            .map(|i| ObjectKey {
                kind: KeyKind::Data,
                ino: 7,
                index: i,
            })
            .collect();
        let items: Vec<(ObjectKey, Bytes)> = keys
            .iter()
            .map(|&k| (k, Bytes::from(vec![k.index as u8; 4])))
            .collect();
        assert!(remote.put_many(&port, items).into_iter().all(|r| r.is_ok()));
        let got = remote.get_many(&port, &keys);
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].as_ref().unwrap().as_ref(), &[2u8; 4]);
    }

    #[test]
    fn store_frames_round_trip() {
        let reqs = vec![
            StoreRequest::Profile,
            StoreRequest::GetRange(
                ObjectKey {
                    kind: KeyKind::Journal,
                    ino: u128::MAX,
                    index: 9,
                },
                4,
                16,
            ),
            StoreRequest::List(Some(KeyKind::Inode), Some(77)),
            StoreRequest::PutMany(vec![(
                ObjectKey {
                    kind: KeyKind::Dentry,
                    ino: 3,
                    index: 1,
                },
                Bytes::from_static(b"\x00\x01"),
            )]),
        ];
        for req in &reqs {
            let frame = to_frame(req);
            let back: StoreRequest = from_frame(&frame).unwrap();
            assert_eq!(to_frame(&back), frame, "re-encode must be identical");
        }
        let resps = vec![
            StoreResponse::Unit(Err(OsError::Unsupported("ranged put"))),
            StoreResponse::Data(Ok(Bytes::from_static(b"abc"))),
            StoreResponse::Keys(Ok(vec![])),
            StoreResponse::Units(vec![Ok(()), Err(OsError::NotFound)]),
        ];
        for resp in &resps {
            let frame = to_frame(resp);
            let back: StoreResponse = from_frame(&frame).unwrap();
            assert_eq!(to_frame(&back), frame);
        }
    }
}
