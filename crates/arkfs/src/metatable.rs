//! The per-directory metadata table (§III-C).
//!
//! "When a client accesses a directory, the client tries to get a lease
//! of that directory. If the client succeeds [...] it loads several
//! metadata from object storage (such as dentries and inodes of the child
//! files, etc.) and constructs the metatable. [...] all the metadata
//! operations including the path-name resolution and permission checking
//! can be done locally."
//!
//! A [`Metatable`] is the authoritative in-memory state of one directory
//! while its leader's lease is valid: the directory inode, its dentries
//! (hash-bucketed), the inodes of its non-directory children, the
//! [`DirJournal`], and the [`FileLeaseTable`] for child-file read/write
//! leases. Mutations update memory, append journal ops, and track dirty
//! objects for checkpointing.

use crate::journal::{resolve_renames, scan_journal_stream, DirJournal, JournalOp};
use crate::meta::{dentry_bucket, DentryBlock, DentryEntry, InodeRecord};
use crate::partition::{partition_hi, partition_ino, partition_lo};
use crate::prt::Prt;
use arkfs_lease::FileLeaseTable;
use arkfs_simkit::{Nanos, Port, MSEC, SEC};
use arkfs_telemetry::Gauge;
use arkfs_vfs::{DirEntry, FileType, FsError, FsResult, Ino, SetAttr};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Window over which a partition leader measures its journal append
/// rate for load-triggered split/merge decisions.
const RATE_WINDOW: Nanos = 10 * MSEC;

/// In-memory authoritative state of one directory *partition* at its
/// leader. An unpartitioned directory is the single partition `0 of 1`,
/// whose partition key equals the directory inode — byte-identical to
/// the pre-partitioning layout.
#[derive(Debug)]
pub struct Metatable {
    /// The directory's own inode. Partitions > 0 hold a read-only copy
    /// loaded at takeover: the inode object (mtime, nlink, ACL) is
    /// maintained by partition 0 only.
    pub dir: InodeRecord,
    dentries: HashMap<String, DentryEntry>,
    /// Inodes of non-directory children (child directories are owned by
    /// their own leaders).
    children: HashMap<Ino, InodeRecord>,
    pub journal: DirJournal,
    pub file_leases: FileLeaseTable,
    buckets: u64,
    /// This table's partition index and the directory's partition count
    /// at load time; the table owns dentry buckets `[bucket_lo,
    /// bucket_hi)` and journals under `pkey`.
    partition: u32,
    pcount: u32,
    pkey: Ino,
    bucket_lo: u64,
    bucket_hi: u64,
    /// Split/merge quiesce: a frozen partition refuses service so its
    /// journal can be drained before the new map is installed.
    pub frozen: bool,
    /// `journal.sealed_depth.p<idx>`: this partition's sealed-but-not-
    /// durable transaction count, sampled after each mutation.
    pub(crate) sealed_depth: Option<Arc<Gauge>>,
    rate_window_start: Nanos,
    rate_appends: u64,
    dirty_dir: bool,
    dirty_children: HashSet<Ino>,
    deleted_children: HashSet<Ino>,
    dirty_buckets: HashSet<u64>,
}

impl Metatable {
    /// Build the metatable by pulling the directory's metadata from
    /// object storage, running journal recovery first if the stream is
    /// non-empty (§III-E: "the new leader checks whether the journal has
    /// any valid transactions").
    ///
    /// The pull is fully batched (§III-C at full fan-out): one GET for
    /// the directory inode, one batched sweep over every dentry bucket,
    /// then one batched fetch of every non-directory child inode — a
    /// takeover of an N-entry directory pays three store round trips
    /// (plus recovery), not N. Recovery already listed the journal
    /// stream, so its returned resume point is reused instead of a
    /// second LIST.
    pub fn load(
        prt: &Prt,
        port: &Port,
        dir_ino: Ino,
        buckets: u64,
        file_lease_period: Nanos,
    ) -> FsResult<Self> {
        Self::load_partition(prt, port, dir_ino, 0, 1, buckets, file_lease_period)
    }

    /// Load partition `pidx` of `pcount` of a directory: the map read is
    /// validated against the store's partition map first (a mismatch
    /// means the caller routed with a stale map and gets `Stale` to
    /// refresh), recovery replays only this partition's journal stream,
    /// and the bucket sweep covers only the owned range.
    pub fn load_partition(
        prt: &Prt,
        port: &Port,
        dir_ino: Ino,
        pidx: u32,
        pcount: u32,
        buckets: u64,
        file_lease_period: Nanos,
    ) -> FsResult<Self> {
        let t0 = port.now();
        let store_p = prt.load_pmap(port, dir_ino)?.map_or(1, |m| m.partitions);
        if store_p != pcount || pidx >= pcount {
            return Err(FsError::Stale);
        }
        let pkey = partition_ino(dir_ino, pidx);
        let lo = partition_lo(pidx, buckets, pcount);
        let hi = partition_hi(pidx, buckets, pcount);
        let recovery = recover_directory_scoped(prt, port, dir_ino, pkey, buckets, lo, hi)?;
        let dir = prt.load_inode(port, dir_ino)?;
        if dir.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        let mut dentries = HashMap::new();
        let bucket_ids: Vec<u64> = (lo..hi).collect();
        for block in prt.load_buckets_many(port, dir_ino, &bucket_ids)? {
            for entry in block.entries {
                dentries.insert(entry.name.clone(), entry);
            }
        }
        let mut child_inos: Vec<Ino> = dentries
            .values()
            .filter(|e| e.ftype != FileType::Directory)
            .map(|e| e.ino)
            .collect();
        // Deterministic fetch order (hash-order iteration would jitter
        // virtual-time arrivals between runs).
        child_inos.sort_unstable();
        let mut children = HashMap::new();
        for (ino, rec) in child_inos
            .iter()
            .zip(prt.load_inodes_many(port, &child_inos)?)
        {
            let rec = rec.ok_or(FsError::NotFound)?;
            children.insert(*ino, rec);
        }
        prt.count_takeover(1 + (hi - lo) + child_inos.len() as u64);
        prt.meta_span("meta.takeover", pkey, t0, port.now());
        let resume = recovery.next_seq;
        Ok(Metatable {
            dir,
            dentries,
            children,
            journal: DirJournal::new(pkey, resume),
            file_leases: FileLeaseTable::new(file_lease_period),
            buckets,
            partition: pidx,
            pcount,
            pkey,
            bucket_lo: lo,
            bucket_hi: hi,
            frozen: false,
            sealed_depth: Some(
                prt.telemetry()
                    .registry
                    .gauge(&format!("journal.sealed_depth.p{pidx}")),
            ),
            rate_window_start: 0,
            rate_appends: 0,
            dirty_dir: false,
            dirty_children: HashSet::new(),
            deleted_children: HashSet::new(),
            dirty_buckets: HashSet::new(),
        })
    }

    /// A metatable for a brand-new directory whose inode object was just
    /// written (mkdir path) — nothing to load.
    pub fn fresh(dir: InodeRecord, buckets: u64, file_lease_period: Nanos) -> Self {
        let ino = dir.ino;
        Metatable {
            dir,
            dentries: HashMap::new(),
            children: HashMap::new(),
            journal: DirJournal::new(ino, 0),
            file_leases: FileLeaseTable::new(file_lease_period),
            buckets,
            partition: 0,
            pcount: 1,
            pkey: ino,
            bucket_lo: 0,
            bucket_hi: buckets,
            frozen: false,
            sealed_depth: None,
            rate_window_start: 0,
            rate_appends: 0,
            dirty_dir: false,
            dirty_children: HashSet::new(),
            deleted_children: HashSet::new(),
            dirty_buckets: HashSet::new(),
        }
    }

    pub fn ino(&self) -> Ino {
        self.dir.ino
    }

    /// The key this partition leases and journals under (== [`Self::ino`]
    /// for partition 0 / unpartitioned directories).
    pub fn pkey(&self) -> Ino {
        self.pkey
    }

    pub fn partition(&self) -> u32 {
        self.partition
    }

    pub fn pcount(&self) -> u32 {
        self.pcount
    }

    /// Does this partition own `name`'s dentry bucket?
    pub fn owns_name(&self, name: &str) -> bool {
        if self.pcount == 1 {
            return true;
        }
        let b = dentry_bucket(name, self.buckets);
        b >= self.bucket_lo && b < self.bucket_hi
    }

    /// Record one journal append for the load trigger. Returns the
    /// measured append rate (per virtual second) each time a full rate
    /// window closes, `0` otherwise — so a caller polling per mutation
    /// sees at most one non-zero reading per window.
    pub fn note_append(&mut self, now: Nanos) -> u64 {
        if self.rate_appends == 0 {
            self.rate_window_start = now;
        }
        self.rate_appends += 1;
        let elapsed = now.saturating_sub(self.rate_window_start);
        if elapsed >= RATE_WINDOW {
            let rate = self.rate_appends.saturating_mul(SEC) / elapsed.max(1);
            self.rate_appends = 0;
            rate
        } else {
            0
        }
    }

    pub fn len(&self) -> usize {
        self.dentries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dentries.is_empty()
    }

    // ---- reads -----------------------------------------------------------

    pub fn lookup(&self, name: &str) -> Option<&DentryEntry> {
        self.dentries.get(name)
    }

    pub fn child_inode(&self, ino: Ino) -> Option<&InodeRecord> {
        self.children.get(&ino)
    }

    pub fn readdir(&self) -> Vec<DirEntry> {
        let mut out: Vec<DirEntry> = self
            .dentries
            .values()
            .map(|e| DirEntry {
                name: e.name.clone(),
                ino: e.ino,
                ftype: e.ftype,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    // ---- mutations (memory + journal) -------------------------------------

    fn mark_dentry(&mut self, name: &str) {
        self.dirty_buckets.insert(dentry_bucket(name, self.buckets));
    }

    fn touch_dir(&mut self, now: Nanos) {
        // Partitions > 0 hold a read-only directory-inode copy: mtime /
        // nlink maintenance belongs to partition 0 alone, so concurrent
        // partitions never write conflicting `i<dir>` updates. A
        // partitioned directory's mtime therefore tracks partition-0
        // activity only (documented relaxation, DESIGN.md §9).
        if self.partition != 0 {
            return;
        }
        self.dir.mtime = now;
        self.dir.ctime = now;
        self.dirty_dir = true;
        self.journal
            .append(JournalOp::PutInode(self.dir.clone()), now);
    }

    /// Insert a child file/symlink with a freshly-allocated inode.
    pub fn create_child(&mut self, rec: InodeRecord, name: &str, now: Nanos) -> FsResult<()> {
        if self.dentries.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        debug_assert_ne!(
            rec.ftype,
            FileType::Directory,
            "use add_subdir for directories"
        );
        let entry = DentryEntry {
            name: name.to_string(),
            ino: rec.ino,
            ftype: rec.ftype,
        };
        self.journal.append(JournalOp::PutInode(rec.clone()), now);
        self.journal.append(
            JournalOp::UpsertDentry {
                name: name.to_string(),
                ino: rec.ino,
                ftype: rec.ftype,
            },
            now,
        );
        self.deleted_children.remove(&rec.ino);
        self.dirty_children.insert(rec.ino);
        self.children.insert(rec.ino, rec);
        self.dentries.insert(name.to_string(), entry);
        self.mark_dentry(name);
        self.touch_dir(now);
        Ok(())
    }

    /// Register a subdirectory entry (its inode object is written eagerly
    /// by the caller so the child's first leader can load it).
    pub fn add_subdir(&mut self, name: &str, child_ino: Ino, now: Nanos) -> FsResult<()> {
        if self.dentries.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        self.journal.append(
            JournalOp::UpsertDentry {
                name: name.to_string(),
                ino: child_ino,
                ftype: FileType::Directory,
            },
            now,
        );
        self.dentries.insert(
            name.to_string(),
            DentryEntry {
                name: name.to_string(),
                ino: child_ino,
                ftype: FileType::Directory,
            },
        );
        self.mark_dentry(name);
        if self.partition == 0 {
            self.dir.nlink += 1;
        }
        self.touch_dir(now);
        Ok(())
    }

    /// Remove a child file/symlink. Returns its last inode record so the
    /// caller can delete the data chunks.
    pub fn unlink_child(&mut self, name: &str, now: Nanos) -> FsResult<InodeRecord> {
        let entry = self.dentries.get(name).ok_or(FsError::NotFound)?;
        if entry.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let ino = entry.ino;
        let rec = self
            .children
            .remove(&ino)
            .ok_or_else(|| FsError::Io(format!("dentry {name} points at unknown inode")))?;
        self.dentries.remove(name);
        self.journal.append(
            JournalOp::RemoveDentry {
                name: name.to_string(),
            },
            now,
        );
        self.journal.append(JournalOp::DeleteInode(ino), now);
        self.dirty_children.remove(&ino);
        self.deleted_children.insert(ino);
        self.mark_dentry(name);
        self.touch_dir(now);
        Ok(rec)
    }

    /// Remove a subdirectory entry (caller has verified emptiness while
    /// holding the child's lease).
    pub fn remove_subdir(&mut self, name: &str, now: Nanos) -> FsResult<Ino> {
        let entry = self.dentries.get(name).ok_or(FsError::NotFound)?;
        if entry.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        let ino = entry.ino;
        self.dentries.remove(name);
        self.journal.append(
            JournalOp::RemoveDentry {
                name: name.to_string(),
            },
            now,
        );
        self.journal.append(JournalOp::DeleteInode(ino), now);
        self.mark_dentry(name);
        if self.partition == 0 {
            self.dir.nlink = self.dir.nlink.saturating_sub(1);
        }
        self.touch_dir(now);
        Ok(ino)
    }

    /// Update a child file's size/mtime after data I/O. "If the
    /// modification time of a child file is renewed, the updated file
    /// inode will be written in the journal of the parent directory."
    pub fn set_child_size(&mut self, ino: Ino, size: u64, now: Nanos) -> FsResult<()> {
        let rec = self.children.get_mut(&ino).ok_or(FsError::Stale)?;
        rec.size = size;
        rec.mtime = now;
        let snapshot = rec.clone();
        self.journal.append(JournalOp::PutInode(snapshot), now);
        self.dirty_children.insert(ino);
        Ok(())
    }

    /// Apply a `setattr` to a child. Permission checks happen at the
    /// caller (which knows the credentials).
    pub fn set_child_attr(
        &mut self,
        ino: Ino,
        attr: &SetAttr,
        now: Nanos,
    ) -> FsResult<InodeRecord> {
        let rec = self.children.get_mut(&ino).ok_or(FsError::Stale)?;
        apply_setattr(rec, attr, now);
        let snapshot = rec.clone();
        self.journal
            .append(JournalOp::PutInode(snapshot.clone()), now);
        self.dirty_children.insert(ino);
        Ok(snapshot)
    }

    /// Apply a `setattr` to the directory itself.
    pub fn set_dir_attr(&mut self, attr: &SetAttr, now: Nanos) -> InodeRecord {
        apply_setattr(&mut self.dir, attr, now);
        self.dirty_dir = true;
        self.journal
            .append(JournalOp::PutInode(self.dir.clone()), now);
        self.dir.clone()
    }

    /// Replace the ACL on a child or the directory.
    pub fn set_acl(&mut self, target: Ino, acl: arkfs_vfs::Acl, now: Nanos) -> FsResult<()> {
        if target == self.dir.ino {
            self.dir.acl = acl;
            self.dir.ctime = now;
            self.dirty_dir = true;
            self.journal
                .append(JournalOp::PutInode(self.dir.clone()), now);
            return Ok(());
        }
        let rec = self.children.get_mut(&target).ok_or(FsError::Stale)?;
        rec.acl = acl;
        rec.ctime = now;
        let snapshot = rec.clone();
        self.journal.append(JournalOp::PutInode(snapshot), now);
        self.dirty_children.insert(target);
        Ok(())
    }

    /// Same-directory rename (no 2PC needed: one journal).
    pub fn rename_local(&mut self, from: &str, to: &str, now: Nanos) -> FsResult<()> {
        let entry = self.dentries.get(from).ok_or(FsError::NotFound)?.clone();
        if let Some(existing) = self.dentries.get(to) {
            // POSIX: replace only a matching type; non-empty dir targets
            // are the caller's job to reject.
            if existing.ftype == FileType::Directory && entry.ftype != FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            if existing.ftype != FileType::Directory && entry.ftype == FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            if existing.ftype != FileType::Directory {
                // Replacing a file: drop its inode.
                let victim = existing.ino;
                self.children.remove(&victim);
                self.journal.append(JournalOp::DeleteInode(victim), now);
                self.dirty_children.remove(&victim);
                self.deleted_children.insert(victim);
            }
        }
        self.dentries.remove(from);
        let moved = DentryEntry {
            name: to.to_string(),
            ino: entry.ino,
            ftype: entry.ftype,
        };
        self.dentries.insert(to.to_string(), moved);
        self.journal.append(
            JournalOp::RemoveDentry {
                name: from.to_string(),
            },
            now,
        );
        self.journal.append(
            JournalOp::UpsertDentry {
                name: to.to_string(),
                ino: entry.ino,
                ftype: entry.ftype,
            },
            now,
        );
        self.mark_dentry(from);
        self.mark_dentry(to);
        self.touch_dir(now);
        Ok(())
    }

    /// Detach a child (source half of a cross-directory rename). Returns
    /// the dentry and, for files, the inode record that must move with it.
    pub fn detach_child(
        &mut self,
        name: &str,
        now: Nanos,
    ) -> FsResult<(DentryEntry, Option<InodeRecord>)> {
        let entry = self.dentries.get(name).ok_or(FsError::NotFound)?.clone();
        let rec = if entry.ftype != FileType::Directory {
            let rec = self.children.remove(&entry.ino);
            self.dirty_children.remove(&entry.ino);
            rec
        } else {
            if self.partition == 0 {
                self.dir.nlink = self.dir.nlink.saturating_sub(1);
            }
            None
        };
        self.dentries.remove(name);
        self.mark_dentry(name);
        self.touch_dir(now);
        Ok((entry, rec))
    }

    /// Attach a child (destination half of a cross-directory rename).
    pub fn attach_child(
        &mut self,
        name: &str,
        entry_ino: Ino,
        ftype: FileType,
        rec: Option<InodeRecord>,
        now: Nanos,
    ) -> FsResult<()> {
        if self.dentries.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        self.dentries.insert(
            name.to_string(),
            DentryEntry {
                name: name.to_string(),
                ino: entry_ino,
                ftype,
            },
        );
        if ftype == FileType::Directory && self.partition == 0 {
            self.dir.nlink += 1;
        }
        if let Some(rec) = rec {
            self.dirty_children.insert(rec.ino);
            self.children.insert(rec.ino, rec);
        }
        self.mark_dentry(name);
        self.touch_dir(now);
        Ok(())
    }

    // ---- durability --------------------------------------------------------

    /// Write all dirty state to the home objects and truncate the
    /// journal. Caller must have committed the running transaction first
    /// (see `flush`). Fully batched: all dirty inodes (directory +
    /// children) go out as one multi-PUT, deleted children as one
    /// multi-DELETE, dirty buckets as one batched bucket write-back, and
    /// the journal stream as one multi-DELETE — a checkpoint of N dirty
    /// objects pays a handful of fan-outs, not N round trips.
    pub fn checkpoint(&mut self, prt: &Prt, port: &Port) -> FsResult<()> {
        let t0 = port.now();
        let _applied = self.journal.take_committed();
        // Sorted drains: hash-order iteration varies between runs and
        // would jitter the virtual-time arrival order on shard resources.
        let mut dirty_children: Vec<Ino> = self.dirty_children.drain().collect();
        dirty_children.sort_unstable();
        let mut dirty_recs: Vec<&InodeRecord> = Vec::new();
        if self.dirty_dir {
            dirty_recs.push(&self.dir);
        }
        for ino in &dirty_children {
            if let Some(rec) = self.children.get(ino) {
                dirty_recs.push(rec);
            }
        }
        prt.store_inodes_many(port, &dirty_recs)?;
        self.dirty_dir = false;
        let mut deleted: Vec<Ino> = self.deleted_children.drain().collect();
        deleted.sort_unstable();
        prt.delete_inodes_many(port, &deleted)?;
        let mut dirty_bucket_ids: Vec<u64> = self.dirty_buckets.drain().collect();
        dirty_bucket_ids.sort_unstable();
        let dirty_buckets: Vec<(u64, DentryBlock)> = dirty_bucket_ids
            .into_iter()
            .map(|bucket| (bucket, self.bucket_block(bucket)))
            .collect();
        prt.store_buckets_many(port, self.dir.ino, &dirty_buckets)?;
        self.journal.truncate(prt, port)?;
        prt.meta_span("meta.checkpoint", self.pkey, t0, port.now());
        Ok(())
    }

    /// Commit the running transaction (if any) and checkpoint.
    ///
    /// The commit is charged to the caller's timeline (fsync semantics:
    /// the journal must be durable), but checkpointing runs on the
    /// *checkpoint threads* (§III-E) — its virtual cost lands on a
    /// background timeline and does not stall the application. The
    /// functional writes still happen before this returns, so the store
    /// state is always consistent for takeover tests.
    pub fn flush(
        &mut self,
        prt: &Prt,
        port: &Port,
        lane: &arkfs_simkit::SharedResource,
        lane_service: Nanos,
    ) -> FsResult<()> {
        self.journal.commit(prt, port, lane, lane_service)?;
        let background = Port::starting_at(port.now());
        self.checkpoint(prt, &background)
    }

    fn bucket_block(&self, bucket: u64) -> DentryBlock {
        let mut entries: Vec<DentryEntry> = self
            .dentries
            .values()
            .filter(|e| dentry_bucket(&e.name, self.buckets) == bucket)
            .cloned()
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        DentryBlock { entries }
    }
}

fn apply_setattr(rec: &mut InodeRecord, attr: &SetAttr, now: Nanos) {
    if let Some(mode) = attr.mode {
        rec.mode = mode & 0o7777;
    }
    if let Some(uid) = attr.uid {
        rec.uid = uid;
    }
    if let Some(gid) = attr.gid {
        rec.gid = gid;
    }
    if let Some(atime) = attr.atime {
        rec.atime = atime;
    }
    if let Some(mtime) = attr.mtime {
        rec.mtime = mtime;
    }
    rec.ctime = now;
}

/// What [`recover_directory`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Intact transactions replayed onto the home objects.
    pub replayed: usize,
    /// The sequence number the next sealed transaction should use:
    /// one past the highest journal object observed (torn ones
    /// included, so a new leader never overwrites a stale object), or 0
    /// on an empty stream. Returned so `Metatable::load` does not have
    /// to LIST the journal a second time just to compute its resume
    /// point.
    pub next_seq: u64,
}

/// Journal recovery for a directory (§III-E.1): scan the journal stream
/// (one LIST + one batched multi-GET), fold 2PC decisions, apply the
/// surviving ops onto the home objects with batched base-state loads and
/// write-backs, and delete the stream with one batched multi-DELETE.
/// Idempotent; a no-op when the journal is empty.
pub fn recover_directory(prt: &Prt, port: &Port, dir_ino: Ino, buckets: u64) -> FsResult<Recovery> {
    recover_directory_scoped(prt, port, dir_ino, dir_ino, buckets, 0, buckets)
}

/// Partition-scoped journal recovery: replay the journal stream of
/// `journal_key` (a partition key of `dir_home`) against the owned
/// bucket range `[lo, hi)` only. Other partitions' buckets — possibly
/// being recovered or checkpointed concurrently by *their* leaders — are
/// never read or written. With `journal_key == dir_home` and the full
/// range this is exactly the classic single-journal recovery.
pub fn recover_directory_scoped(
    prt: &Prt,
    port: &Port,
    dir_home: Ino,
    journal_key: Ino,
    buckets: u64,
    lo: u64,
    hi: u64,
) -> FsResult<Recovery> {
    let t0 = port.now();
    let (seqs, txns) = scan_journal_stream(prt, port, journal_key)?;
    let next_seq = seqs.last().map_or(0, |s| s + 1);
    if txns.is_empty() {
        return Ok(Recovery {
            replayed: 0,
            next_seq,
        });
    }
    let ops = resolve_renames(prt, port, &txns)?;

    // Base state: what the home objects currently say — the directory
    // inode plus one batched sweep over the owned dentry buckets.
    let mut dir = match prt.load_inode(port, dir_home) {
        Ok(rec) => Some(rec),
        Err(FsError::NotFound) => None,
        Err(e) => return Err(e),
    };
    let mut dir_replayed = false;
    let mut dentries: HashMap<String, DentryEntry> = HashMap::new();
    let bucket_ids: Vec<u64> = (lo..hi).collect();
    for block in prt.load_buckets_many(port, dir_home, &bucket_ids)? {
        for entry in block.entries {
            dentries.insert(entry.name.clone(), entry);
        }
    }
    let mut put_inodes: HashMap<Ino, InodeRecord> = HashMap::new();
    let mut del_inodes: HashSet<Ino> = HashSet::new();

    let owned = |name: &str| {
        let b = dentry_bucket(name, buckets);
        b >= lo && b < hi
    };
    for op in ops {
        match op {
            JournalOp::PutInode(rec) => {
                if rec.ino == dir_home {
                    dir = Some(rec);
                    dir_replayed = true;
                } else {
                    del_inodes.remove(&rec.ino);
                    put_inodes.insert(rec.ino, rec);
                }
            }
            JournalOp::DeleteInode(ino) => {
                put_inodes.remove(&ino);
                del_inodes.insert(ino);
            }
            // Dentry ops outside the owned range cannot appear in this
            // partition's journal (leaders validate ownership before
            // journaling); the filter is a defensive bound so a corrupt
            // stream can never clobber a peer partition's buckets.
            JournalOp::UpsertDentry { name, ino, ftype } => {
                if owned(&name) {
                    dentries.insert(name.clone(), DentryEntry { name, ino, ftype });
                }
            }
            JournalOp::RemoveDentry { name } => {
                if owned(&name) {
                    dentries.remove(&name);
                }
            }
            // 2PC records were folded by resolve_renames.
            JournalOp::RenamePrepare { .. }
            | JournalOp::RenameCommit { .. }
            | JournalOp::RenameAbort { .. } => {}
        }
    }

    // Write everything back: one batched PUT for every surviving inode,
    // one batched DELETE for the dead ones, one batched bucket
    // write-back, and one batched DELETE of the journal stream (the scan
    // already listed it — no second LIST). The directory inode is
    // written by its own partition (journal_key == dir_home) or when the
    // journal replayed an update to it; secondary partitions otherwise
    // leave `i<dir>` alone so they never clobber partition 0's copy.
    let mut recs: Vec<&InodeRecord> = if journal_key == dir_home || dir_replayed {
        dir.iter().collect()
    } else {
        Vec::new()
    };
    recs.extend(put_inodes.values());
    // Deterministic write-back order (hash-order iteration would jitter
    // virtual-time arrivals between runs).
    recs.sort_unstable_by_key(|r| r.ino);
    prt.store_inodes_many(port, &recs)?;
    let mut dead: Vec<Ino> = del_inodes.into_iter().collect();
    dead.sort_unstable();
    prt.delete_inodes_many(port, &dead)?;
    let blocks: Vec<(u64, DentryBlock)> = (lo..hi)
        .map(|bucket| {
            let mut entries: Vec<DentryEntry> = dentries
                .values()
                .filter(|e| dentry_bucket(&e.name, buckets) == bucket)
                .cloned()
                .collect();
            entries.sort_by(|a, b| a.name.cmp(&b.name));
            (bucket, DentryBlock { entries })
        })
        .collect();
    prt.store_buckets_many(port, dir_home, &blocks)?;
    prt.delete_journal_many(port, journal_key, &seqs)?;
    prt.meta_span("meta.recover", journal_key, t0, port.now());
    Ok(Recovery {
        replayed: txns.len(),
        next_seq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Transaction;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use arkfs_simkit::SharedResource;
    use std::sync::Arc;

    const BUCKETS: u64 = 4;
    const DIR: Ino = 100;

    fn setup() -> (Prt, Port) {
        (
            Prt::new(Arc::new(ObjectCluster::new(ClusterConfig::test_tiny())), 64),
            Port::new(),
        )
    }

    fn dir_inode() -> InodeRecord {
        InodeRecord::new(DIR, FileType::Directory, 0o755, 0, 0, 0)
    }

    fn file_inode(ino: Ino) -> InodeRecord {
        InodeRecord::new(ino, FileType::Regular, 0o644, 0, 0, 0)
    }

    fn fresh_table() -> Metatable {
        Metatable::fresh(dir_inode(), BUCKETS, 1000)
    }

    #[test]
    fn create_lookup_unlink() {
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "a.txt", 5).unwrap();
        assert_eq!(mt.len(), 1);
        let e = mt.lookup("a.txt").unwrap();
        assert_eq!(e.ino, 1);
        assert_eq!(mt.child_inode(1).unwrap().mode, 0o644);
        assert_eq!(mt.dir.mtime, 5);
        // Duplicate create fails.
        assert_eq!(
            mt.create_child(file_inode(2), "a.txt", 6),
            Err(FsError::AlreadyExists)
        );
        let rec = mt.unlink_child("a.txt", 7).unwrap();
        assert_eq!(rec.ino, 1);
        assert!(mt.is_empty());
        assert_eq!(mt.unlink_child("a.txt", 8), Err(FsError::NotFound));
    }

    #[test]
    fn readdir_is_sorted() {
        let mut mt = fresh_table();
        for (i, name) in ["zeta", "alpha", "mid"].iter().enumerate() {
            mt.create_child(file_inode(i as Ino + 1), name, 0).unwrap();
        }
        let names: Vec<String> = mt.readdir().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn subdir_tracking_updates_nlink() {
        let mut mt = fresh_table();
        assert_eq!(mt.dir.nlink, 2);
        mt.add_subdir("sub", 200, 1).unwrap();
        assert_eq!(mt.dir.nlink, 3);
        assert_eq!(mt.lookup("sub").unwrap().ftype, FileType::Directory);
        // unlink refuses directories
        assert_eq!(mt.unlink_child("sub", 2), Err(FsError::IsADirectory));
        let ino = mt.remove_subdir("sub", 3).unwrap();
        assert_eq!(ino, 200);
        assert_eq!(mt.dir.nlink, 2);
        // remove_subdir refuses files
        mt.create_child(file_inode(5), "f", 4).unwrap();
        assert_eq!(mt.remove_subdir("f", 5), Err(FsError::NotADirectory));
    }

    #[test]
    fn set_child_size_and_attr() {
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "f", 0).unwrap();
        mt.set_child_size(1, 4096, 9).unwrap();
        let rec = mt.child_inode(1).unwrap();
        assert_eq!(rec.size, 4096);
        assert_eq!(rec.mtime, 9);
        let out = mt.set_child_attr(1, &SetAttr::chmod(0o600), 10).unwrap();
        assert_eq!(out.mode, 0o600);
        assert_eq!(out.ctime, 10);
        assert_eq!(mt.set_child_size(99, 0, 0), Err(FsError::Stale));
    }

    #[test]
    fn rename_local_moves_and_replaces() {
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "a", 0).unwrap();
        mt.create_child(file_inode(2), "b", 0).unwrap();
        mt.rename_local("a", "c", 1).unwrap();
        assert!(mt.lookup("a").is_none());
        assert_eq!(mt.lookup("c").unwrap().ino, 1);
        // Rename over an existing file replaces it and drops the victim.
        mt.rename_local("c", "b", 2).unwrap();
        assert_eq!(mt.lookup("b").unwrap().ino, 1);
        assert!(mt.child_inode(2).is_none());
        assert_eq!(mt.rename_local("missing", "x", 3), Err(FsError::NotFound));
    }

    #[test]
    fn flush_persists_and_reload_restores() {
        let (prt, port) = setup();
        let lane = SharedResource::ideal("lane");
        prt.store_inode(&port, &dir_inode()).unwrap();
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "keep.txt", 5).unwrap();
        mt.add_subdir("sub", 200, 6).unwrap();
        mt.flush(&prt, &port, &lane, 0).unwrap();
        assert!(mt.journal.is_quiescent());
        assert!(prt.list_journal(&port, DIR).unwrap().is_empty());

        let loaded = Metatable::load(&prt, &port, DIR, BUCKETS, 1000).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.lookup("keep.txt").unwrap().ino, 1);
        assert_eq!(loaded.lookup("sub").unwrap().ftype, FileType::Directory);
        assert_eq!(loaded.child_inode(1).unwrap().mode, 0o644);
        assert_eq!(loaded.dir.nlink, 3);
    }

    #[test]
    fn load_of_non_directory_fails() {
        let (prt, port) = setup();
        prt.store_inode(&port, &file_inode(9)).unwrap();
        assert_eq!(
            Metatable::load(&prt, &port, 9, BUCKETS, 1000).err(),
            Some(FsError::NotADirectory)
        );
    }

    #[test]
    fn recovery_replays_journaled_creates() {
        let (prt, port) = setup();
        let lane = SharedResource::ideal("lane");
        prt.store_inode(&port, &dir_inode()).unwrap();
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "durable.txt", 5).unwrap();
        // Commit the journal but CRASH before checkpoint.
        mt.journal.commit(&prt, &port, &lane, 0).unwrap();
        drop(mt);
        assert_eq!(prt.list_journal(&port, DIR).unwrap().len(), 1);

        // New leader loads: recovery replays the journal.
        let loaded = Metatable::load(&prt, &port, DIR, BUCKETS, 1000).unwrap();
        assert_eq!(loaded.lookup("durable.txt").unwrap().ino, 1);
        assert_eq!(loaded.child_inode(1).unwrap().ino, 1);
        assert!(
            prt.list_journal(&port, DIR).unwrap().is_empty(),
            "journal truncated"
        );
    }

    #[test]
    fn uncommitted_running_transaction_is_lost_on_crash() {
        let (prt, port) = setup();
        prt.store_inode(&port, &dir_inode()).unwrap();
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "volatile.txt", 5).unwrap();
        // Crash without commit: nothing reached the store.
        drop(mt);
        let loaded = Metatable::load(&prt, &port, DIR, BUCKETS, 1000).unwrap();
        assert!(loaded.lookup("volatile.txt").is_none());
    }

    #[test]
    fn recovery_handles_delete_after_create() {
        let (prt, port) = setup();
        let lane = SharedResource::ideal("lane");
        prt.store_inode(&port, &dir_inode()).unwrap();
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "f", 1).unwrap();
        mt.journal.commit(&prt, &port, &lane, 0).unwrap();
        mt.unlink_child("f", 2).unwrap();
        mt.journal.commit(&prt, &port, &lane, 0).unwrap();
        drop(mt); // crash before checkpoint

        let loaded = Metatable::load(&prt, &port, DIR, BUCKETS, 1000).unwrap();
        assert!(loaded.lookup("f").is_none());
        assert_eq!(prt.load_inode(&port, 1), Err(FsError::NotFound));
    }

    #[test]
    fn recovery_is_idempotent() {
        let (prt, port) = setup();
        prt.store_inode(&port, &dir_inode()).unwrap();
        let txn = Transaction {
            dir: DIR,
            seq: 0,
            ops: vec![
                JournalOp::PutInode(file_inode(1)),
                JournalOp::UpsertDentry {
                    name: "f".into(),
                    ino: 1,
                    ftype: FileType::Regular,
                },
            ],
        };
        prt.put_journal(&port, DIR, 0, txn.seal()).unwrap();
        let first = recover_directory(&prt, &port, DIR, BUCKETS).unwrap();
        assert_eq!(first.replayed, 1);
        assert_eq!(first.next_seq, 1);
        let second = recover_directory(&prt, &port, DIR, BUCKETS).unwrap();
        assert_eq!(second.replayed, 0);
        let mt = Metatable::load(&prt, &port, DIR, BUCKETS, 1000).unwrap();
        assert!(mt.lookup("f").is_some());
    }

    #[test]
    fn detach_attach_move_file_between_tables() {
        let mut src = fresh_table();
        let mut dst = Metatable::fresh(
            InodeRecord::new(300, FileType::Directory, 0o755, 0, 0, 0),
            BUCKETS,
            1000,
        );
        src.create_child(file_inode(1), "mv.txt", 0).unwrap();
        let (entry, rec) = src.detach_child("mv.txt", 1).unwrap();
        assert!(src.lookup("mv.txt").is_none());
        dst.attach_child("moved.txt", entry.ino, entry.ftype, rec, 1)
            .unwrap();
        assert_eq!(dst.lookup("moved.txt").unwrap().ino, 1);
        assert!(dst.child_inode(1).is_some());
        // Attach over existing name fails.
        let err = dst.attach_child("moved.txt", 9, FileType::Regular, None, 2);
        assert_eq!(err, Err(FsError::AlreadyExists));
    }

    #[test]
    fn note_append_reports_once_per_window() {
        let mut mt = fresh_table();
        assert_eq!(mt.note_append(0), 0);
        for _ in 0..98 {
            assert_eq!(mt.note_append(MSEC), 0);
        }
        // The 100th append closes the window: 100 appends over 10 ms.
        assert_eq!(mt.note_append(RATE_WINDOW), 100 * SEC / RATE_WINDOW);
        // Counter reset: the next append opens a fresh window.
        assert_eq!(mt.note_append(RATE_WINDOW + 1), 0);
    }

    #[test]
    fn partitioned_load_splits_namespace_and_validates_map() {
        use crate::partition::PartitionMap;
        let (prt, port) = setup();
        let lane = SharedResource::ideal("lane");
        prt.store_inode(&port, &dir_inode()).unwrap();
        let mut mt = fresh_table();
        for i in 0..16u64 {
            mt.create_child(file_inode(i as Ino + 1), &format!("f{i}"), 0)
                .unwrap();
        }
        mt.flush(&prt, &port, &lane, 0).unwrap();

        prt.store_pmap(
            &port,
            &PartitionMap {
                dir: DIR,
                epoch: 1,
                partitions: 2,
            },
        )
        .unwrap();

        // Loads routed with a stale or out-of-range view are refused.
        assert_eq!(
            Metatable::load(&prt, &port, DIR, BUCKETS, 1000).err(),
            Some(FsError::Stale)
        );
        assert_eq!(
            Metatable::load_partition(&prt, &port, DIR, 2, 2, BUCKETS, 1000).err(),
            Some(FsError::Stale)
        );

        let p0 = Metatable::load_partition(&prt, &port, DIR, 0, 2, BUCKETS, 1000).unwrap();
        let p1 = Metatable::load_partition(&prt, &port, DIR, 1, 2, BUCKETS, 1000).unwrap();
        assert_eq!(p0.pkey(), DIR, "partition 0 keys by the real inode");
        assert_ne!(p1.pkey(), DIR);
        assert_eq!((p0.partition(), p0.pcount()), (0, 2));
        assert_eq!(p0.len() + p1.len(), 16, "partitions tile the namespace");
        for e in p0.readdir() {
            assert!(p0.owns_name(&e.name) && !p1.owns_name(&e.name));
        }
        for e in p1.readdir() {
            assert!(p1.owns_name(&e.name) && !p0.owns_name(&e.name));
        }
    }

    #[test]
    fn partitioned_recovery_replays_each_partition_stream() {
        use crate::partition::PartitionMap;
        let (prt, port) = setup();
        let lane = SharedResource::ideal("lane");
        prt.store_inode(&port, &dir_inode()).unwrap();
        prt.store_pmap(
            &port,
            &PartitionMap {
                dir: DIR,
                epoch: 1,
                partitions: 2,
            },
        )
        .unwrap();
        let mut p0 = Metatable::load_partition(&prt, &port, DIR, 0, 2, BUCKETS, 1000).unwrap();
        let mut p1 = Metatable::load_partition(&prt, &port, DIR, 1, 2, BUCKETS, 1000).unwrap();
        let name0 = (0..)
            .map(|i| format!("a{i}"))
            .find(|n| p0.owns_name(n))
            .unwrap();
        let name1 = (0..)
            .map(|i| format!("a{i}"))
            .find(|n| p1.owns_name(n))
            .unwrap();
        p0.create_child(file_inode(1), &name0, 1).unwrap();
        p1.create_child(file_inode(2), &name1, 1).unwrap();
        p0.journal.commit(&prt, &port, &lane, 0).unwrap();
        p1.journal.commit(&prt, &port, &lane, 0).unwrap();
        let pkey1 = p1.pkey();
        drop(p0);
        drop(p1); // crash both leaders before checkpoint
        assert_eq!(prt.list_journal(&port, DIR).unwrap().len(), 1);
        assert_eq!(prt.list_journal(&port, pkey1).unwrap().len(), 1);

        // Partition 1's takeover replays only its own stream.
        let p1 = Metatable::load_partition(&prt, &port, DIR, 1, 2, BUCKETS, 1000).unwrap();
        assert_eq!(p1.lookup(&name1).unwrap().ino, 2);
        assert!(prt.list_journal(&port, pkey1).unwrap().is_empty());
        assert_eq!(
            prt.list_journal(&port, DIR).unwrap().len(),
            1,
            "partition 0's stream is untouched by partition 1's recovery"
        );
        let p0 = Metatable::load_partition(&prt, &port, DIR, 0, 2, BUCKETS, 1000).unwrap();
        assert_eq!(p0.lookup(&name0).unwrap().ino, 1);
        assert!(p0.lookup(&name1).is_none());
    }

    #[test]
    fn acl_set_on_dir_and_child() {
        use arkfs_vfs::{Acl, AclEntry};
        let mut mt = fresh_table();
        mt.create_child(file_inode(1), "f", 0).unwrap();
        let acl = Acl::new(vec![AclEntry::user(9, 0o6)]);
        mt.set_acl(1, acl.clone(), 5).unwrap();
        assert_eq!(mt.child_inode(1).unwrap().acl, acl);
        mt.set_acl(DIR, acl.clone(), 6).unwrap();
        assert_eq!(mt.dir.acl, acl);
        assert_eq!(mt.set_acl(999, acl, 7), Err(FsError::Stale));
    }
}
