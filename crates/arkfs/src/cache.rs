//! The user-level data object cache (§III-D).
//!
//! "ArkFS has its own user-level data object cache that basically serves
//! the same functionality as the page cache in the kernel. The number of
//! cache entries and the size of each entry are configurable parameters.
//! By default, the cache entry size is set to 2MB. [...] the radix tree
//! is used to index cached data objects. [...] ArkFS's object cache works
//! in a write-back manner."
//!
//! One cache per client. Entries are whole data chunks, indexed by a
//! per-file [`RadixTree`] keyed on chunk index. Eviction is LRU; evicting
//! a dirty entry hands it back to the caller for write-back.

use crate::radix::RadixTree;
use arkfs_telemetry::Counter;
use arkfs_vfs::Ino;
use std::collections::HashMap;
use std::sync::Arc;

/// A dirty entry displaced by eviction; the caller must write it back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted {
    pub ino: Ino,
    pub chunk: u64,
    pub data: Vec<u8>,
}

#[derive(Debug)]
struct CacheEntry {
    data: Vec<u8>,
    dirty: bool,
    tick: u64,
    /// Virtual time at which an asynchronously prefetched chunk becomes
    /// usable. A reader touching it earlier must wait (§III-D: the window
    /// "is asynchronously read in advance").
    ready_at: u64,
}

/// Write-back data chunk cache with LRU eviction.
#[derive(Debug)]
pub struct DataCache {
    files: HashMap<Ino, RadixTree<CacheEntry>>,
    capacity: usize,
    len: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    /// Registry counters mirrored on hit/miss when attached
    /// (`cache.hit.count` / `cache.miss.count`).
    counters: Option<(Arc<Counter>, Arc<Counter>)>,
}

impl DataCache {
    /// `capacity` is the maximum number of chunk entries held.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        DataCache {
            files: HashMap::new(),
            capacity,
            len: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            counters: None,
        }
    }

    /// Mirror hit/miss accounting into registry counters.
    pub fn attach_counters(&mut self, hit: Arc<Counter>, miss: Arc<Counter>) {
        self.counters = Some((hit, miss));
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Read from a cached chunk. Returns the chunk bytes if present.
    pub fn get(&mut self, ino: Ino, chunk: u64) -> Option<&[u8]> {
        self.get_ready(ino, chunk).map(|(data, _)| data)
    }

    /// Read from a cached chunk, also reporting when the chunk is ready
    /// (prefetched chunks carry their asynchronous completion time; the
    /// caller's timeline must wait until then).
    pub fn get_ready(&mut self, ino: Ino, chunk: u64) -> Option<(&[u8], u64)> {
        let tick = self.tick();
        match self.files.get_mut(&ino).and_then(|t| t.get_mut(chunk)) {
            Some(entry) => {
                entry.tick = tick;
                self.hits += 1;
                if let Some((hit, _)) = &self.counters {
                    hit.inc();
                }
                Some((&entry.data, entry.ready_at))
            }
            None => {
                self.misses += 1;
                if let Some((_, miss)) = &self.counters {
                    miss.inc();
                }
                None
            }
        }
    }

    /// True without touching LRU/ hit accounting (used by tests).
    pub fn contains(&self, ino: Ino, chunk: u64) -> bool {
        self.files.get(&ino).is_some_and(|t| t.contains(chunk))
    }

    /// Insert a chunk read from the store (clean). Returns dirty entries
    /// evicted to make room.
    pub fn insert_clean(&mut self, ino: Ino, chunk: u64, data: Vec<u8>) -> Vec<Evicted> {
        self.insert(ino, chunk, data, false, 0)
    }

    /// Insert an asynchronously prefetched chunk that becomes usable at
    /// `ready_at` on the virtual clock.
    pub fn insert_prefetched(
        &mut self,
        ino: Ino,
        chunk: u64,
        data: Vec<u8>,
        ready_at: u64,
    ) -> Vec<Evicted> {
        self.insert(ino, chunk, data, false, ready_at)
    }

    /// Bulk variant of [`DataCache::insert_clean`]: install many chunks of
    /// one file under a single call, running the LRU eviction scan once at
    /// the end instead of per entry. Entries are ticked in order, so the
    /// eviction outcome matches the serial insert loop.
    pub fn insert_clean_many(&mut self, ino: Ino, entries: Vec<(u64, Vec<u8>)>) -> Vec<Evicted> {
        for (chunk, data) in entries {
            self.install(ino, chunk, data, false, 0);
        }
        self.evict_to_capacity()
    }

    fn insert(
        &mut self,
        ino: Ino,
        chunk: u64,
        data: Vec<u8>,
        dirty: bool,
        ready_at: u64,
    ) -> Vec<Evicted> {
        self.install(ino, chunk, data, dirty, ready_at);
        self.evict_to_capacity()
    }

    /// Place an entry without running eviction (bulk callers evict once).
    fn install(&mut self, ino: Ino, chunk: u64, data: Vec<u8>, dirty: bool, ready_at: u64) {
        let tick = self.tick();
        let tree = self.files.entry(ino).or_default();
        if tree
            .insert(
                chunk,
                CacheEntry {
                    data,
                    dirty,
                    tick,
                    ready_at,
                },
            )
            .is_none()
        {
            self.len += 1;
        }
    }

    /// Write into a chunk at `offset`, extending it as needed, marking it
    /// dirty. The chunk must already be resident (callers install it with
    /// `insert_clean` first when doing a partial overwrite of store
    /// data). Returns evictions.
    pub fn write(&mut self, ino: Ino, chunk: u64, offset: usize, data: &[u8]) -> Vec<Evicted> {
        let tick = self.tick();
        let tree = self.files.entry(ino).or_default();
        match tree.get_mut(chunk) {
            Some(entry) => {
                let end = offset + data.len();
                if entry.data.len() < end {
                    entry.data.resize(end, 0);
                }
                entry.data[offset..end].copy_from_slice(data);
                entry.dirty = true;
                entry.tick = tick;
                entry.ready_at = 0;
                Vec::new()
            }
            None => {
                let mut buf = vec![0u8; offset + data.len()];
                buf[offset..].copy_from_slice(data);
                self.insert(ino, chunk, buf, true, 0)
            }
        }
    }

    /// Apply a multi-chunk write as one operation. `pieces` are
    /// `(chunk, offset_within_chunk, bytes)` spans of one contiguous
    /// write; `fills` carries store-resident chunk contents to install
    /// (clean) right before the first write lands on that chunk — the
    /// read-modify step of a partial overwrite. Each chunk's fill is
    /// installed immediately before its write so eviction pressure can
    /// never displace a fill before its write applies; dirty evictions
    /// from the whole span accumulate into the returned batch.
    pub fn write_many(
        &mut self,
        ino: Ino,
        mut fills: HashMap<u64, Vec<u8>>,
        pieces: &[(u64, usize, &[u8])],
    ) -> Vec<Evicted> {
        let mut out = Vec::new();
        for &(chunk, offset, data) in pieces {
            if let Some(fill) = fills.remove(&chunk) {
                out.extend(self.insert(ino, chunk, fill, false, 0));
            }
            out.extend(self.write(ino, chunk, offset, data));
        }
        out
    }

    fn evict_to_capacity(&mut self) -> Vec<Evicted> {
        let mut out = Vec::new();
        while self.len > self.capacity {
            // Find the globally least-recently-used entry.
            let mut victim: Option<(Ino, u64, u64)> = None;
            for (&ino, tree) in &self.files {
                for (chunk, entry) in tree.iter() {
                    match victim {
                        Some((_, _, best)) if entry.tick >= best => {}
                        _ => victim = Some((ino, chunk, entry.tick)),
                    }
                }
            }
            let Some((ino, chunk, _)) = victim else { break };
            let entry = self
                .files
                .get_mut(&ino)
                .and_then(|t| t.remove(chunk))
                .expect("victim must exist");
            self.len -= 1;
            if self.files.get(&ino).is_some_and(|t| t.is_empty()) {
                self.files.remove(&ino);
            }
            if entry.dirty {
                out.push(Evicted {
                    ino,
                    chunk,
                    data: entry.data,
                });
            }
        }
        out
    }

    /// Take the dirty chunks of one file for write-back; they remain
    /// cached but clean afterwards.
    pub fn take_dirty(&mut self, ino: Ino) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        if let Some(tree) = self.files.get_mut(&ino) {
            let chunks: Vec<u64> = tree.iter().map(|(k, _)| k).collect();
            for chunk in chunks {
                if let Some(entry) = tree.get_mut(chunk) {
                    if entry.dirty {
                        entry.dirty = false;
                        out.push((chunk, entry.data.clone()));
                    }
                }
            }
        }
        out
    }

    /// Take every dirty chunk (global sync).
    pub fn take_all_dirty(&mut self) -> Vec<Evicted> {
        let inos: Vec<Ino> = self.files.keys().copied().collect();
        let mut out = Vec::new();
        for ino in inos {
            for (chunk, data) in self.take_dirty(ino) {
                out.push(Evicted { ino, chunk, data });
            }
        }
        out
    }

    /// Drop every cached chunk of a file (lease revocation, delete,
    /// or the fio benchmark's cache-drop step). Dirty data is DISCARDED —
    /// flush first if it matters.
    pub fn invalidate_file(&mut self, ino: Ino) {
        if let Some(tree) = self.files.remove(&ino) {
            self.len -= tree.len();
        }
    }

    /// Drop cached chunks at and beyond `first_chunk` (truncate).
    pub fn truncate_file(&mut self, ino: Ino, first_chunk: u64) {
        if let Some(tree) = self.files.get_mut(&ino) {
            let removed = tree.split_off(first_chunk);
            self.len -= removed.len();
            if tree.is_empty() {
                self.files.remove(&ino);
            }
        }
    }

    /// Number of dirty entries (diagnostics).
    pub fn dirty_count(&self) -> usize {
        self.files
            .values()
            .map(|t| t.iter().filter(|(_, e)| e.dirty).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut c = DataCache::new(4);
        assert!(c.get(1, 0).is_none());
        c.write(1, 0, 0, b"hello");
        assert_eq!(c.get(1, 0).unwrap(), b"hello");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn partial_write_extends_entry() {
        let mut c = DataCache::new(4);
        c.insert_clean(1, 0, b"abcdef".to_vec());
        c.write(1, 0, 4, b"XYZ123");
        assert_eq!(c.get(1, 0).unwrap(), b"abcdXYZ123");
        // Write into an absent chunk zero-fills the gap.
        c.write(1, 1, 3, b"q");
        assert_eq!(c.get(1, 1).unwrap(), b"\0\0\0q");
    }

    #[test]
    fn lru_evicts_oldest_clean_silently() {
        let mut c = DataCache::new(2);
        assert!(c.insert_clean(1, 0, vec![0]).is_empty());
        assert!(c.insert_clean(1, 1, vec![1]).is_empty());
        let ev = c.insert_clean(1, 2, vec![2]);
        assert!(ev.is_empty(), "clean eviction returns nothing");
        assert_eq!(c.len(), 2);
        assert!(!c.contains(1, 0), "oldest entry evicted");
    }

    #[test]
    fn lru_respects_recent_access() {
        let mut c = DataCache::new(2);
        c.insert_clean(1, 0, vec![0]);
        c.insert_clean(1, 1, vec![1]);
        c.get(1, 0); // refresh chunk 0
        c.insert_clean(1, 2, vec![2]);
        assert!(c.contains(1, 0));
        assert!(!c.contains(1, 1));
    }

    #[test]
    fn dirty_eviction_hands_back_data() {
        let mut c = DataCache::new(1);
        c.write(1, 0, 0, b"dirty");
        let ev = c.write(2, 0, 0, b"new");
        assert_eq!(
            ev,
            vec![Evicted {
                ino: 1,
                chunk: 0,
                data: b"dirty".to_vec()
            }]
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn take_dirty_cleans_but_keeps_entries() {
        let mut c = DataCache::new(8);
        c.write(1, 0, 0, b"a");
        c.write(1, 3, 0, b"b");
        c.insert_clean(1, 5, b"c".to_vec());
        c.write(2, 0, 0, b"other");
        let dirty = c.take_dirty(1);
        assert_eq!(dirty, vec![(0, b"a".to_vec()), (3, b"b".to_vec())]);
        assert_eq!(c.dirty_count(), 1); // file 2 still dirty
        assert_eq!(c.get(1, 0).unwrap(), b"a"); // data still cached
        assert!(c.take_dirty(1).is_empty(), "second take is empty");
    }

    #[test]
    fn take_all_dirty_spans_files() {
        let mut c = DataCache::new(8);
        c.write(1, 0, 0, b"a");
        c.write(2, 1, 0, b"b");
        let mut all = c.take_all_dirty();
        all.sort_by_key(|e| e.ino);
        assert_eq!(all.len(), 2);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn invalidate_drops_whole_file() {
        let mut c = DataCache::new(8);
        c.write(1, 0, 0, b"a");
        c.write(1, 1, 0, b"b");
        c.write(2, 0, 0, b"keep");
        c.invalidate_file(1);
        assert_eq!(c.len(), 1);
        assert!(!c.contains(1, 0));
        assert!(c.contains(2, 0));
    }

    #[test]
    fn truncate_drops_tail_chunks() {
        let mut c = DataCache::new(8);
        for chunk in 0..5 {
            c.write(1, chunk, 0, b"x");
        }
        c.truncate_file(1, 2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(1, 1));
        assert!(!c.contains(1, 2));
    }

    #[test]
    fn insert_clean_many_matches_serial_eviction() {
        let mut serial = DataCache::new(2);
        let mut bulk = DataCache::new(2);
        serial.write(1, 0, 0, b"dirty");
        bulk.write(1, 0, 0, b"dirty");
        let entries: Vec<(u64, Vec<u8>)> = (1..4).map(|c| (c, vec![c as u8])).collect();
        let mut ev_serial = Vec::new();
        for (chunk, data) in entries.clone() {
            ev_serial.extend(serial.insert_clean(1, chunk, data));
        }
        let ev_bulk = bulk.insert_clean_many(1, entries);
        assert_eq!(ev_bulk, ev_serial, "dirty chunk handed back either way");
        assert_eq!(bulk.len(), serial.len());
        for chunk in 0..4 {
            assert_eq!(bulk.contains(1, chunk), serial.contains(1, chunk));
        }
    }

    #[test]
    fn write_many_installs_fills_before_writes() {
        let mut c = DataCache::new(8);
        let mut fills = HashMap::new();
        fills.insert(0u64, b"abcdefgh".to_vec());
        // Partial overwrite of chunk 0 merges with the fill; chunk 1 is a
        // fresh write with no fill.
        let pieces: [(u64, usize, &[u8]); 2] = [(0, 2, b"XY"), (1, 0, b"new")];
        let ev = c.write_many(1, fills, &pieces);
        assert!(ev.is_empty());
        assert_eq!(c.get(1, 0).unwrap(), b"abXYefgh");
        assert_eq!(c.get(1, 1).unwrap(), b"new");
        assert_eq!(c.dirty_count(), 2);
    }

    #[test]
    fn write_many_accumulates_evictions_under_pressure() {
        // Capacity 1: every chunk of the span displaces the previous one;
        // all dirty evictions must come back from the single call.
        let mut c = DataCache::new(1);
        let pieces: [(u64, usize, &[u8]); 3] = [(0, 0, b"a"), (1, 0, b"b"), (2, 0, b"c")];
        let ev = c.write_many(1, HashMap::new(), &pieces);
        assert_eq!(ev.len(), 2);
        assert_eq!(
            ev[0],
            Evicted {
                ino: 1,
                chunk: 0,
                data: b"a".to_vec()
            }
        );
        assert_eq!(
            ev[1],
            Evicted {
                ino: 1,
                chunk: 1,
                data: b"b".to_vec()
            }
        );
        assert_eq!(c.get(1, 2).unwrap(), b"c");
        // A fill is never displaced before its own write applies, even at
        // capacity 1.
        let mut fills = HashMap::new();
        fills.insert(5u64, b"stored".to_vec());
        let pieces: [(u64, usize, &[u8]); 1] = [(5, 0, b"W")];
        let ev = c.write_many(1, fills, &pieces);
        assert_eq!(
            ev,
            vec![Evicted {
                ino: 1,
                chunk: 2,
                data: b"c".to_vec()
            }]
        );
        assert_eq!(c.get(1, 5).unwrap(), b"Wtored");
    }

    #[test]
    fn capacity_one_works() {
        let mut c = DataCache::new(1);
        for chunk in 0..10 {
            c.insert_clean(1, chunk, vec![chunk as u8]);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, 9).unwrap(), &[9]);
    }
}
