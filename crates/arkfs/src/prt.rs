//! The POSIX-REST Translator (PRT) module (§III-F).
//!
//! Translates typed file-system state — inode records, dentry buckets,
//! journal transactions, file data at byte offsets — into REST object
//! operations on any [`ObjectStore`] backend. "The PRT module divides the
//! file data into multiple objects if the file size exceeds the maximum
//! object size defined by the object storage."
//!
//! On backends without partial writes (the S3 profile), sub-chunk writes
//! fall back to read-modify-write of the whole data object — exactly the
//! behaviour the paper criticizes in S3FS, except confined to one chunk
//! rather than the whole file.

use crate::meta::{DentryBlock, InodeRecord};
use crate::partition::{PartitionMap, PMAP_BUCKET};
use crate::wire::WireCodec;
use arkfs_objstore::{ObjectKey, ObjectStore, OsError};
use arkfs_simkit::Port;
use arkfs_telemetry::{Counter, LatencyHistogram, Telemetry, TraceCtx};
use arkfs_vfs::{FsError, FsResult, Ino};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Map an object-store error onto the file system error space.
pub fn map_os_err(e: OsError) -> FsError {
    match e {
        OsError::NotFound => FsError::NotFound,
        OsError::Unsupported(what) => FsError::Unsupported(what),
        OsError::Injected(what) => FsError::Io(format!("injected fault: {what}")),
        OsError::BadRange => FsError::InvalidArgument,
        OsError::BadKey => FsError::Io("malformed key".into()),
        OsError::InsufficientFragments => {
            FsError::Io("too many erasure-coded fragments unavailable".into())
        }
    }
}

/// Metadata-path counter handles into the deployment's telemetry
/// registry (`meta.*` names): how many metadata objects moved through
/// the batched `*_many` helpers, and how many objects leader takeovers
/// (`Metatable::load`) pulled. Deployment-wide (the `Prt` is shared by
/// every client of a cluster).
struct MetaCounters {
    /// Metadata objects fetched through batched GETs.
    batched_gets: Arc<Counter>,
    /// Metadata objects written through batched PUTs.
    batched_puts: Arc<Counter>,
    /// Metadata objects removed through batched DELETEs.
    batched_deletes: Arc<Counter>,
    /// Objects loaded by leader takeovers (metatable loads).
    takeover_objects_loaded: Arc<Counter>,
    /// Sealed transactions pushed back to `running` after a failed
    /// journal append (`journal.commit_retry.count`).
    commit_retries: Arc<Counter>,
    /// Journal append flights: store round trips carrying sealed
    /// transactions (a batched multi-PUT is one flight per pipelined
    /// chunk). With `journal.flight.txns` this exposes the group-commit
    /// amortization — grouped sealing means fewer, fatter flights.
    journal_flights: Arc<Counter>,
    /// Sealed transactions carried by journal append flights.
    journal_flight_txns: Arc<Counter>,
}

/// Typed object-storage access for one ArkFS deployment.
pub struct Prt {
    store: Arc<dyn ObjectStore>,
    chunk_size: u64,
    telemetry: Arc<Telemetry>,
    meta: MetaCounters,
    /// `op.<name>.durable_ns` histogram handles, cached per static op
    /// name so the per-landing path neither allocates the formatted
    /// name nor walks the registry map again (the op-name family is a
    /// small compile-time set).
    durable_hists: Mutex<HashMap<&'static str, Arc<LatencyHistogram>>>,
}

impl Prt {
    pub fn new(store: Arc<dyn ObjectStore>, chunk_size: u64) -> Self {
        assert!(chunk_size > 0);
        // Adopt the store's telemetry so one registry spans the whole
        // deployment; stores without one get a private instance.
        let telemetry = store.telemetry().cloned().unwrap_or_else(Telemetry::new);
        let reg = &telemetry.registry;
        let meta = MetaCounters {
            batched_gets: reg.counter("meta.get.objects"),
            batched_puts: reg.counter("meta.put.objects"),
            batched_deletes: reg.counter("meta.delete.objects"),
            takeover_objects_loaded: reg.counter("meta.takeover.objects"),
            commit_retries: reg.counter("journal.commit_retry.count"),
            journal_flights: reg.counter("journal.flight.count"),
            journal_flight_txns: reg.counter("journal.flight.txns"),
        };
        Prt {
            store,
            chunk_size,
            telemetry,
            meta,
            durable_hists: Mutex::new(HashMap::new()),
        }
    }

    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// The deployment-wide telemetry this PRT (and its store) report to.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Record objects pulled by a leader takeover (`Metatable::load`).
    pub(crate) fn count_takeover(&self, objects: u64) {
        self.meta.takeover_objects_loaded.add(objects);
    }

    /// Record a sealed transaction pushed back for retry after a failed
    /// journal append (`journal.commit_retry.count`).
    pub(crate) fn count_commit_retry(&self) {
        self.meta.commit_retries.inc();
    }

    /// Record the start-to-durable latency of one mutation into
    /// `op.<name>.durable_ns`, and — when tracing is on — emit the
    /// durable landing as a *follow-from* span of the mutation's
    /// trace: causally linked to the originating client op, flagged
    /// background so the critical-path analyzer excludes it from the
    /// op's ack window (the op already acked when this ran).
    pub(crate) fn record_durable(
        &self,
        op: &'static str,
        dir: Ino,
        start: arkfs_simkit::Nanos,
        end: arkfs_simkit::Nanos,
        ctx: TraceCtx,
    ) {
        let hist = {
            let mut m = self.durable_hists.lock();
            Arc::clone(m.entry(op).or_insert_with(|| {
                self.telemetry
                    .registry
                    .histogram(&format!("{op}.durable_ns"))
            }))
        };
        hist.record(end.saturating_sub(start));
        let tracer = &self.telemetry.tracer;
        if tracer.enabled() {
            tracer.record_with_ctx(
                ctx.as_background(),
                arkfs_telemetry::PID_META,
                dir as u32,
                op,
                "durable",
                start,
                end,
            );
        }
    }

    /// Record a metadata-path span on the directory's trace track
    /// (no-op unless tracing is enabled). The track id is the low 32
    /// bits of the directory inode.
    pub(crate) fn meta_span(
        &self,
        name: &'static str,
        dir: Ino,
        start: arkfs_simkit::Nanos,
        end: arkfs_simkit::Nanos,
    ) {
        let tracer = &self.telemetry.tracer;
        if tracer.enabled() {
            tracer.record(
                arkfs_telemetry::PID_META,
                dir as u32,
                name,
                "meta",
                start,
                end,
            );
        }
    }

    // ---- inode records -------------------------------------------------

    /// Ceiling on the number of objects a single batched metadata flight
    /// puts in the air at once. A whole-directory checkpoint or takeover
    /// can touch thousands of objects; firing them all at one instant
    /// drives the store's contention-depth model to its saturation
    /// factor and monopolizes shard timelines against foreground
    /// traffic. Flights of this size keep per-shard depth low (the win
    /// over a serial loop is already ~FLIGHT× per flight) while the
    /// next flight departs only when the previous one lands.
    const MAX_META_FLIGHT: usize = 16;

    pub fn load_inode(&self, port: &Port, ino: Ino) -> FsResult<InodeRecord> {
        let data = self
            .store
            .get(port, ObjectKey::inode(ino))
            .map_err(map_os_err)?;
        InodeRecord::from_bytes(&data).map_err(|e| FsError::Io(e.to_string()))
    }

    pub fn store_inode(&self, port: &Port, rec: &InodeRecord) -> FsResult<()> {
        self.store
            .put(port, ObjectKey::inode(rec.ino), Bytes::from(rec.to_bytes()))
            .map_err(map_os_err)
    }

    pub fn delete_inode(&self, port: &Port, ino: Ino) -> FsResult<()> {
        match self.store.delete(port, ObjectKey::inode(ino)) {
            Ok(()) | Err(OsError::NotFound) => Ok(()),
            Err(e) => Err(map_os_err(e)),
        }
    }

    /// Batched inode fetch: one pipelined multi-GET, the caller pays the
    /// slowest record instead of one round trip per inode. A missing
    /// inode yields `None` (recovery base states tolerate absent
    /// objects); other errors fail the batch.
    pub fn load_inodes_many(
        &self,
        port: &Port,
        inos: &[Ino],
    ) -> FsResult<Vec<Option<InodeRecord>>> {
        if inos.is_empty() {
            return Ok(Vec::new());
        }
        self.meta.batched_gets.add(inos.len() as u64);
        let keys: Vec<ObjectKey> = inos.iter().map(|&i| ObjectKey::inode(i)).collect();
        let mut out = Vec::with_capacity(keys.len());
        for flight in keys.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.get_many(port, flight) {
                out.push(match res {
                    Ok(data) => InodeRecord::from_bytes(&data)
                        .map(Some)
                        .map_err(|e| FsError::Io(e.to_string()))?,
                    Err(OsError::NotFound) => None,
                    Err(e) => return Err(map_os_err(e)),
                });
            }
        }
        Ok(out)
    }

    /// Batched inode write-back: one pipelined multi-PUT.
    pub fn store_inodes_many(&self, port: &Port, recs: &[&InodeRecord]) -> FsResult<()> {
        if recs.is_empty() {
            return Ok(());
        }
        self.meta.batched_puts.add(recs.len() as u64);
        let items: Vec<(ObjectKey, Bytes)> = recs
            .iter()
            .map(|rec| (ObjectKey::inode(rec.ino), Bytes::from(rec.to_bytes())))
            .collect();
        for flight in items.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.put_many(port, flight.to_vec()) {
                res.map_err(map_os_err)?;
            }
        }
        Ok(())
    }

    /// Batched inode removal: one pipelined multi-DELETE, missing inodes
    /// tolerated (idempotent, like [`Prt::delete_inode`]).
    pub fn delete_inodes_many(&self, port: &Port, inos: &[Ino]) -> FsResult<()> {
        if inos.is_empty() {
            return Ok(());
        }
        self.meta.batched_deletes.add(inos.len() as u64);
        let keys: Vec<ObjectKey> = inos.iter().map(|&i| ObjectKey::inode(i)).collect();
        for flight in keys.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.delete_many(port, flight) {
                match res {
                    Ok(()) | Err(OsError::NotFound) => {}
                    Err(e) => return Err(map_os_err(e)),
                }
            }
        }
        Ok(())
    }

    // ---- dentry buckets ------------------------------------------------

    /// Load one dentry bucket; a missing object is an empty bucket.
    pub fn load_bucket(&self, port: &Port, dir: Ino, bucket: u64) -> FsResult<DentryBlock> {
        match self.store.get(port, ObjectKey::dentry_bucket(dir, bucket)) {
            Ok(data) => DentryBlock::from_bytes(&data).map_err(|e| FsError::Io(e.to_string())),
            Err(OsError::NotFound) => Ok(DentryBlock::default()),
            Err(e) => Err(map_os_err(e)),
        }
    }

    pub fn store_bucket(
        &self,
        port: &Port,
        dir: Ino,
        bucket: u64,
        block: &DentryBlock,
    ) -> FsResult<()> {
        let key = ObjectKey::dentry_bucket(dir, bucket);
        if block.entries.is_empty() {
            return match self.store.delete(port, key) {
                Ok(()) | Err(OsError::NotFound) => Ok(()),
                Err(e) => Err(map_os_err(e)),
            };
        }
        self.store
            .put(port, key, Bytes::from(block.to_bytes()))
            .map_err(map_os_err)
    }

    /// Batched dentry-bucket sweep: one pipelined multi-GET over the
    /// requested bucket indices; missing objects read as empty buckets.
    /// A whole-directory load pays the slowest bucket, not the sum.
    pub fn load_buckets_many(
        &self,
        port: &Port,
        dir: Ino,
        buckets: &[u64],
    ) -> FsResult<Vec<DentryBlock>> {
        if buckets.is_empty() {
            return Ok(Vec::new());
        }
        self.meta.batched_gets.add(buckets.len() as u64);
        let keys: Vec<ObjectKey> = buckets
            .iter()
            .map(|&b| ObjectKey::dentry_bucket(dir, b))
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for flight in keys.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.get_many(port, flight) {
                out.push(match res {
                    Ok(data) => {
                        DentryBlock::from_bytes(&data).map_err(|e| FsError::Io(e.to_string()))?
                    }
                    Err(OsError::NotFound) => DentryBlock::default(),
                    Err(e) => return Err(map_os_err(e)),
                });
            }
        }
        Ok(out)
    }

    /// Batched dentry-bucket write-back. Empty blocks delete their
    /// object (same rule as [`Prt::store_bucket`]); the non-empty blocks
    /// go out as one multi-PUT and the empties as one multi-DELETE, so a
    /// checkpoint of many dirty buckets pays two fan-outs at most.
    pub fn store_buckets_many(
        &self,
        port: &Port,
        dir: Ino,
        blocks: &[(u64, DentryBlock)],
    ) -> FsResult<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        let mut puts = Vec::new();
        let mut dels = Vec::new();
        for (bucket, block) in blocks {
            let key = ObjectKey::dentry_bucket(dir, *bucket);
            if block.entries.is_empty() {
                dels.push(key);
            } else {
                puts.push((key, Bytes::from(block.to_bytes())));
            }
        }
        self.meta.batched_puts.add(puts.len() as u64);
        self.meta.batched_deletes.add(dels.len() as u64);
        for flight in puts.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.put_many(port, flight.to_vec()) {
                res.map_err(map_os_err)?;
            }
        }
        for flight in dels.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.delete_many(port, flight) {
                match res {
                    Ok(()) | Err(OsError::NotFound) => {}
                    Err(e) => return Err(map_os_err(e)),
                }
            }
        }
        Ok(())
    }

    /// Delete every dentry bucket of a directory.
    pub fn delete_buckets(&self, port: &Port, dir: Ino) -> FsResult<()> {
        let keys = self
            .store
            .list(port, Some(arkfs_objstore::KeyKind::Dentry), Some(dir))
            .map_err(map_os_err)?;
        if keys.is_empty() {
            return Ok(());
        }
        self.meta.batched_deletes.add(keys.len() as u64);
        for flight in keys.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.delete_many(port, flight) {
                match res {
                    Ok(()) | Err(OsError::NotFound) => {}
                    Err(e) => return Err(map_os_err(e)),
                }
            }
        }
        Ok(())
    }

    // ---- partition maps --------------------------------------------------

    /// Load a directory's partition map; an absent object means the
    /// directory is unpartitioned.
    pub fn load_pmap(&self, port: &Port, dir: Ino) -> FsResult<Option<PartitionMap>> {
        match self
            .store
            .get(port, ObjectKey::dentry_bucket(dir, PMAP_BUCKET))
        {
            Ok(data) => PartitionMap::from_bytes(&data)
                .map(Some)
                .map_err(|e| FsError::Io(e.to_string())),
            Err(OsError::NotFound) => Ok(None),
            Err(e) => Err(map_os_err(e)),
        }
    }

    /// Install a directory's partition map (split/merge epoch change).
    pub fn store_pmap(&self, port: &Port, map: &PartitionMap) -> FsResult<()> {
        self.store
            .put(
                port,
                ObjectKey::dentry_bucket(map.dir, PMAP_BUCKET),
                Bytes::from(map.to_bytes()),
            )
            .map_err(map_os_err)
    }

    /// Remove a directory's partition map (merge back to one partition).
    /// Idempotent: an absent map already means "one partition".
    pub fn delete_pmap(&self, port: &Port, dir: Ino) -> FsResult<()> {
        match self
            .store
            .delete(port, ObjectKey::dentry_bucket(dir, PMAP_BUCKET))
        {
            Ok(()) | Err(OsError::NotFound) => Ok(()),
            Err(e) => Err(map_os_err(e)),
        }
    }

    /// Batched fetch of a directory's inode and its partition map in one
    /// two-object flight — max-of-completions pricing makes the map read
    /// free on the leader-takeover path, where both are always needed.
    pub fn load_inode_and_pmap(
        &self,
        port: &Port,
        dir: Ino,
    ) -> FsResult<(Option<InodeRecord>, Option<PartitionMap>)> {
        self.meta.batched_gets.add(2);
        let keys = [
            ObjectKey::inode(dir),
            ObjectKey::dentry_bucket(dir, PMAP_BUCKET),
        ];
        let mut results = self.store.get_many(port, &keys).into_iter();
        let inode = match results.next().expect("inode slot") {
            Ok(data) => {
                Some(InodeRecord::from_bytes(&data).map_err(|e| FsError::Io(e.to_string()))?)
            }
            Err(OsError::NotFound) => None,
            Err(e) => return Err(map_os_err(e)),
        };
        let pmap = match results.next().expect("pmap slot") {
            Ok(data) => {
                Some(PartitionMap::from_bytes(&data).map_err(|e| FsError::Io(e.to_string()))?)
            }
            Err(OsError::NotFound) => None,
            Err(e) => return Err(map_os_err(e)),
        };
        Ok((inode, pmap))
    }

    // ---- journal objects -------------------------------------------------

    pub fn put_journal(&self, port: &Port, dir: Ino, seq: u64, data: Bytes) -> FsResult<()> {
        self.meta.journal_flights.inc();
        self.meta.journal_flight_txns.inc();
        self.store
            .put(port, ObjectKey::journal(dir, seq), data)
            .map_err(map_os_err)
    }

    pub fn get_journal(&self, port: &Port, dir: Ino, seq: u64) -> FsResult<Bytes> {
        self.store
            .get(port, ObjectKey::journal(dir, seq))
            .map_err(map_os_err)
    }

    /// Sequence numbers of all journal objects of a directory, ascending.
    pub fn list_journal(&self, port: &Port, dir: Ino) -> FsResult<Vec<u64>> {
        let keys = self
            .store
            .list(port, Some(arkfs_objstore::KeyKind::Journal), Some(dir))
            .map_err(map_os_err)?;
        let mut seqs: Vec<u64> = keys.into_iter().map(|k| k.index).collect();
        seqs.sort_unstable();
        Ok(seqs)
    }

    pub fn delete_journal(&self, port: &Port, dir: Ino, seq: u64) -> FsResult<()> {
        match self.store.delete(port, ObjectKey::journal(dir, seq)) {
            Ok(()) | Err(OsError::NotFound) => Ok(()),
            Err(e) => Err(map_os_err(e)),
        }
    }

    /// Group-commit append: one pipelined multi-PUT of sealed
    /// transactions that may belong to *different* directories sharing a
    /// commit lane. One flight pays the slowest append instead of one
    /// store round trip per directory.
    pub fn put_journal_many(&self, port: &Port, items: &[(Ino, u64, Bytes)]) -> FsResult<()> {
        if items.is_empty() {
            return Ok(());
        }
        self.meta.batched_puts.add(items.len() as u64);
        self.meta.journal_flight_txns.add(items.len() as u64);
        self.meta
            .journal_flights
            .add(items.chunks(Self::MAX_META_FLIGHT).len() as u64);
        let puts: Vec<(ObjectKey, Bytes)> = items
            .iter()
            .map(|(dir, seq, data)| (ObjectKey::journal(*dir, *seq), data.clone()))
            .collect();
        for flight in puts.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.put_many(port, flight.to_vec()) {
                res.map_err(map_os_err)?;
            }
        }
        Ok(())
    }

    /// Batched journal-object fetch: one pipelined multi-GET over the
    /// sequence numbers. A missing object (raced truncate) yields `None`.
    pub fn get_journal_many(
        &self,
        port: &Port,
        dir: Ino,
        seqs: &[u64],
    ) -> FsResult<Vec<Option<Bytes>>> {
        if seqs.is_empty() {
            return Ok(Vec::new());
        }
        self.meta.batched_gets.add(seqs.len() as u64);
        let keys: Vec<ObjectKey> = seqs.iter().map(|&s| ObjectKey::journal(dir, s)).collect();
        let mut out = Vec::with_capacity(keys.len());
        for flight in keys.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.get_many(port, flight) {
                out.push(match res {
                    Ok(data) => Some(data),
                    Err(OsError::NotFound) => None,
                    Err(e) => return Err(map_os_err(e)),
                });
            }
        }
        Ok(out)
    }

    /// Batched journal truncation: one pipelined multi-DELETE, missing
    /// objects tolerated (idempotent).
    pub fn delete_journal_many(&self, port: &Port, dir: Ino, seqs: &[u64]) -> FsResult<()> {
        if seqs.is_empty() {
            return Ok(());
        }
        self.meta.batched_deletes.add(seqs.len() as u64);
        let keys: Vec<ObjectKey> = seqs.iter().map(|&s| ObjectKey::journal(dir, s)).collect();
        for flight in keys.chunks(Self::MAX_META_FLIGHT) {
            for res in self.store.delete_many(port, flight) {
                match res {
                    Ok(()) | Err(OsError::NotFound) => {}
                    Err(e) => return Err(map_os_err(e)),
                }
            }
        }
        Ok(())
    }

    // ---- file data -------------------------------------------------------

    /// Read up to `buf.len()` bytes at `offset` from a file whose current
    /// size is `size`. Returns bytes filled. Chunks that were never
    /// written read as zeros (sparse files).
    pub fn read_data(
        &self,
        port: &Port,
        ino: Ino,
        offset: u64,
        buf: &mut [u8],
        size: u64,
    ) -> FsResult<usize> {
        if offset >= size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        // Compute the whole chunk span up front and fan the ranged reads
        // out in one batched call: the caller waits for the slowest chunk,
        // not the sum.
        let mut reqs = Vec::new();
        let mut spans = Vec::new();
        let mut filled = 0usize;
        while filled < want {
            let pos = offset + filled as u64;
            let chunk_idx = pos / self.chunk_size;
            let within = pos % self.chunk_size;
            let n = ((self.chunk_size - within) as usize).min(want - filled);
            reqs.push((ObjectKey::data_chunk(ino, chunk_idx), within, n));
            spans.push((filled, n));
            filled += n;
        }
        let results = self.store.get_range_many(port, &reqs);
        for ((start, n), res) in spans.into_iter().zip(results) {
            let out = &mut buf[start..start + n];
            match res {
                Ok(data) => {
                    out[..data.len()].copy_from_slice(&data);
                    // Anything past the stored chunk tail is sparse zero.
                    out[data.len()..].fill(0);
                }
                Err(OsError::NotFound) => out.fill(0),
                Err(e) => return Err(map_os_err(e)),
            }
        }
        Ok(want)
    }

    /// Read one whole chunk (for the data cache). Missing chunk reads as
    /// empty.
    pub fn read_chunk(&self, port: &Port, ino: Ino, chunk_idx: u64) -> FsResult<Bytes> {
        match self.store.get(port, ObjectKey::data_chunk(ino, chunk_idx)) {
            Ok(data) => Ok(data),
            Err(OsError::NotFound) => Ok(Bytes::new()),
            Err(e) => Err(map_os_err(e)),
        }
    }

    /// Write one whole chunk (cache write-back).
    pub fn write_chunk(&self, port: &Port, ino: Ino, chunk_idx: u64, data: Bytes) -> FsResult<()> {
        self.store
            .put(port, ObjectKey::data_chunk(ino, chunk_idx), data)
            .map_err(map_os_err)
    }

    /// Write `data` at byte `offset`, splitting across chunk objects. The
    /// whole span goes out as one batched ranged multi-PUT; backends
    /// without partial writes (S3) degrade per chunk to whole-object
    /// read-modify-write inside the store.
    pub fn write_data(&self, port: &Port, ino: Ino, offset: u64, data: &[u8]) -> FsResult<()> {
        let mut items = Vec::new();
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let chunk_idx = pos / self.chunk_size;
            let within = pos % self.chunk_size;
            let n = ((self.chunk_size - within) as usize).min(data.len() - written);
            items.push((
                ObjectKey::data_chunk(ino, chunk_idx),
                within,
                Bytes::copy_from_slice(&data[written..written + n]),
            ));
            written += n;
        }
        if items.is_empty() {
            return Ok(());
        }
        for res in self.store.put_range_many(port, items) {
            res.map_err(map_os_err)?;
        }
        Ok(())
    }

    /// Delete data chunks beyond `new_size` (truncate) given the previous
    /// size.
    pub fn truncate_data(
        &self,
        port: &Port,
        ino: Ino,
        old_size: u64,
        new_size: u64,
    ) -> FsResult<()> {
        if new_size >= old_size {
            return Ok(());
        }
        let first_dead = new_size.div_ceil(self.chunk_size);
        let last = old_size.div_ceil(self.chunk_size);
        let dead: Vec<ObjectKey> = (first_dead..last)
            .map(|i| ObjectKey::data_chunk(ino, i))
            .collect();
        if !dead.is_empty() {
            for res in self.store.delete_many(port, &dead) {
                match res {
                    Ok(()) | Err(OsError::NotFound) => {}
                    Err(e) => return Err(map_os_err(e)),
                }
            }
        }
        // Trim the partial boundary chunk if any bytes survive in it.
        if !new_size.is_multiple_of(self.chunk_size) && new_size / self.chunk_size < last {
            let boundary = new_size / self.chunk_size;
            let keep = (new_size % self.chunk_size) as usize;
            let key = ObjectKey::data_chunk(ino, boundary);
            match self.store.get(port, key) {
                Ok(data) if data.len() > keep => {
                    self.store
                        .put(port, key, data.slice(..keep))
                        .map_err(map_os_err)?;
                }
                Ok(_) | Err(OsError::NotFound) => {}
                Err(e) => return Err(map_os_err(e)),
            }
        }
        Ok(())
    }

    /// Delete every data chunk of a file of the given size with one
    /// batched multi-DELETE.
    pub fn delete_data(&self, port: &Port, ino: Ino, size: u64) -> FsResult<()> {
        let keys: Vec<ObjectKey> = (0..size.div_ceil(self.chunk_size))
            .map(|i| ObjectKey::data_chunk(ino, i))
            .collect();
        if keys.is_empty() {
            return Ok(());
        }
        for res in self.store.delete_many(port, &keys) {
            match res {
                Ok(()) | Err(OsError::NotFound) => {}
                Err(e) => return Err(map_os_err(e)),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster, StoreProfile};
    use arkfs_vfs::FileType;

    fn rados_prt() -> Prt {
        Prt::new(Arc::new(ObjectCluster::new(ClusterConfig::test_tiny())), 16)
    }

    fn s3_prt() -> Prt {
        let mut cfg = ClusterConfig::test_tiny();
        cfg.profile = StoreProfile::s3(&cfg.spec);
        Prt::new(Arc::new(ObjectCluster::new(cfg)), 16)
    }

    #[test]
    fn inode_store_load_delete() {
        let prt = rados_prt();
        let port = Port::new();
        let rec = InodeRecord::new(55, FileType::Regular, 0o600, 1, 1, 0);
        prt.store_inode(&port, &rec).unwrap();
        assert_eq!(prt.load_inode(&port, 55).unwrap(), rec);
        prt.delete_inode(&port, 55).unwrap();
        assert_eq!(prt.load_inode(&port, 55), Err(FsError::NotFound));
        // Idempotent delete.
        prt.delete_inode(&port, 55).unwrap();
    }

    #[test]
    fn missing_bucket_is_empty() {
        let prt = rados_prt();
        let port = Port::new();
        assert_eq!(
            prt.load_bucket(&port, 1, 0).unwrap(),
            DentryBlock::default()
        );
    }

    #[test]
    fn empty_bucket_store_deletes_object() {
        let prt = rados_prt();
        let port = Port::new();
        let mut block = DentryBlock::default();
        block.entries.push(crate::meta::DentryEntry {
            name: "x".into(),
            ino: 9,
            ftype: FileType::Regular,
        });
        prt.store_bucket(&port, 1, 0, &block).unwrap();
        assert_eq!(prt.load_bucket(&port, 1, 0).unwrap(), block);
        prt.store_bucket(&port, 1, 0, &DentryBlock::default())
            .unwrap();
        assert_eq!(
            prt.load_bucket(&port, 1, 0).unwrap(),
            DentryBlock::default()
        );
    }

    #[test]
    fn data_write_read_across_chunks() {
        let prt = rados_prt(); // 16-byte chunks
        let port = Port::new();
        let data: Vec<u8> = (0..50u8).collect();
        prt.write_data(&port, 7, 3, &data).unwrap();
        let mut buf = vec![0u8; 50];
        let n = prt.read_data(&port, 7, 3, &mut buf, 53).unwrap();
        assert_eq!(n, 50);
        assert_eq!(buf, data);
        // The first 3 bytes are sparse zeros.
        let mut head = [1u8; 3];
        prt.read_data(&port, 7, 0, &mut head, 53).unwrap();
        assert_eq!(head, [0, 0, 0]);
    }

    #[test]
    fn read_past_eof_truncates() {
        let prt = rados_prt();
        let port = Port::new();
        prt.write_data(&port, 7, 0, b"hello").unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(prt.read_data(&port, 7, 0, &mut buf, 5).unwrap(), 5);
        assert_eq!(prt.read_data(&port, 7, 5, &mut buf, 5).unwrap(), 0);
        assert_eq!(prt.read_data(&port, 7, 3, &mut buf, 5).unwrap(), 2);
        assert_eq!(&buf[..2], b"lo");
    }

    #[test]
    fn s3_fallback_read_modify_write() {
        let prt = s3_prt();
        let port = Port::new();
        prt.write_data(&port, 7, 0, b"0123456789abcdef").unwrap(); // exactly one chunk
        prt.write_data(&port, 7, 4, b"XY").unwrap(); // sub-chunk write → RMW
        let mut buf = vec![0u8; 16];
        prt.read_data(&port, 7, 0, &mut buf, 16).unwrap();
        assert_eq!(&buf, b"0123XY6789abcdef");
        // Cross-chunk write on S3.
        prt.write_data(&port, 7, 14, b"PQRS").unwrap();
        let mut buf = vec![0u8; 18];
        prt.read_data(&port, 7, 0, &mut buf, 18).unwrap();
        assert_eq!(&buf[14..], b"PQRS");
    }

    #[test]
    fn sparse_chunks_read_zero() {
        let prt = rados_prt();
        let port = Port::new();
        // Write only chunk 2 (offset 32..), size 48.
        prt.write_data(&port, 9, 32, &[7u8; 16]).unwrap();
        let mut buf = vec![1u8; 48];
        assert_eq!(prt.read_data(&port, 9, 0, &mut buf, 48).unwrap(), 48);
        assert!(buf[..32].iter().all(|&b| b == 0));
        assert!(buf[32..].iter().all(|&b| b == 7));
    }

    #[test]
    fn truncate_deletes_tail_chunks_and_trims_boundary() {
        let prt = rados_prt();
        let port = Port::new();
        let data = vec![9u8; 64]; // 4 chunks
        prt.write_data(&port, 3, 0, &data).unwrap();
        prt.truncate_data(&port, 3, 64, 20).unwrap();
        // Chunks 2,3 deleted; chunk 1 trimmed to 4 bytes.
        let mut buf = vec![0u8; 64];
        let n = prt.read_data(&port, 3, 0, &mut buf, 20).unwrap();
        assert_eq!(n, 20);
        assert!(buf[..20].iter().all(|&b| b == 9));
        assert_eq!(
            prt.store()
                .head(&port, ObjectKey::data_chunk(3, 1))
                .unwrap(),
            4
        );
        assert!(prt
            .store()
            .head(&port, ObjectKey::data_chunk(3, 2))
            .is_err());
        // Growing truncate is a no-op on data.
        prt.truncate_data(&port, 3, 20, 100).unwrap();
    }

    #[test]
    fn delete_data_removes_all_chunks() {
        let prt = rados_prt();
        let port = Port::new();
        prt.write_data(&port, 4, 0, &[1u8; 40]).unwrap();
        prt.delete_data(&port, 4, 40).unwrap();
        let mut buf = [5u8; 8];
        prt.read_data(&port, 4, 0, &mut buf, 40).unwrap();
        assert_eq!(buf, [0u8; 8]); // all sparse now
    }

    #[test]
    fn journal_stream_roundtrip() {
        let prt = rados_prt();
        let port = Port::new();
        prt.put_journal(&port, 10, 0, Bytes::from_static(b"t0"))
            .unwrap();
        prt.put_journal(&port, 10, 2, Bytes::from_static(b"t2"))
            .unwrap();
        prt.put_journal(&port, 10, 1, Bytes::from_static(b"t1"))
            .unwrap();
        assert_eq!(prt.list_journal(&port, 10).unwrap(), vec![0, 1, 2]);
        assert_eq!(
            prt.get_journal(&port, 10, 1).unwrap(),
            Bytes::from_static(b"t1")
        );
        prt.delete_journal(&port, 10, 0).unwrap();
        assert_eq!(prt.list_journal(&port, 10).unwrap(), vec![1, 2]);
        // Other directory's journal is separate.
        assert!(prt.list_journal(&port, 11).unwrap().is_empty());
    }

    #[test]
    fn pmap_roundtrip_and_bucket_sweep() {
        let prt = rados_prt();
        let port = Port::new();
        assert_eq!(prt.load_pmap(&port, 5).unwrap(), None);
        let map = PartitionMap {
            dir: 5,
            epoch: 2,
            partitions: 4,
        };
        prt.store_pmap(&port, &map).unwrap();
        assert_eq!(prt.load_pmap(&port, 5).unwrap(), Some(map.clone()));
        let (ino, got) = prt.load_inode_and_pmap(&port, 5).unwrap();
        assert_eq!(ino, None);
        assert_eq!(got, Some(map));
        // rmdir's dentry sweep removes the map along with the buckets.
        prt.delete_buckets(&port, 5).unwrap();
        assert_eq!(prt.load_pmap(&port, 5).unwrap(), None);
        prt.delete_pmap(&port, 5).unwrap(); // idempotent
    }

    #[test]
    fn grouped_journal_append_lands_per_stream() {
        let prt = rados_prt();
        let port = Port::new();
        prt.put_journal_many(
            &port,
            &[
                (20, 0, Bytes::from_static(b"a")),
                (21, 0, Bytes::from_static(b"b")),
                (20, 1, Bytes::from_static(b"c")),
            ],
        )
        .unwrap();
        assert_eq!(prt.list_journal(&port, 20).unwrap(), vec![0, 1]);
        assert_eq!(prt.list_journal(&port, 21).unwrap(), vec![0]);
        assert_eq!(
            prt.get_journal(&port, 21, 0).unwrap(),
            Bytes::from_static(b"b")
        );
    }
}
