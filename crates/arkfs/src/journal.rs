//! Per-directory journaling with compound transactions (§III-E).
//!
//! "ArkFS has one journal for each directory instead of one global
//! journal area [...] ArkFS supports compound transactions with multiple
//! commit and checkpoint threads, buffering journal entries in an
//! in-memory transaction for 1 second."
//!
//! A directory's journal is a stream of `j<dir>.<seq>` objects, each one
//! sealed compound transaction protected by a CRC32. Checkpointing
//! applies transactions to the home `i`/`e` objects and deletes the
//! stream prefix. RENAME across directories uses two-phase commit:
//! `RenamePrepare` records in both journals, then `RenameCommit`
//! decisions (§III-E, citing Bernstein et al.).

use crate::meta::InodeRecord;
use crate::prt::Prt;
use crate::wire::{crc32, Decoder, Encoder, WireCodec, WireError, WireResult};
use arkfs_simkit::{Nanos, Port, SharedResource};
use arkfs_telemetry::TraceCtx;
use arkfs_vfs::{FileType, FsError, FsResult, Ino};
use bytes::Bytes;
use std::collections::VecDeque;

/// One logged namespace mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// Create or update an inode record (the directory's own inode or a
    /// child's).
    PutInode(InodeRecord),
    /// Remove an inode record.
    DeleteInode(Ino),
    /// Insert or update a directory entry.
    UpsertDentry {
        name: String,
        ino: Ino,
        ftype: FileType,
    },
    /// Remove a directory entry.
    RemoveDentry {
        name: String,
    },
    /// First phase of a cross-directory rename: the ops to apply here if
    /// the transaction commits. `peer_dir` owns the other half.
    RenamePrepare {
        txid: u128,
        peer_dir: Ino,
        ops: Vec<JournalOp>,
    },
    /// Second-phase decision records.
    RenameCommit {
        txid: u128,
    },
    RenameAbort {
        txid: u128,
    },
}

impl WireCodec for JournalOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            JournalOp::PutInode(rec) => {
                enc.put_u8(0);
                rec.encode(enc);
            }
            JournalOp::DeleteInode(ino) => {
                enc.put_u8(1);
                enc.put_u128(*ino);
            }
            JournalOp::UpsertDentry { name, ino, ftype } => {
                enc.put_u8(2);
                enc.put_str(name);
                enc.put_u128(*ino);
                enc.put_u8(ftype.as_u8());
            }
            JournalOp::RemoveDentry { name } => {
                enc.put_u8(3);
                enc.put_str(name);
            }
            JournalOp::RenamePrepare {
                txid,
                peer_dir,
                ops,
            } => {
                enc.put_u8(4);
                enc.put_u128(*txid);
                enc.put_u128(*peer_dir);
                enc.put_u32(ops.len() as u32);
                for op in ops {
                    op.encode(enc);
                }
            }
            JournalOp::RenameCommit { txid } => {
                enc.put_u8(5);
                enc.put_u128(*txid);
            }
            JournalOp::RenameAbort { txid } => {
                enc.put_u8(6);
                enc.put_u128(*txid);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(match dec.get_u8()? {
            0 => JournalOp::PutInode(InodeRecord::decode(dec)?),
            1 => JournalOp::DeleteInode(dec.get_u128()?),
            2 => JournalOp::UpsertDentry {
                name: dec.get_str()?.to_string(),
                ino: dec.get_u128()?,
                ftype: FileType::from_u8(dec.get_u8()?).ok_or(WireError::Invalid("ftype"))?,
            },
            3 => JournalOp::RemoveDentry {
                name: dec.get_str()?.to_string(),
            },
            4 => {
                let txid = dec.get_u128()?;
                let peer_dir = dec.get_u128()?;
                let n = dec.get_u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    ops.push(JournalOp::decode(dec)?);
                }
                JournalOp::RenamePrepare {
                    txid,
                    peer_dir,
                    ops,
                }
            }
            5 => JournalOp::RenameCommit {
                txid: dec.get_u128()?,
            },
            6 => JournalOp::RenameAbort {
                txid: dec.get_u128()?,
            },
            _ => return Err(WireError::Invalid("journal op tag")),
        })
    }
}

/// A sealed compound transaction as stored in one `j<dir>.<seq>` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    pub dir: Ino,
    pub seq: u64,
    pub ops: Vec<JournalOp>,
}

impl Transaction {
    /// Encode with a trailing CRC32 over everything before it.
    pub fn seal(&self) -> Bytes {
        let mut enc = Encoder::with_capacity(128);
        enc.put_u8(1); // version
        enc.put_u128(self.dir);
        enc.put_u64(self.seq);
        enc.put_u32(self.ops.len() as u32);
        for op in &self.ops {
            op.encode(&mut enc);
        }
        let crc = crc32(enc.as_slice());
        enc.put_u32(crc);
        Bytes::from(enc.into_bytes())
    }

    /// Decode and verify the CRC; a torn or corrupt buffer yields
    /// `BadChecksum` so recovery can skip it.
    pub fn unseal(buf: &[u8]) -> WireResult<Self> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let expect = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != expect {
            return Err(WireError::BadChecksum);
        }
        let mut dec = Decoder::new(body);
        let v = dec.get_u8()?;
        if v != 1 {
            return Err(WireError::BadVersion(v));
        }
        let dir = dec.get_u128()?;
        let seq = dec.get_u64()?;
        let n = dec.get_u32()? as usize;
        let mut ops = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            ops.push(JournalOp::decode(&mut dec)?);
        }
        Ok(Transaction { dir, seq, ops })
    }
}

/// Stamps attributing durability latency to the mutations inside one
/// sealed transaction: `(op name, mutation start time, trace context)`
/// triples. The context links the eventual durable landing back to the
/// originating client op as a follow-from span.
pub type OpStamps = Vec<(&'static str, Nanos, TraceCtx)>;

/// The in-memory journaling state of one directory at its leader.
///
/// A transaction moves through three states: **running** (buffering,
/// mutable), **sealed** (sequence number assigned, ops frozen, waiting
/// for its commit lane's durable flush — the state that lets the async
/// pipeline ack before durability), and **committed** (in the journal
/// object stream, awaiting checkpoint).
#[derive(Debug)]
pub struct DirJournal {
    dir: Ino,
    /// Sequence number the next sealed transaction will use.
    next_seq: u64,
    /// First journal object that is still live (not yet checkpointed).
    oldest_live: u64,
    /// The running (buffering) transaction.
    running: Vec<JournalOp>,
    running_since: Option<Nanos>,
    /// `(op name, start time, trace ctx)` stamps of the mutations
    /// buffered in `running`, used to attribute durability latency
    /// (`op.*.durable_ns`) once the transaction lands in the store.
    running_stamps: OpStamps,
    /// Sealed transactions awaiting their lane's durable flush. Nothing
    /// here has reached the object store: on a crash these are lost
    /// exactly like `running` ops.
    sealed: VecDeque<Transaction>,
    /// Stamps riding with each sealed transaction (parallel to `sealed`).
    sealed_stamps: VecDeque<OpStamps>,
    /// Sealed-and-journaled transactions awaiting checkpoint.
    committed: Vec<Transaction>,
}

impl DirJournal {
    /// A fresh journal starting after any sequence numbers already in the
    /// store (`resume_after` = highest existing seq + 1, or 0).
    pub fn new(dir: Ino, resume_from: u64) -> Self {
        DirJournal {
            dir,
            next_seq: resume_from,
            oldest_live: resume_from,
            running: Vec::new(),
            running_since: None,
            running_stamps: Vec::new(),
            sealed: VecDeque::new(),
            sealed_stamps: VecDeque::new(),
            committed: Vec::new(),
        }
    }

    pub fn dir(&self) -> Ino {
        self.dir
    }

    /// Append an op to the running transaction.
    pub fn append(&mut self, op: JournalOp, now: Nanos) {
        if self.running.is_empty() {
            self.running_since = Some(now);
        }
        self.running.push(op);
    }

    /// Record which operation produced the mutation(s) just appended and
    /// when it started, so its durability latency (`op.*.durable_ns`)
    /// can be attributed once the transaction holding it lands in the
    /// store. `ctx` is the op's causal context: the durable landing is
    /// recorded as a follow-from span of its trace.
    pub fn stamp(&mut self, op: &'static str, start: Nanos, ctx: TraceCtx) {
        self.running_stamps.push((op, start, ctx));
    }

    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Number of sealed transactions waiting for their durable flush.
    pub fn sealed_len(&self) -> usize {
        self.sealed.len()
    }

    pub fn committed_len(&self) -> usize {
        self.committed.len()
    }

    /// Should the running transaction be sealed now? True when the
    /// buffering window has elapsed or the entry bound is hit.
    pub fn commit_due(&self, now: Nanos, window: Nanos, max_entries: usize) -> bool {
        if self.running.is_empty() {
            return false;
        }
        if self.running.len() >= max_entries {
            return true;
        }
        match self.running_since {
            Some(since) => now.saturating_sub(since) >= window,
            None => false,
        }
    }

    /// Seal the running transaction: assign it the next sequence number,
    /// freeze its ops, and queue it for the commit lane's durable flush.
    /// From this point the caller may ack — later ops observe the
    /// mutation through the in-memory metatable — but nothing is durable
    /// until [`DirJournal::flush_sealed`] lands it. Returns the sealed
    /// sequence number, or `None` when the running transaction was empty.
    pub fn seal(&mut self) -> Option<u64> {
        if self.running.is_empty() {
            return None;
        }
        let txn = Transaction {
            dir: self.dir,
            seq: self.next_seq,
            ops: std::mem::take(&mut self.running),
        };
        self.next_seq += 1;
        self.running_since = None;
        self.sealed_stamps
            .push_back(std::mem::take(&mut self.running_stamps));
        let seq = txn.seq;
        self.sealed.push_back(txn);
        Some(seq)
    }

    /// Flush every sealed transaction to the journal object stream in
    /// sequence order. The `lane` models the commit thread this directory
    /// is statically mapped to; its reservation serializes flushes
    /// sharing a lane in virtual time. On failure the failed transaction
    /// and everything sealed behind it are unsealed back into `running`
    /// (ahead of any ops buffered meanwhile) and the sequence counter
    /// rolls back — safe because none of them reached the store — so a
    /// later commit retries them; each pushback bumps
    /// `journal.commit_retry.count`.
    pub fn flush_sealed(
        &mut self,
        prt: &Prt,
        port: &Port,
        lane: &SharedResource,
        lane_service: Nanos,
    ) -> FsResult<()> {
        while let Some(txn) = self.sealed.pop_front() {
            let stamps = self.sealed_stamps.pop_front().unwrap_or_default();
            let t0 = port.now();
            let done = lane.reserve(t0, lane_service);
            port.wait_until(done);
            match prt.put_journal(port, self.dir, txn.seq, txn.seal()) {
                Ok(()) => {
                    let end = port.now();
                    for (op, start, ctx) in stamps {
                        prt.record_durable(op, self.dir, start, end, ctx);
                    }
                    self.committed.push(txn);
                    prt.meta_span("journal.commit", self.dir, t0, end);
                }
                Err(e) => {
                    prt.count_commit_retry();
                    self.next_seq = txn.seq;
                    let mut ops = txn.ops;
                    let mut restored = stamps;
                    while let Some(t) = self.sealed.pop_front() {
                        ops.extend(t.ops);
                        restored.extend(self.sealed_stamps.pop_front().unwrap_or_default());
                    }
                    ops.extend(std::mem::take(&mut self.running));
                    restored.extend(std::mem::take(&mut self.running_stamps));
                    self.running = ops;
                    self.running_stamps = restored;
                    self.running_since.get_or_insert(port.now());
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Drain the sealed queue for a *group* flight (see
    /// `ArkConfig::group_commit`): the caller batches the returned
    /// transactions — possibly together with other directories' — into
    /// one multi-PUT, then reports back per transaction with
    /// [`DirJournal::push_committed`], or gives everything back with
    /// [`DirJournal::restore_sealed`] if the flight failed.
    pub fn take_sealed(&mut self) -> Vec<(Transaction, OpStamps)> {
        let txns = std::mem::take(&mut self.sealed);
        let stamps = std::mem::take(&mut self.sealed_stamps);
        txns.into_iter()
            .zip(stamps.into_iter().chain(std::iter::repeat_with(Vec::new)))
            .collect()
    }

    /// Record a group-flight transaction as durable (its journal object
    /// was written by the caller's batched flight).
    pub fn push_committed(&mut self, txn: Transaction) {
        self.committed.push(txn);
    }

    /// Give back transactions taken by [`DirJournal::take_sealed`] after
    /// a failed group flight: they unseal — together with anything sealed
    /// or buffered since — back into `running` at the front, and the
    /// sequence counter rolls back, exactly like a failed
    /// [`DirJournal::flush_sealed`]. Re-putting the same sequence numbers
    /// on retry is safe even if part of the flight landed: those ops were
    /// already acked and a replay applies them idempotently. The caller
    /// counts the retry.
    pub fn restore_sealed(&mut self, taken: Vec<(Transaction, OpStamps)>, now: Nanos) {
        let Some((first, _)) = taken.first() else {
            return;
        };
        self.next_seq = first.seq;
        let mut ops = Vec::new();
        let mut stamps = Vec::new();
        for (txn, st) in taken {
            ops.extend(txn.ops);
            stamps.extend(st);
        }
        while let Some(t) = self.sealed.pop_front() {
            ops.extend(t.ops);
            stamps.extend(self.sealed_stamps.pop_front().unwrap_or_default());
        }
        ops.extend(std::mem::take(&mut self.running));
        stamps.extend(std::mem::take(&mut self.running_stamps));
        self.running = ops;
        self.running_stamps = stamps;
        self.running_since.get_or_insert(now);
    }

    /// Seal the running transaction and flush everything sealed: the
    /// synchronous commit path (the caller's timeline pays the journal
    /// append).
    pub fn commit(
        &mut self,
        prt: &Prt,
        port: &Port,
        lane: &SharedResource,
        lane_service: Nanos,
    ) -> FsResult<()> {
        self.seal();
        self.flush_sealed(prt, port, lane, lane_service)
    }

    /// Take the committed transactions for checkpointing. The caller
    /// applies them to the home objects, then calls
    /// [`DirJournal::truncate`] to delete the journal objects.
    pub fn take_committed(&mut self) -> Vec<Transaction> {
        std::mem::take(&mut self.committed)
    }

    /// Delete checkpointed journal objects up to (excluding) `next_seq`
    /// with one batched multi-DELETE: truncation pays the slowest object,
    /// not one round trip per sealed transaction.
    pub fn truncate(&mut self, prt: &Prt, port: &Port) -> FsResult<()> {
        let dead: Vec<u64> = (self.oldest_live..self.next_seq).collect();
        prt.delete_journal_many(port, self.dir, &dead)?;
        self.oldest_live = self.next_seq;
        Ok(())
    }

    /// Whether everything is durable and applied.
    pub fn is_quiescent(&self) -> bool {
        self.running.is_empty() && self.sealed.is_empty() && self.committed.is_empty()
    }
}

/// Scan a directory's journal object stream: one LIST, then one batched
/// multi-GET over every sequence number — recovery of an N-transaction
/// stream pays the slowest object, not N round trips. Returns the listed
/// sequence numbers (including torn objects, so callers can compute the
/// resume point and truncate without re-listing) and every intact
/// transaction in sequence order. Torn/corrupt objects are skipped (they
/// were never acknowledged).
pub fn scan_journal_stream(
    prt: &Prt,
    port: &Port,
    dir: Ino,
) -> FsResult<(Vec<u64>, Vec<Transaction>)> {
    let seqs = prt.list_journal(port, dir)?;
    let mut out = Vec::new();
    for data in prt.get_journal_many(port, dir, &seqs)?.into_iter() {
        let Some(data) = data else { continue };
        match Transaction::unseal(&data) {
            Ok(txn) => out.push(txn),
            Err(WireError::BadChecksum) | Err(WireError::Truncated) => continue,
            Err(e) => return Err(FsError::Io(e.to_string())),
        }
    }
    out.sort_by_key(|t| t.seq);
    Ok((seqs, out))
}

/// Intact transactions of a directory's journal stream, in sequence
/// order (see [`scan_journal_stream`]).
pub fn scan_journal(prt: &Prt, port: &Port, dir: Ino) -> FsResult<Vec<Transaction>> {
    scan_journal_stream(prt, port, dir).map(|(_, txns)| txns)
}

/// Resolve the fate of rename transactions found while scanning `dir`'s
/// journal: returns the effective op list with 2PC records folded in —
/// committed prepares expand to their ops, aborted or undecided-without-
/// peer-commit prepares are dropped.
pub fn resolve_renames(prt: &Prt, port: &Port, txns: &[Transaction]) -> FsResult<Vec<JournalOp>> {
    use std::collections::HashMap;
    // Gather local decisions.
    let mut decisions: HashMap<u128, bool> = HashMap::new();
    for txn in txns {
        for op in &txn.ops {
            match op {
                JournalOp::RenameCommit { txid } => {
                    decisions.insert(*txid, true);
                }
                JournalOp::RenameAbort { txid } => {
                    decisions.insert(*txid, false);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for txn in txns {
        for op in &txn.ops {
            match op {
                JournalOp::RenamePrepare {
                    txid,
                    peer_dir,
                    ops,
                } => {
                    let committed = match decisions.get(txid) {
                        Some(d) => *d,
                        None => {
                            // Undecided locally: consult the peer journal.
                            let peer = scan_journal(prt, port, *peer_dir)?;
                            peer.iter().flat_map(|t| &t.ops).any(
                                |o| matches!(o, JournalOp::RenameCommit { txid: t } if t == txid),
                            )
                        }
                    };
                    if committed {
                        out.extend(ops.iter().cloned());
                    }
                }
                JournalOp::RenameCommit { .. } | JournalOp::RenameAbort { .. } => {}
                other => out.push(other.clone()),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_objstore::{ClusterConfig, ObjectCluster};
    use std::sync::Arc;

    fn prt() -> Prt {
        Prt::new(Arc::new(ObjectCluster::new(ClusterConfig::test_tiny())), 64)
    }

    fn inode(ino: Ino) -> InodeRecord {
        InodeRecord::new(ino, FileType::Regular, 0o644, 0, 0, 0)
    }

    fn sample_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::PutInode(inode(9)),
            JournalOp::UpsertDentry {
                name: "f".into(),
                ino: 9,
                ftype: FileType::Regular,
            },
            JournalOp::RemoveDentry { name: "old".into() },
            JournalOp::DeleteInode(5),
            JournalOp::RenamePrepare {
                txid: 77,
                peer_dir: 3,
                ops: vec![JournalOp::RemoveDentry { name: "mv".into() }],
            },
            JournalOp::RenameCommit { txid: 77 },
            JournalOp::RenameAbort { txid: 78 },
        ]
    }

    #[test]
    fn transaction_seal_unseal_roundtrip() {
        let txn = Transaction {
            dir: 42,
            seq: 3,
            ops: sample_ops(),
        };
        let sealed = txn.seal();
        assert_eq!(Transaction::unseal(&sealed).unwrap(), txn);
    }

    #[test]
    fn corruption_is_detected() {
        let txn = Transaction {
            dir: 42,
            seq: 3,
            ops: sample_ops(),
        };
        let mut sealed = txn.seal().to_vec();
        sealed[10] ^= 0xFF;
        assert_eq!(Transaction::unseal(&sealed), Err(WireError::BadChecksum));
        // Torn write (prefix only).
        let sealed = txn.seal();
        assert_eq!(
            Transaction::unseal(&sealed[..sealed.len() / 2]),
            Err(WireError::BadChecksum)
        );
        assert_eq!(Transaction::unseal(&[1, 2]), Err(WireError::Truncated));
    }

    #[test]
    fn commit_due_honours_window_and_bound() {
        let mut j = DirJournal::new(1, 0);
        assert!(!j.commit_due(100, 10, 4));
        j.append(JournalOp::DeleteInode(1), 100);
        assert!(!j.commit_due(105, 10, 4), "window not yet elapsed");
        assert!(j.commit_due(110, 10, 4), "window elapsed");
        for i in 0..3 {
            j.append(JournalOp::DeleteInode(i), 101);
        }
        assert!(j.commit_due(102, 1000, 4), "entry bound hit");
    }

    #[test]
    fn commit_writes_and_checkpoint_truncates() {
        let prt = prt();
        let port = Port::new();
        let lane = SharedResource::ideal("commit");
        let mut j = DirJournal::new(7, 0);
        j.append(JournalOp::PutInode(inode(9)), 0);
        j.append(
            JournalOp::UpsertDentry {
                name: "f".into(),
                ino: 9,
                ftype: FileType::Regular,
            },
            0,
        );
        j.commit(&prt, &port, &lane, 10).unwrap();
        assert!(j.running_len() == 0 && j.committed_len() == 1);
        assert_eq!(prt.list_journal(&port, 7).unwrap(), vec![0]);

        // Second compound transaction.
        j.append(JournalOp::DeleteInode(5), 0);
        j.commit(&prt, &port, &lane, 10).unwrap();
        assert_eq!(prt.list_journal(&port, 7).unwrap(), vec![0, 1]);

        let committed = j.take_committed();
        assert_eq!(committed.len(), 2);
        assert_eq!(committed[0].seq, 0);
        j.truncate(&prt, &port).unwrap();
        assert!(prt.list_journal(&port, 7).unwrap().is_empty());
        assert!(j.is_quiescent());
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let prt = prt();
        let port = Port::new();
        let lane = SharedResource::ideal("commit");
        let mut j = DirJournal::new(7, 0);
        j.commit(&prt, &port, &lane, 10).unwrap();
        assert!(prt.list_journal(&port, 7).unwrap().is_empty());
    }

    #[test]
    fn failed_commit_keeps_ops_for_retry() {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let prt = Prt::new(store.clone(), 64);
        let port = Port::new();
        let lane = SharedResource::ideal("commit");
        let mut j = DirJournal::new(7, 0);
        j.append(JournalOp::DeleteInode(1), 0);
        store.faults.fail_next_puts(1, None);
        assert!(j.commit(&prt, &port, &lane, 10).is_err());
        assert_eq!(j.running_len(), 1, "ops restored for retry");
        j.commit(&prt, &port, &lane, 10).unwrap();
        assert_eq!(j.committed_len(), 1);
    }

    #[test]
    fn seal_freezes_ops_without_touching_the_store() {
        let prt = prt();
        let port = Port::new();
        let lane = SharedResource::ideal("commit");
        let mut j = DirJournal::new(7, 0);
        j.append(JournalOp::DeleteInode(1), 0);
        assert_eq!(j.seal(), Some(0));
        assert_eq!(j.running_len(), 0);
        assert_eq!(j.sealed_len(), 1);
        assert!(
            prt.list_journal(&port, 7).unwrap().is_empty(),
            "sealed is not durable"
        );
        // Ops appended after the seal start a new running transaction.
        j.append(JournalOp::DeleteInode(2), 5);
        assert_eq!(j.seal(), Some(1));
        assert_eq!(j.sealed_len(), 2);
        j.flush_sealed(&prt, &port, &lane, 10).unwrap();
        assert_eq!(j.sealed_len(), 0);
        assert_eq!(j.committed_len(), 2);
        assert_eq!(prt.list_journal(&port, 7).unwrap(), vec![0, 1]);
    }

    #[test]
    fn empty_seal_is_none() {
        let mut j = DirJournal::new(7, 0);
        assert_eq!(j.seal(), None);
        assert_eq!(j.sealed_len(), 0);
    }

    #[test]
    fn failed_flush_unseals_in_order_and_rolls_back_seq() {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let prt = Prt::new(store.clone(), 64);
        let port = Port::new();
        let lane = SharedResource::ideal("commit");
        let mut j = DirJournal::new(7, 0);
        // Two sealed transactions plus fresh running ops.
        j.append(JournalOp::DeleteInode(1), 0);
        j.seal();
        j.append(JournalOp::DeleteInode(2), 0);
        j.seal();
        j.append(JournalOp::DeleteInode(3), 0);
        let retries = prt
            .telemetry()
            .registry
            .counter("journal.commit_retry.count");
        store.faults.fail_next_puts(1, None);
        assert!(j.flush_sealed(&prt, &port, &lane, 10).is_err());
        assert_eq!(retries.get(), 1, "pushback is counted");
        assert_eq!(j.sealed_len(), 0);
        assert_eq!(
            j.running_len(),
            3,
            "unflushed sealed ops land ahead of the running tail"
        );
        // Retry commits everything at the original sequence number.
        j.commit(&prt, &port, &lane, 10).unwrap();
        assert_eq!(prt.list_journal(&port, 7).unwrap(), vec![0]);
        let txn = Transaction::unseal(&prt.get_journal(&port, 7, 0).unwrap()).unwrap();
        assert_eq!(
            txn.ops,
            vec![
                JournalOp::DeleteInode(1),
                JournalOp::DeleteInode(2),
                JournalOp::DeleteInode(3),
            ]
        );
    }

    #[test]
    fn group_take_restore_roundtrip() {
        let prt = prt();
        let port = Port::new();
        let lane = SharedResource::ideal("commit");
        let mut j = DirJournal::new(7, 0);
        j.append(JournalOp::DeleteInode(1), 0);
        j.stamp("unlink", 0, TraceCtx::NONE);
        j.seal();
        j.append(JournalOp::DeleteInode(2), 0);
        j.seal();
        let taken = j.take_sealed();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].1, vec![("unlink", 0, TraceCtx::NONE)]);
        assert_eq!(j.sealed_len(), 0);
        // Failed flight: everything (taken + ops buffered meanwhile)
        // unseals for retry at the original sequence number.
        j.append(JournalOp::DeleteInode(3), 1);
        j.restore_sealed(taken, 1);
        assert_eq!(j.running_len(), 3);
        j.commit(&prt, &port, &lane, 0).unwrap();
        assert_eq!(prt.list_journal(&port, 7).unwrap(), vec![0]);
    }

    #[test]
    fn group_push_committed_feeds_checkpoint() {
        let mut j = DirJournal::new(7, 0);
        j.append(JournalOp::DeleteInode(1), 0);
        j.seal();
        let taken = j.take_sealed();
        for (txn, _) in taken {
            j.push_committed(txn);
        }
        assert_eq!(j.committed_len(), 1);
        assert!(!j.is_quiescent(), "committed still awaits checkpoint");
        assert_eq!(j.take_committed().len(), 1);
    }

    #[test]
    fn scan_skips_torn_transactions() {
        let prt = prt();
        let port = Port::new();
        let good = Transaction {
            dir: 7,
            seq: 0,
            ops: vec![JournalOp::DeleteInode(1)],
        };
        let torn = Transaction {
            dir: 7,
            seq: 1,
            ops: vec![JournalOp::DeleteInode(2)],
        };
        prt.put_journal(&port, 7, 0, good.seal()).unwrap();
        let sealed = torn.seal();
        prt.put_journal(&port, 7, 1, sealed.slice(..sealed.len() - 2))
            .unwrap();
        let txns = scan_journal(&prt, &port, 7).unwrap();
        assert_eq!(txns, vec![good]);
    }

    #[test]
    fn resume_from_preserves_sequence() {
        let prt = prt();
        let port = Port::new();
        let lane = SharedResource::ideal("commit");
        let mut j = DirJournal::new(7, 5);
        j.append(JournalOp::DeleteInode(1), 0);
        j.commit(&prt, &port, &lane, 0).unwrap();
        assert_eq!(prt.list_journal(&port, 7).unwrap(), vec![5]);
    }

    #[test]
    fn rename_resolution_commits_and_aborts() {
        let prt = prt();
        let port = Port::new();
        // Local journal: prepare(1) + commit(1), prepare(2) without
        // decision, prepare(3) + abort(3).
        let txns = vec![Transaction {
            dir: 7,
            seq: 0,
            ops: vec![
                JournalOp::RenamePrepare {
                    txid: 1,
                    peer_dir: 8,
                    ops: vec![JournalOp::RemoveDentry { name: "a".into() }],
                },
                JournalOp::RenameCommit { txid: 1 },
                JournalOp::RenamePrepare {
                    txid: 2,
                    peer_dir: 8,
                    ops: vec![JournalOp::RemoveDentry { name: "b".into() }],
                },
                JournalOp::RenamePrepare {
                    txid: 3,
                    peer_dir: 8,
                    ops: vec![JournalOp::RemoveDentry { name: "c".into() }],
                },
                JournalOp::RenameAbort { txid: 3 },
                JournalOp::UpsertDentry {
                    name: "z".into(),
                    ino: 9,
                    ftype: FileType::Regular,
                },
            ],
        }];
        // Peer journal holds the commit decision for txid 2.
        let peer = Transaction {
            dir: 8,
            seq: 0,
            ops: vec![JournalOp::RenameCommit { txid: 2 }],
        };
        prt.put_journal(&port, 8, 0, peer.seal()).unwrap();

        let ops = resolve_renames(&prt, &port, &txns).unwrap();
        assert_eq!(
            ops,
            vec![
                JournalOp::RemoveDentry { name: "a".into() }, // committed locally
                JournalOp::RemoveDentry { name: "b".into() }, // committed at peer
                JournalOp::UpsertDentry {
                    name: "z".into(),
                    ino: 9,
                    ftype: FileType::Regular
                },
            ]
        );
    }

    #[test]
    fn undecided_rename_without_peer_commit_aborts() {
        let prt = prt();
        let port = Port::new();
        let txns = vec![Transaction {
            dir: 7,
            seq: 0,
            ops: vec![JournalOp::RenamePrepare {
                txid: 9,
                peer_dir: 8,
                ops: vec![JournalOp::RemoveDentry { name: "x".into() }],
            }],
        }];
        let ops = resolve_renames(&prt, &port, &txns).unwrap();
        assert!(ops.is_empty(), "presumed abort");
    }
}
