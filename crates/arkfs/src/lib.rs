//! # ArkFS
//!
//! A near-POSIX, scalable distributed file system on object storage with
//! **client-driven metadata service** — a reproduction of Cho, Kang & Kim,
//! *"ArkFS: A Distributed File System on Object Storage for Archiving
//! Data in HPC Environment"* (IPDPS 2023).
//!
//! Instead of metadata servers, each ArkFS client acquires per-directory
//! leases from a lightweight [lease manager](arkfs_lease::LeaseManager)
//! and becomes the *directory leader*: it loads the directory's metadata
//! into a local [metatable](metatable::Metatable), serves all operations
//! for it in memory, journals mutations to a per-directory
//! [journal](journal::DirJournal) in the object store, and checkpoints
//! them back to the home inode/dentry objects. Other clients are
//! redirected to the leader and forward their operations over RPC.
//!
//! The [PRT module](prt::Prt) translates all of this to GET/PUT/DELETE
//! operations on any [`arkfs_objstore::ObjectStore`] backend, and the
//! [data object cache](cache::DataCache) provides write-back caching with
//! CephFS-style read-ahead.
//!
//! ```
//! use arkfs::{ArkCluster, ArkConfig};
//! use arkfs_objstore::{ClusterConfig, ObjectCluster};
//! use arkfs_vfs::{Credentials, Vfs};
//! use std::sync::Arc;
//!
//! let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
//! let cluster = ArkCluster::new(ArkConfig::test_tiny(), store);
//! let client = cluster.client();
//! let root = Credentials::root();
//! client.mkdir(&root, "/data", 0o755).unwrap();
//! arkfs_vfs::write_file(&*client, &root, "/data/hello.txt", b"hi").unwrap();
//! assert_eq!(arkfs_vfs::read_file(&*client, &root, "/data/hello.txt").unwrap(), b"hi");
//! ```

pub mod cache;
pub mod client;
pub mod cluster;
pub mod config;
pub mod journal;
pub mod meta;
pub mod metatable;
pub mod partition;
pub mod prt;
pub mod radix;
pub mod remote;
pub mod rpc;
pub mod wire;

pub use client::{ArkClient, LockStats};
pub use cluster::ArkCluster;
pub use config::{ArkConfig, CommitMode};
