//! On-store metadata records: inodes and dentry buckets.
//!
//! "We need to keep not only the file data but also the file metadata,
//! including inodes and directory entries, in the form of objects" (§II-C).

use crate::wire::{Decoder, Encoder, WireCodec, WireError, WireResult};
use arkfs_vfs::{Acl, AclEntry, AclQualifier, FileType, Ino, Nanos, Stat};

/// Current record format version.
pub const META_VERSION: u8 = 1;

/// An inode as stored in an `i<ino>` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InodeRecord {
    pub ino: Ino,
    pub ftype: FileType,
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub nlink: u32,
    pub size: u64,
    pub atime: Nanos,
    pub mtime: Nanos,
    pub ctime: Nanos,
    pub acl: Acl,
    /// Symlink target (empty for other types).
    pub symlink_target: String,
}

impl InodeRecord {
    /// A fresh inode with the given identity.
    pub fn new(ino: Ino, ftype: FileType, mode: u32, uid: u32, gid: u32, now: Nanos) -> Self {
        InodeRecord {
            ino,
            ftype,
            mode: mode & 0o7777,
            uid,
            gid,
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            size: 0,
            atime: now,
            mtime: now,
            ctime: now,
            acl: Acl::default(),
            symlink_target: String::new(),
        }
    }

    pub fn to_stat(&self) -> Stat {
        Stat {
            ino: self.ino,
            ftype: self.ftype,
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            nlink: self.nlink,
            size: self.size,
            atime: self.atime,
            mtime: self.mtime,
            ctime: self.ctime,
        }
    }
}

pub(crate) fn encode_acl(acl: &Acl, enc: &mut Encoder) {
    enc.put_u32(acl.entries.len() as u32);
    for e in &acl.entries {
        match e.qualifier {
            AclQualifier::User(uid) => {
                enc.put_u8(0);
                enc.put_u32(uid);
            }
            AclQualifier::Group(gid) => {
                enc.put_u8(1);
                enc.put_u32(gid);
            }
            AclQualifier::Mask => {
                enc.put_u8(2);
                enc.put_u32(0);
            }
        }
        enc.put_u8(e.perms);
    }
}

pub(crate) fn decode_acl(dec: &mut Decoder<'_>) -> WireResult<Acl> {
    let n = dec.get_u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let tag = dec.get_u8()?;
        let id = dec.get_u32()?;
        let perms = dec.get_u8()?;
        let qualifier = match tag {
            0 => AclQualifier::User(id),
            1 => AclQualifier::Group(id),
            2 => AclQualifier::Mask,
            _ => return Err(WireError::Invalid("acl qualifier")),
        };
        entries.push(AclEntry {
            qualifier,
            perms: perms & 0o7,
        });
    }
    Ok(Acl::new(entries))
}

impl WireCodec for InodeRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(META_VERSION);
        enc.put_u128(self.ino);
        enc.put_u8(self.ftype.as_u8());
        enc.put_u32(self.mode);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u32(self.nlink);
        enc.put_u64(self.size);
        enc.put_u64(self.atime);
        enc.put_u64(self.mtime);
        enc.put_u64(self.ctime);
        encode_acl(&self.acl, enc);
        enc.put_str(&self.symlink_target);
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_u8()?;
        if v != META_VERSION {
            return Err(WireError::BadVersion(v));
        }
        Ok(InodeRecord {
            ino: dec.get_u128()?,
            ftype: FileType::from_u8(dec.get_u8()?).ok_or(WireError::Invalid("ftype"))?,
            mode: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            nlink: dec.get_u32()?,
            size: dec.get_u64()?,
            atime: dec.get_u64()?,
            mtime: dec.get_u64()?,
            ctime: dec.get_u64()?,
            acl: decode_acl(dec)?,
            symlink_target: dec.get_str()?.to_string(),
        })
    }
}

/// One directory entry inside a dentry bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DentryEntry {
    pub name: String,
    pub ino: Ino,
    pub ftype: FileType,
}

impl WireCodec for DentryEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_u128(self.ino);
        enc.put_u8(self.ftype.as_u8());
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(DentryEntry {
            name: dec.get_str()?.to_string(),
            ino: dec.get_u128()?,
            ftype: FileType::from_u8(dec.get_u8()?).ok_or(WireError::Invalid("ftype"))?,
        })
    }
}

/// One hash bucket of a directory's entries, stored in `e<dir>.<bucket>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DentryBlock {
    pub entries: Vec<DentryEntry>,
}

impl WireCodec for DentryBlock {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(META_VERSION);
        enc.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_u8()?;
        if v != META_VERSION {
            return Err(WireError::BadVersion(v));
        }
        let n = dec.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            entries.push(DentryEntry::decode(dec)?);
        }
        Ok(DentryBlock { entries })
    }
}

/// Stable bucket selection for a name (FNV-1a).
pub fn dentry_bucket(name: &str, buckets: u64) -> u64 {
    debug_assert!(buckets > 0);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h % buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use arkfs_vfs::Credentials;

    fn sample_inode() -> InodeRecord {
        let mut rec = InodeRecord::new(0xDEADBEEF, FileType::Regular, 0o644, 10, 20, 1234);
        rec.size = 4096;
        rec.acl = Acl::new(vec![
            AclEntry::user(42, 0o6),
            AclEntry::group(30, 0o4),
            AclEntry::mask(0o6),
        ]);
        rec
    }

    #[test]
    fn inode_roundtrip() {
        let rec = sample_inode();
        let decoded = InodeRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn symlink_roundtrip() {
        let mut rec = InodeRecord::new(5, FileType::Symlink, 0o777, 0, 0, 0);
        rec.symlink_target = "/target/elsewhere".to_string();
        let decoded = InodeRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(decoded.symlink_target, "/target/elsewhere");
    }

    #[test]
    fn new_inode_defaults() {
        let f = InodeRecord::new(1, FileType::Regular, 0o644, 1, 2, 9);
        assert_eq!(f.nlink, 1);
        let d = InodeRecord::new(2, FileType::Directory, 0o755, 1, 2, 9);
        assert_eq!(d.nlink, 2);
        // mode is clamped to permission bits
        let m = InodeRecord::new(3, FileType::Regular, 0o170644, 1, 2, 9);
        assert_eq!(m.mode, 0o644);
    }

    #[test]
    fn to_stat_copies_fields() {
        let rec = sample_inode();
        let st = rec.to_stat();
        assert_eq!(st.ino, rec.ino);
        assert_eq!(st.size, 4096);
        assert_eq!(st.uid, 10);
        assert_eq!(st.mode, 0o644);
    }

    #[test]
    fn acl_survives_roundtrip_and_still_evaluates() {
        let rec = sample_inode();
        let decoded = InodeRecord::from_bytes(&rec.to_bytes()).unwrap();
        let creds = Credentials::user(42);
        assert_eq!(
            decoded
                .acl
                .effective_perms(&creds, rec.uid, rec.gid, rec.mode),
            Some(0o6)
        );
    }

    #[test]
    fn dentry_block_roundtrip() {
        let block = DentryBlock {
            entries: vec![
                DentryEntry {
                    name: "foo.txt".into(),
                    ino: 11,
                    ftype: FileType::Regular,
                },
                DentryEntry {
                    name: "doc".into(),
                    ino: 20,
                    ftype: FileType::Directory,
                },
                DentryEntry {
                    name: "ln".into(),
                    ino: 30,
                    ftype: FileType::Symlink,
                },
            ],
        };
        let decoded = DentryBlock::from_bytes(&block.to_bytes()).unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn empty_dentry_block_roundtrip() {
        let block = DentryBlock::default();
        assert_eq!(DentryBlock::from_bytes(&block.to_bytes()).unwrap(), block);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_inode().to_bytes();
        bytes[0] = 99;
        assert_eq!(
            InodeRecord::from_bytes(&bytes),
            Err(WireError::BadVersion(99))
        );
    }

    #[test]
    fn corrupt_ftype_rejected() {
        let rec = InodeRecord::new(1, FileType::Regular, 0o644, 0, 0, 0);
        let mut bytes = rec.to_bytes();
        bytes[17] = 9; // ftype byte after version + ino
        assert_eq!(
            InodeRecord::from_bytes(&bytes),
            Err(WireError::Invalid("ftype"))
        );
    }

    #[test]
    fn buckets_are_stable_and_spread() {
        assert_eq!(dentry_bucket("hello", 16), dentry_bucket("hello", 16));
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(dentry_bucket(&format!("file{i}"), 16));
        }
        assert!(seen.len() > 8);
        assert!(seen.iter().all(|&b| b < 16));
    }
}
