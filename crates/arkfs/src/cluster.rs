//! Deployment handle: wires the object store, the lease manager, and the
//! client-to-client RPC transport together, and mints clients.
//!
//! The default deployment ([`ArkCluster::new`]) runs both protocols on
//! the virtual-time [`Bus`]; [`ArkCluster::with_transports`] accepts any
//! [`Transport`] pair, which is how the TCP mode (`cli serve` /
//! `cli client`) runs the identical stack across processes.

use crate::client::ArkClient;
use crate::config::ArkConfig;
use crate::meta::InodeRecord;
use crate::prt::Prt;
use crate::rpc::{OpRequest, OpResponse};
use arkfs_lease::{LeaseConfig, LeaseManager, LeaseRequest, LeaseResponse};
use arkfs_netsim::{call_with_retry, Bus, NetError, NodeId, RetryCounters, Transport};
use arkfs_objstore::ObjectStore;
use arkfs_simkit::{Nanos, Port};
use arkfs_vfs::{FileType, FsError, Ino, ROOT_INO};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Base of the lease-manager node-id space (manager `k` listens on
/// `MANAGER_BASE - k`; clients count up from 1, so the spaces never
/// collide). "The lease manager is deployed on one of the client nodes"
/// (§IV-A); with `ArkConfig::lease_managers > 1` directories partition
/// across a manager cluster — the paper's stated future work.
pub const MANAGER_BASE: u32 = u32::MAX;

/// The manager responsible for a directory.
pub fn manager_node(ino: Ino, managers: usize) -> NodeId {
    NodeId(MANAGER_BASE - (ino % managers.max(1) as u128) as u32)
}

/// Shared state of one ArkFS deployment.
pub struct ArkCluster {
    config: ArkConfig,
    prt: Arc<Prt>,
    lease_net: Arc<dyn Transport<LeaseRequest, LeaseResponse>>,
    ops_net: Arc<dyn Transport<OpRequest, OpResponse>>,
    net_counters: RetryCounters,
    next_node: AtomicU32,
}

impl ArkCluster {
    /// Stand up a virtual-time deployment on `store`, bootstrapping the
    /// root directory inode if the store is empty.
    pub fn new(config: ArkConfig, store: Arc<dyn ObjectStore>) -> Arc<Self> {
        let half_rtt = config.spec.net_half_rtt;
        Self::with_transports(
            config,
            store,
            Arc::new(Bus::new(half_rtt)),
            Arc::new(Bus::new(half_rtt)),
            true,
        )
    }

    /// Stand up a deployment on explicit transports. With `host = true`
    /// this endpoint runs the lease managers and bootstraps the root
    /// inode (the single-process simulator and the `cli serve` side);
    /// with `host = false` it attaches to a deployment hosted elsewhere
    /// (the `cli client` side) and registers nothing.
    pub fn with_transports(
        config: ArkConfig,
        store: Arc<dyn ObjectStore>,
        lease_net: Arc<dyn Transport<LeaseRequest, LeaseResponse>>,
        ops_net: Arc<dyn Transport<OpRequest, OpResponse>>,
        host: bool,
    ) -> Arc<Self> {
        let prt = Arc::new(Prt::new(store, config.chunk_size));
        if host {
            let lease_cfg = LeaseConfig {
                period: config.lease_period,
                grace: config.lease_grace,
                op_service: config.spec.lease_op_service,
            };
            for k in 0..config.lease_managers.max(1) {
                lease_net.register(
                    NodeId(MANAGER_BASE - k as u32),
                    Arc::new(LeaseManager::new(lease_cfg).with_telemetry(prt.telemetry())),
                );
            }

            // Bootstrap "/" if this is a fresh store.
            let boot = Port::new();
            if prt.load_inode(&boot, ROOT_INO) == Err(FsError::NotFound) {
                let root = InodeRecord::new(ROOT_INO, FileType::Directory, 0o755, 0, 0, 0);
                prt.store_inode(&boot, &root).expect("bootstrap root inode");
            }
        }

        let net_counters = RetryCounters::register(&prt.telemetry().registry);
        Arc::new(ArkCluster {
            config,
            prt,
            lease_net,
            ops_net,
            net_counters,
            next_node: AtomicU32::new(1),
        })
    }

    pub fn config(&self) -> &ArkConfig {
        &self.config
    }

    pub fn prt(&self) -> &Arc<Prt> {
        &self.prt
    }

    /// Deployment-wide telemetry (shared with the object store).
    pub fn telemetry(&self) -> &Arc<arkfs_telemetry::Telemetry> {
        self.prt.telemetry()
    }

    pub fn lease_net(&self) -> &Arc<dyn Transport<LeaseRequest, LeaseResponse>> {
        &self.lease_net
    }

    pub fn ops_net(&self) -> &Arc<dyn Transport<OpRequest, OpResponse>> {
        &self.ops_net
    }

    /// Lease-protocol RPC under the deployment's retry policy. Transient
    /// transport failures (timeout, reset — only possible on a real
    /// transport) are retried with exponential backoff; on the virtual
    /// bus this is behaviorally identical to a bare `call`.
    pub(crate) fn call_lease(
        &self,
        port: &Port,
        to: NodeId,
        req: LeaseRequest,
    ) -> Result<LeaseResponse, NetError> {
        call_with_retry(
            self.lease_net.as_ref(),
            port,
            to,
            req,
            self.config.net_retry,
            Some(&self.net_counters),
        )
    }

    /// Forwarded-operation RPC under the deployment's retry policy.
    pub(crate) fn call_ops(
        &self,
        port: &Port,
        to: NodeId,
        req: OpRequest,
    ) -> Result<OpResponse, NetError> {
        call_with_retry(
            self.ops_net.as_ref(),
            port,
            to,
            req,
            self.config.net_retry,
            Some(&self.net_counters),
        )
    }

    /// Mint a new client (one per simulated process). The client
    /// registers its RPC service so leaders can be reached.
    pub fn client(self: &Arc<Self>) -> Arc<ArkClient> {
        let node = NodeId(self.next_node.fetch_add(1, Ordering::Relaxed));
        ArkClient::new(Arc::clone(self), node)
    }

    /// Move the client node-id allocator so two endpoints of one
    /// deployment mint from disjoint spaces (e.g. the serve side takes
    /// 1..=999, a client process starts at 1000).
    pub fn set_first_node(&self, first: u32) {
        self.next_node.store(first.max(1), Ordering::Relaxed);
    }

    /// Crash every lease manager (stops answering). Clients holding
    /// leases keep working until expiry (§III-E.2).
    pub fn crash_lease_manager(&self) {
        for k in 0..self.config.lease_managers.max(1) {
            self.lease_net.disconnect(NodeId(MANAGER_BASE - k as u32));
        }
    }

    /// Restart the lease manager(s) at virtual time `at`: they come back
    /// with empty state and refuse grants for one lease period.
    pub fn restart_lease_manager(&self, at: Nanos) {
        let lease_cfg = LeaseConfig {
            period: self.config.lease_period,
            grace: self.config.lease_grace,
            op_service: self.config.spec.lease_op_service,
        };
        for k in 0..self.config.lease_managers.max(1) {
            self.lease_net.register(
                NodeId(MANAGER_BASE - k as u32),
                Arc::new(
                    LeaseManager::restarted_at(lease_cfg, at).with_telemetry(self.telemetry()),
                ),
            );
        }
    }

    /// Root inode number (constant, for tests).
    pub fn root_ino(&self) -> Ino {
        ROOT_INO
    }
}
