//! Deployment handle: wires the object store, the lease manager, and the
//! client-to-client RPC bus together, and mints clients.

use crate::client::ArkClient;
use crate::config::ArkConfig;
use crate::meta::InodeRecord;
use crate::prt::Prt;
use crate::rpc::{OpRequest, OpResponse};
use arkfs_lease::{LeaseConfig, LeaseManager, LeaseRequest, LeaseResponse};
use arkfs_netsim::{Bus, NodeId};
use arkfs_objstore::ObjectStore;
use arkfs_simkit::{Nanos, Port};
use arkfs_vfs::{FileType, FsError, Ino, ROOT_INO};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Base of the lease-manager node-id space (manager `k` listens on
/// `MANAGER_BASE - k`; clients count up from 1, so the spaces never
/// collide). "The lease manager is deployed on one of the client nodes"
/// (§IV-A); with `ArkConfig::lease_managers > 1` directories partition
/// across a manager cluster — the paper's stated future work.
pub const MANAGER_BASE: u32 = u32::MAX;

/// The manager responsible for a directory.
pub fn manager_node(ino: Ino, managers: usize) -> NodeId {
    NodeId(MANAGER_BASE - (ino % managers.max(1) as u128) as u32)
}

/// Shared state of one ArkFS deployment.
pub struct ArkCluster {
    config: ArkConfig,
    prt: Arc<Prt>,
    lease_bus: Arc<Bus<LeaseRequest, LeaseResponse>>,
    ops_bus: Arc<Bus<OpRequest, OpResponse>>,
    next_node: AtomicU32,
}

impl ArkCluster {
    /// Stand up a deployment on `store`, bootstrapping the root directory
    /// inode if the store is empty.
    pub fn new(config: ArkConfig, store: Arc<dyn ObjectStore>) -> Arc<Self> {
        let prt = Arc::new(Prt::new(store, config.chunk_size));
        let lease_bus = Arc::new(Bus::new(config.spec.net_half_rtt));
        let ops_bus = Arc::new(Bus::new(config.spec.net_half_rtt));
        let lease_cfg = LeaseConfig {
            period: config.lease_period,
            grace: config.lease_grace,
            op_service: config.spec.lease_op_service,
        };
        for k in 0..config.lease_managers.max(1) {
            lease_bus.register(
                NodeId(MANAGER_BASE - k as u32),
                Arc::new(LeaseManager::new(lease_cfg).with_telemetry(prt.telemetry())),
            );
        }

        // Bootstrap "/" if this is a fresh store.
        let boot = Port::new();
        if prt.load_inode(&boot, ROOT_INO) == Err(FsError::NotFound) {
            let root = InodeRecord::new(ROOT_INO, FileType::Directory, 0o755, 0, 0, 0);
            prt.store_inode(&boot, &root).expect("bootstrap root inode");
        }

        Arc::new(ArkCluster {
            config,
            prt,
            lease_bus,
            ops_bus,
            next_node: AtomicU32::new(1),
        })
    }

    pub fn config(&self) -> &ArkConfig {
        &self.config
    }

    pub fn prt(&self) -> &Arc<Prt> {
        &self.prt
    }

    /// Deployment-wide telemetry (shared with the object store).
    pub fn telemetry(&self) -> &Arc<arkfs_telemetry::Telemetry> {
        self.prt.telemetry()
    }

    pub fn lease_bus(&self) -> &Arc<Bus<LeaseRequest, LeaseResponse>> {
        &self.lease_bus
    }

    pub fn ops_bus(&self) -> &Arc<Bus<OpRequest, OpResponse>> {
        &self.ops_bus
    }

    /// Mint a new client (one per simulated process). The client
    /// registers its RPC service so leaders can be reached.
    pub fn client(self: &Arc<Self>) -> Arc<ArkClient> {
        let node = NodeId(self.next_node.fetch_add(1, Ordering::Relaxed));
        ArkClient::new(Arc::clone(self), node)
    }

    /// Crash every lease manager (stops answering). Clients holding
    /// leases keep working until expiry (§III-E.2).
    pub fn crash_lease_manager(&self) {
        for k in 0..self.config.lease_managers.max(1) {
            self.lease_bus.disconnect(NodeId(MANAGER_BASE - k as u32));
        }
    }

    /// Restart the lease manager(s) at virtual time `at`: they come back
    /// with empty state and refuse grants for one lease period.
    pub fn restart_lease_manager(&self, at: Nanos) {
        let lease_cfg = LeaseConfig {
            period: self.config.lease_period,
            grace: self.config.lease_grace,
            op_service: self.config.spec.lease_op_service,
        };
        for k in 0..self.config.lease_managers.max(1) {
            self.lease_bus.register(
                NodeId(MANAGER_BASE - k as u32),
                Arc::new(
                    LeaseManager::restarted_at(lease_cfg, at).with_telemetry(self.telemetry()),
                ),
            );
        }
    }

    /// Root inode number (constant, for tests).
    pub fn root_ino(&self) -> Ino {
        ROOT_INO
    }
}
