//! Versioned little-endian wire codec for ArkFS metadata objects.
//!
//! The PRT module "defines specifications for how file system-related
//! information is stored in the key-value pair" (§III-F). Records are
//! encoded with an explicit, deterministic layout — no external
//! serializer — and journal transactions carry a CRC32 so recovery can
//! tell valid transactions from torn ones.

use std::fmt;

/// Codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the value was complete.
    Truncated,
    /// Unknown enum discriminant or invalid value.
    Invalid(&'static str),
    /// Record version newer than this implementation understands.
    BadVersion(u8),
    /// Checksum mismatch (torn or corrupt journal transaction).
    BadChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated record"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

pub type WireResult<T> = Result<T, WireError>;

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed byte string (u32 length).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Raw access for checksumming.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_u128(&mut self) -> WireResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn get_bool(&mut self) -> WireResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool")),
        }
    }

    pub fn get_bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    pub fn get_str(&mut self) -> WireResult<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::Invalid("utf8"))
    }
}

/// A type with a stable wire representation.
pub trait WireCodec: Sized {
    fn encode(&self, enc: &mut Encoder);
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self>;

    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    fn from_bytes(buf: &[u8]) -> WireResult<Self> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        Ok(v)
    }
}

/// The RPC envelope's causal trace context has a stable wire shape so
/// the future real-transport mode (ROADMAP item 4) propagates it
/// unchanged: `trace_id:u64, parent_span:u64, flags:u8`.
impl WireCodec for arkfs_telemetry::TraceCtx {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.trace_id);
        enc.put_u64(self.parent_span);
        enc.put_u8(self.flags);
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(arkfs_telemetry::TraceCtx {
            trace_id: dec.get_u64()?,
            parent_span: dec.get_u64()?,
            flags: dec.get_u8()?,
        })
    }
}

/// Encode a value as a transport frame payload: the wire body followed
/// by a CRC32 of the body, so a receiving transport can reject corrupt
/// or torn frames before interpreting them.
pub fn to_frame<T: WireCodec>(v: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    v.encode(&mut enc);
    let crc = crc32(enc.as_slice());
    enc.put_u32(crc);
    enc.into_bytes()
}

/// Decode a [`to_frame`] payload: verify the trailing CRC32, decode the
/// body, and require the decoder to consume it exactly.
pub fn from_frame<T: WireCodec>(buf: &[u8]) -> WireResult<T> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let expect = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != expect {
        return Err(WireError::BadChecksum);
    }
    let mut dec = Decoder::new(body);
    let v = T::decode(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(WireError::Invalid("trailing bytes"));
    }
    Ok(v)
}

/// Deduplicating leak for decoding `&'static str` enum payloads
/// ([`FsError::Unsupported`] and friends). Each distinct string leaks
/// once, ever; repeats return the existing allocation. The set of such
/// strings in the protocol is a small fixed vocabulary, so the leak is
/// bounded in practice, and [`MAX_INTERN_LEN`] bounds each entry against
/// a hostile frame.
pub(crate) fn intern(s: &str) -> WireResult<&'static str> {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    const MAX_INTERN_LEN: usize = 256;
    if s.len() > MAX_INTERN_LEN {
        return Err(WireError::Invalid("interned string too long"));
    }
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = table.lock().unwrap();
    if let Some(&existing) = set.get(s) {
        return Ok(existing);
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    Ok(leaked)
}

/// CRC-32 (IEEE 802.3, reflected) used for journal transaction integrity.
pub fn crc32(data: &[u8]) -> u32 {
    // Small table generated at first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFFFFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFFFFFF
}

// ===== RPC envelope codecs =====
//
// Stable tagged layouts for everything that crosses a transport: the
// forwarded-operation protocol (`OpRequest`/`OpResponse`), the lease
// protocol, and their leaf types. Tags are append-only: new variants
// take the next free tag; old tags never change meaning.

mod envelope {
    use super::*;
    use crate::meta::{decode_acl, encode_acl, InodeRecord};
    use crate::rpc::{OpBody, OpRequest, OpResponse};
    use arkfs_lease::{FileLeaseDecision, LeaseRequest, LeaseResponse};
    use arkfs_netsim::NodeId;
    use arkfs_vfs::{Credentials, DirEntry, FileType, FsError, SetAttr};

    /// Caps decoded collection sizes; a hostile length prefix must not
    /// cause a giant allocation before `Truncated` is detected.
    const MAX_VEC: usize = 1 << 16;

    fn put_opt_u64(enc: &mut Encoder, v: Option<u64>) {
        match v {
            Some(x) => {
                enc.put_bool(true);
                enc.put_u64(x);
            }
            None => enc.put_bool(false),
        }
    }

    fn get_opt_u64(dec: &mut Decoder<'_>) -> WireResult<Option<u64>> {
        Ok(if dec.get_bool()? {
            Some(dec.get_u64()?)
        } else {
            None
        })
    }

    fn put_opt_u32(enc: &mut Encoder, v: Option<u32>) {
        match v {
            Some(x) => {
                enc.put_bool(true);
                enc.put_u32(x);
            }
            None => enc.put_bool(false),
        }
    }

    fn get_opt_u32(dec: &mut Decoder<'_>) -> WireResult<Option<u32>> {
        Ok(if dec.get_bool()? {
            Some(dec.get_u32()?)
        } else {
            None
        })
    }

    fn put_opt_rec(enc: &mut Encoder, rec: &Option<InodeRecord>) {
        match rec {
            Some(r) => {
                enc.put_bool(true);
                r.encode(enc);
            }
            None => enc.put_bool(false),
        }
    }

    fn get_opt_rec(dec: &mut Decoder<'_>) -> WireResult<Option<InodeRecord>> {
        Ok(if dec.get_bool()? {
            Some(InodeRecord::decode(dec)?)
        } else {
            None
        })
    }

    fn checked_len(dec: &mut Decoder<'_>) -> WireResult<usize> {
        let n = dec.get_u32()? as usize;
        if n > MAX_VEC {
            return Err(WireError::Invalid("collection too large"));
        }
        Ok(n)
    }

    impl WireCodec for NodeId {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u32(self.0);
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(NodeId(dec.get_u32()?))
        }
    }

    impl WireCodec for Credentials {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u32(self.uid);
            enc.put_u32(self.gid);
            enc.put_u32(self.groups.len() as u32);
            for g in &self.groups {
                enc.put_u32(*g);
            }
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            let uid = dec.get_u32()?;
            let gid = dec.get_u32()?;
            let n = checked_len(dec)?;
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                groups.push(dec.get_u32()?);
            }
            Ok(Credentials { uid, gid, groups })
        }
    }

    impl WireCodec for SetAttr {
        fn encode(&self, enc: &mut Encoder) {
            put_opt_u32(enc, self.mode);
            put_opt_u32(enc, self.uid);
            put_opt_u32(enc, self.gid);
            put_opt_u64(enc, self.atime);
            put_opt_u64(enc, self.mtime);
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(SetAttr {
                mode: get_opt_u32(dec)?,
                uid: get_opt_u32(dec)?,
                gid: get_opt_u32(dec)?,
                atime: get_opt_u64(dec)?,
                mtime: get_opt_u64(dec)?,
            })
        }
    }

    impl WireCodec for FileType {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u8(self.as_u8());
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            FileType::from_u8(dec.get_u8()?).ok_or(WireError::Invalid("file type"))
        }
    }

    impl WireCodec for DirEntry {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_str(&self.name);
            enc.put_u128(self.ino);
            self.ftype.encode(enc);
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(DirEntry {
                name: dec.get_str()?.to_owned(),
                ino: dec.get_u128()?,
                ftype: FileType::decode(dec)?,
            })
        }
    }

    impl WireCodec for FsError {
        fn encode(&self, enc: &mut Encoder) {
            match self {
                FsError::NotFound => enc.put_u8(0),
                FsError::AlreadyExists => enc.put_u8(1),
                FsError::NotADirectory => enc.put_u8(2),
                FsError::IsADirectory => enc.put_u8(3),
                FsError::NotEmpty => enc.put_u8(4),
                FsError::PermissionDenied => enc.put_u8(5),
                FsError::NotPermitted => enc.put_u8(6),
                FsError::InvalidArgument => enc.put_u8(7),
                FsError::NameTooLong => enc.put_u8(8),
                FsError::BadHandle => enc.put_u8(9),
                FsError::BadAccessMode => enc.put_u8(10),
                FsError::Stale => enc.put_u8(11),
                FsError::Busy => enc.put_u8(12),
                FsError::TimedOut => enc.put_u8(13),
                FsError::NoSpace => enc.put_u8(14),
                FsError::Io(msg) => {
                    enc.put_u8(15);
                    enc.put_str(msg);
                }
                FsError::Unsupported(what) => {
                    enc.put_u8(16);
                    enc.put_str(what);
                }
            }
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(match dec.get_u8()? {
                0 => FsError::NotFound,
                1 => FsError::AlreadyExists,
                2 => FsError::NotADirectory,
                3 => FsError::IsADirectory,
                4 => FsError::NotEmpty,
                5 => FsError::PermissionDenied,
                6 => FsError::NotPermitted,
                7 => FsError::InvalidArgument,
                8 => FsError::NameTooLong,
                9 => FsError::BadHandle,
                10 => FsError::BadAccessMode,
                11 => FsError::Stale,
                12 => FsError::Busy,
                13 => FsError::TimedOut,
                14 => FsError::NoSpace,
                15 => FsError::Io(dec.get_str()?.to_owned()),
                16 => FsError::Unsupported(intern(dec.get_str()?)?),
                _ => return Err(WireError::Invalid("fs error tag")),
            })
        }
    }

    impl WireCodec for FileLeaseDecision {
        fn encode(&self, enc: &mut Encoder) {
            match self {
                FileLeaseDecision::Granted { expires_at } => {
                    enc.put_u8(0);
                    enc.put_u64(*expires_at);
                }
                FileLeaseDecision::Direct {
                    flush,
                    direct_until,
                } => {
                    enc.put_u8(1);
                    enc.put_u32(flush.len() as u32);
                    for n in flush {
                        n.encode(enc);
                    }
                    enc.put_u64(*direct_until);
                }
            }
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(match dec.get_u8()? {
                0 => FileLeaseDecision::Granted {
                    expires_at: dec.get_u64()?,
                },
                1 => {
                    let n = checked_len(dec)?;
                    let mut flush = Vec::with_capacity(n);
                    for _ in 0..n {
                        flush.push(NodeId::decode(dec)?);
                    }
                    FileLeaseDecision::Direct {
                        flush,
                        direct_until: dec.get_u64()?,
                    }
                }
                _ => return Err(WireError::Invalid("lease decision tag")),
            })
        }
    }

    impl WireCodec for LeaseRequest {
        fn encode(&self, enc: &mut Encoder) {
            match self {
                LeaseRequest::Acquire { client, ino } => {
                    enc.put_u8(0);
                    client.encode(enc);
                    enc.put_u128(*ino);
                }
                LeaseRequest::Release { client, ino } => {
                    enc.put_u8(1);
                    client.encode(enc);
                    enc.put_u128(*ino);
                }
            }
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            let tag = dec.get_u8()?;
            let client = NodeId::decode(dec)?;
            let ino = dec.get_u128()?;
            Ok(match tag {
                0 => LeaseRequest::Acquire { client, ino },
                1 => LeaseRequest::Release { client, ino },
                _ => return Err(WireError::Invalid("lease request tag")),
            })
        }
    }

    impl WireCodec for LeaseResponse {
        fn encode(&self, enc: &mut Encoder) {
            match self {
                LeaseResponse::Granted {
                    expires_at,
                    must_load,
                    takeover_dirty,
                } => {
                    enc.put_u8(0);
                    enc.put_u64(*expires_at);
                    enc.put_bool(*must_load);
                    enc.put_bool(*takeover_dirty);
                }
                LeaseResponse::Redirect { leader } => {
                    enc.put_u8(1);
                    leader.encode(enc);
                }
                LeaseResponse::Retry { until } => {
                    enc.put_u8(2);
                    enc.put_u64(*until);
                }
                LeaseResponse::Released => enc.put_u8(3),
            }
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(match dec.get_u8()? {
                0 => LeaseResponse::Granted {
                    expires_at: dec.get_u64()?,
                    must_load: dec.get_bool()?,
                    takeover_dirty: dec.get_bool()?,
                },
                1 => LeaseResponse::Redirect {
                    leader: NodeId::decode(dec)?,
                },
                2 => LeaseResponse::Retry {
                    until: dec.get_u64()?,
                },
                3 => LeaseResponse::Released,
                _ => return Err(WireError::Invalid("lease response tag")),
            })
        }
    }

    impl WireCodec for OpBody {
        fn encode(&self, enc: &mut Encoder) {
            match self {
                OpBody::Lookup { dir, name } => {
                    enc.put_u8(0);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                }
                OpBody::DirInode { dir } => {
                    enc.put_u8(1);
                    enc.put_u128(*dir);
                }
                OpBody::Create { dir, name, rec } => {
                    enc.put_u8(2);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    rec.encode(enc);
                }
                OpBody::AddSubdir { dir, name, child } => {
                    enc.put_u8(3);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    enc.put_u128(*child);
                }
                OpBody::Unlink { dir, name } => {
                    enc.put_u8(4);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                }
                OpBody::RemoveSubdir { dir, name } => {
                    enc.put_u8(5);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                }
                OpBody::Readdir { dir, partition } => {
                    enc.put_u8(6);
                    enc.put_u128(*dir);
                    enc.put_u32(*partition);
                }
                OpBody::SetSize {
                    dir,
                    name,
                    ino,
                    size,
                } => {
                    enc.put_u8(7);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    enc.put_u128(*ino);
                    enc.put_u64(*size);
                }
                OpBody::SetAttrChild {
                    dir,
                    name,
                    ino,
                    attr,
                } => {
                    enc.put_u8(8);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    enc.put_u128(*ino);
                    attr.encode(enc);
                }
                OpBody::SetAttrDir { dir, attr } => {
                    enc.put_u8(9);
                    enc.put_u128(*dir);
                    attr.encode(enc);
                }
                OpBody::SetAcl {
                    dir,
                    name,
                    target,
                    acl,
                } => {
                    enc.put_u8(10);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    enc.put_u128(*target);
                    encode_acl(acl, enc);
                }
                OpBody::RenameLocal { dir, from, to } => {
                    enc.put_u8(11);
                    enc.put_u128(*dir);
                    enc.put_str(from);
                    enc.put_str(to);
                }
                OpBody::RenameSrcPrepare {
                    dir,
                    name,
                    txid,
                    peer,
                } => {
                    enc.put_u8(12);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    enc.put_u128(*txid);
                    enc.put_u128(*peer);
                }
                OpBody::RenameDstPrepare {
                    dir,
                    name,
                    txid,
                    peer,
                    ino,
                    ftype,
                    rec,
                } => {
                    enc.put_u8(13);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    enc.put_u128(*txid);
                    enc.put_u128(*peer);
                    enc.put_u128(*ino);
                    ftype.encode(enc);
                    put_opt_rec(enc, rec);
                }
                OpBody::RenameDecide {
                    dir,
                    name,
                    txid,
                    commit,
                    undo,
                } => {
                    enc.put_u8(14);
                    enc.put_u128(*dir);
                    enc.put_str(name);
                    enc.put_u128(*txid);
                    enc.put_bool(*commit);
                    match undo {
                        Some((uname, uino, uftype, urec)) => {
                            enc.put_bool(true);
                            enc.put_str(uname);
                            enc.put_u128(*uino);
                            uftype.encode(enc);
                            put_opt_rec(enc, urec);
                        }
                        None => enc.put_bool(false),
                    }
                }
                OpBody::AcquireReadLease { dir, file, client } => {
                    enc.put_u8(15);
                    enc.put_u128(*dir);
                    enc.put_u128(*file);
                    client.encode(enc);
                }
                OpBody::AcquireWriteLease { dir, file, client } => {
                    enc.put_u8(16);
                    enc.put_u128(*dir);
                    enc.put_u128(*file);
                    client.encode(enc);
                }
                OpBody::ReleaseFileLease { dir, file, client } => {
                    enc.put_u8(17);
                    enc.put_u128(*dir);
                    enc.put_u128(*file);
                    client.encode(enc);
                }
                OpBody::FlushCache { file } => {
                    enc.put_u8(18);
                    enc.put_u128(*file);
                }
                OpBody::FsyncDir { dir, partition } => {
                    enc.put_u8(19);
                    enc.put_u128(*dir);
                    enc.put_u32(*partition);
                }
                OpBody::RelinquishPartition { dir, partition } => {
                    enc.put_u8(20);
                    enc.put_u128(*dir);
                    enc.put_u32(*partition);
                }
            }
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(match dec.get_u8()? {
                0 => OpBody::Lookup {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                },
                1 => OpBody::DirInode {
                    dir: dec.get_u128()?,
                },
                2 => OpBody::Create {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    rec: InodeRecord::decode(dec)?,
                },
                3 => OpBody::AddSubdir {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    child: dec.get_u128()?,
                },
                4 => OpBody::Unlink {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                },
                5 => OpBody::RemoveSubdir {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                },
                6 => OpBody::Readdir {
                    dir: dec.get_u128()?,
                    partition: dec.get_u32()?,
                },
                7 => OpBody::SetSize {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    ino: dec.get_u128()?,
                    size: dec.get_u64()?,
                },
                8 => OpBody::SetAttrChild {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    ino: dec.get_u128()?,
                    attr: SetAttr::decode(dec)?,
                },
                9 => OpBody::SetAttrDir {
                    dir: dec.get_u128()?,
                    attr: SetAttr::decode(dec)?,
                },
                10 => OpBody::SetAcl {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    target: dec.get_u128()?,
                    acl: decode_acl(dec)?,
                },
                11 => OpBody::RenameLocal {
                    dir: dec.get_u128()?,
                    from: dec.get_str()?.to_owned(),
                    to: dec.get_str()?.to_owned(),
                },
                12 => OpBody::RenameSrcPrepare {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    txid: dec.get_u128()?,
                    peer: dec.get_u128()?,
                },
                13 => OpBody::RenameDstPrepare {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    txid: dec.get_u128()?,
                    peer: dec.get_u128()?,
                    ino: dec.get_u128()?,
                    ftype: FileType::decode(dec)?,
                    rec: get_opt_rec(dec)?,
                },
                14 => OpBody::RenameDecide {
                    dir: dec.get_u128()?,
                    name: dec.get_str()?.to_owned(),
                    txid: dec.get_u128()?,
                    commit: dec.get_bool()?,
                    undo: if dec.get_bool()? {
                        Some((
                            dec.get_str()?.to_owned(),
                            dec.get_u128()?,
                            FileType::decode(dec)?,
                            get_opt_rec(dec)?,
                        ))
                    } else {
                        None
                    },
                },
                15 => OpBody::AcquireReadLease {
                    dir: dec.get_u128()?,
                    file: dec.get_u128()?,
                    client: NodeId::decode(dec)?,
                },
                16 => OpBody::AcquireWriteLease {
                    dir: dec.get_u128()?,
                    file: dec.get_u128()?,
                    client: NodeId::decode(dec)?,
                },
                17 => OpBody::ReleaseFileLease {
                    dir: dec.get_u128()?,
                    file: dec.get_u128()?,
                    client: NodeId::decode(dec)?,
                },
                18 => OpBody::FlushCache {
                    file: dec.get_u128()?,
                },
                19 => OpBody::FsyncDir {
                    dir: dec.get_u128()?,
                    partition: dec.get_u32()?,
                },
                20 => OpBody::RelinquishPartition {
                    dir: dec.get_u128()?,
                    partition: dec.get_u32()?,
                },
                _ => return Err(WireError::Invalid("op body tag")),
            })
        }
    }

    impl WireCodec for OpRequest {
        fn encode(&self, enc: &mut Encoder) {
            self.creds.encode(enc);
            self.trace.encode(enc);
            self.body.encode(enc);
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(OpRequest {
                creds: Credentials::decode(dec)?,
                trace: arkfs_telemetry::TraceCtx::decode(dec)?,
                body: OpBody::decode(dec)?,
            })
        }
    }

    impl WireCodec for OpResponse {
        fn encode(&self, enc: &mut Encoder) {
            match self {
                OpResponse::Entry { ino, ftype, rec } => {
                    enc.put_u8(0);
                    enc.put_u128(*ino);
                    ftype.encode(enc);
                    put_opt_rec(enc, rec);
                }
                OpResponse::Inode(rec) => {
                    enc.put_u8(1);
                    rec.encode(enc);
                }
                OpResponse::Entries {
                    entries,
                    partitions,
                } => {
                    enc.put_u8(2);
                    enc.put_u32(entries.len() as u32);
                    for e in entries {
                        e.encode(enc);
                    }
                    enc.put_u32(*partitions);
                }
                OpResponse::Detached { ino, ftype, rec } => {
                    enc.put_u8(3);
                    enc.put_u128(*ino);
                    ftype.encode(enc);
                    put_opt_rec(enc, rec);
                }
                OpResponse::Lease(d) => {
                    enc.put_u8(4);
                    d.encode(enc);
                }
                OpResponse::Flushed { size } => {
                    enc.put_u8(5);
                    put_opt_u64(enc, *size);
                }
                OpResponse::Ok => enc.put_u8(6),
                OpResponse::NotLeader => enc.put_u8(7),
                OpResponse::Err(e) => {
                    enc.put_u8(8);
                    e.encode(enc);
                }
            }
        }
        fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
            Ok(match dec.get_u8()? {
                0 => OpResponse::Entry {
                    ino: dec.get_u128()?,
                    ftype: FileType::decode(dec)?,
                    rec: get_opt_rec(dec)?,
                },
                1 => OpResponse::Inode(InodeRecord::decode(dec)?),
                2 => {
                    let n = checked_len(dec)?;
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        entries.push(DirEntry::decode(dec)?);
                    }
                    OpResponse::Entries {
                        entries,
                        partitions: dec.get_u32()?,
                    }
                }
                3 => OpResponse::Detached {
                    ino: dec.get_u128()?,
                    ftype: FileType::decode(dec)?,
                    rec: get_opt_rec(dec)?,
                },
                4 => OpResponse::Lease(FileLeaseDecision::decode(dec)?),
                5 => OpResponse::Flushed {
                    size: get_opt_u64(dec)?,
                },
                6 => OpResponse::Ok,
                7 => OpResponse::NotLeader,
                8 => OpResponse::Err(FsError::decode(dec)?),
                _ => return Err(WireError::Invalid("op response tag")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0xCDEF);
        e.put_u32(0xDEADBEEF);
        e.put_u64(u64::MAX - 1);
        e.put_u128(u128::MAX / 3);
        e.put_bool(true);
        e.put_bool(false);
        e.put_str("héllo");
        e.put_bytes(b"\x00\x01\x02");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xCDEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_u128().unwrap(), u128::MAX / 3);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), b"\x00\x01\x02");
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncation_detected() {
        let mut e = Encoder::new();
        e.put_u64(7);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..4]);
        assert_eq!(d.get_u64(), Err(WireError::Truncated));
        // String with a length prefix longer than the payload.
        let mut e = Encoder::new();
        e.put_u32(100);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bytes(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_bool_and_utf8_detected() {
        let mut d = Decoder::new(&[2]);
        assert_eq!(d.get_bool(), Err(WireError::Invalid("bool")));
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str(), Err(WireError::Invalid("utf8")));
    }

    #[test]
    fn trace_ctx_roundtrips() {
        let ctx = arkfs_telemetry::TraceCtx {
            trace_id: 0xDEAD_BEEF_0000_0001,
            parent_span: 42,
            flags: arkfs_telemetry::TraceCtx::SAMPLED | arkfs_telemetry::TraceCtx::BACKGROUND,
        };
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), 17);
        assert_eq!(arkfs_telemetry::TraceCtx::from_bytes(&bytes).unwrap(), ctx);
        assert_eq!(
            arkfs_telemetry::TraceCtx::from_bytes(&bytes[..10]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn encoder_capacity_and_len() {
        let mut e = Encoder::with_capacity(64);
        assert!(e.is_empty());
        e.put_u32(1);
        assert_eq!(e.len(), 4);
        assert_eq!(e.as_slice(), &1u32.to_le_bytes());
    }
}
