//! Versioned little-endian wire codec for ArkFS metadata objects.
//!
//! The PRT module "defines specifications for how file system-related
//! information is stored in the key-value pair" (§III-F). Records are
//! encoded with an explicit, deterministic layout — no external
//! serializer — and journal transactions carry a CRC32 so recovery can
//! tell valid transactions from torn ones.

use std::fmt;

/// Codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the value was complete.
    Truncated,
    /// Unknown enum discriminant or invalid value.
    Invalid(&'static str),
    /// Record version newer than this implementation understands.
    BadVersion(u8),
    /// Checksum mismatch (torn or corrupt journal transaction).
    BadChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated record"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

pub type WireResult<T> = Result<T, WireError>;

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed byte string (u32 length).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Raw access for checksumming.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_u128(&mut self) -> WireResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn get_bool(&mut self) -> WireResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool")),
        }
    }

    pub fn get_bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    pub fn get_str(&mut self) -> WireResult<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::Invalid("utf8"))
    }
}

/// A type with a stable wire representation.
pub trait WireCodec: Sized {
    fn encode(&self, enc: &mut Encoder);
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self>;

    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    fn from_bytes(buf: &[u8]) -> WireResult<Self> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        Ok(v)
    }
}

/// The RPC envelope's causal trace context has a stable wire shape so
/// the future real-transport mode (ROADMAP item 4) propagates it
/// unchanged: `trace_id:u64, parent_span:u64, flags:u8`.
impl WireCodec for arkfs_telemetry::TraceCtx {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.trace_id);
        enc.put_u64(self.parent_span);
        enc.put_u8(self.flags);
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(arkfs_telemetry::TraceCtx {
            trace_id: dec.get_u64()?,
            parent_span: dec.get_u64()?,
            flags: dec.get_u8()?,
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected) used for journal transaction integrity.
pub fn crc32(data: &[u8]) -> u32 {
    // Small table generated at first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFFFFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFFFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0xCDEF);
        e.put_u32(0xDEADBEEF);
        e.put_u64(u64::MAX - 1);
        e.put_u128(u128::MAX / 3);
        e.put_bool(true);
        e.put_bool(false);
        e.put_str("héllo");
        e.put_bytes(b"\x00\x01\x02");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xCDEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_u128().unwrap(), u128::MAX / 3);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), b"\x00\x01\x02");
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncation_detected() {
        let mut e = Encoder::new();
        e.put_u64(7);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..4]);
        assert_eq!(d.get_u64(), Err(WireError::Truncated));
        // String with a length prefix longer than the payload.
        let mut e = Encoder::new();
        e.put_u32(100);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bytes(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_bool_and_utf8_detected() {
        let mut d = Decoder::new(&[2]);
        assert_eq!(d.get_bool(), Err(WireError::Invalid("bool")));
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str(), Err(WireError::Invalid("utf8")));
    }

    #[test]
    fn trace_ctx_roundtrips() {
        let ctx = arkfs_telemetry::TraceCtx {
            trace_id: 0xDEAD_BEEF_0000_0001,
            parent_span: 42,
            flags: arkfs_telemetry::TraceCtx::SAMPLED | arkfs_telemetry::TraceCtx::BACKGROUND,
        };
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), 17);
        assert_eq!(arkfs_telemetry::TraceCtx::from_bytes(&bytes).unwrap(), ctx);
        assert_eq!(
            arkfs_telemetry::TraceCtx::from_bytes(&bytes[..10]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn encoder_capacity_and_len() {
        let mut e = Encoder::with_capacity(64);
        assert!(e.is_empty());
        e.put_u32(1);
        assert_eq!(e.len(), 4);
        assert_eq!(e.as_slice(), &1u32.to_le_bytes());
    }
}
