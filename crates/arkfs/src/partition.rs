//! Partitioned-directory support: hash-splitting one hot directory's
//! dentry buckets across `P` independent leaders.
//!
//! A directory starts as a single partition (the directory's own inode
//! number keys its lease, journal stream, and commit lane, exactly as
//! before). When its leader's journal append rate crosses
//! `ArkConfig::partition_split_rate`, the directory splits: each
//! partition `p` owns a contiguous range of the directory's dentry
//! buckets and is keyed by a derived *partition inode* so all the
//! existing per-directory machinery — lease manager entries, journal
//! object naming (`j<pkey>.<seq>`), takeover recovery, commit-lane
//! selection — applies per partition with no new object kinds.
//!
//! The map itself is tiny (`dir`, `epoch`, partition count) and lives in
//! a reserved dentry-bucket slot (`e<dir>.<u64::MAX>`) so `rmdir`'s
//! bucket sweep deletes it for free and an absent map means "one
//! partition" (full backward compatibility with stores written before
//! this scheme existed).

use crate::wire::{Decoder, Encoder, WireCodec, WireError, WireResult};
use arkfs_vfs::Ino;

/// Record format version of the on-store partition map.
pub const PARTITION_VERSION: u8 = 1;

/// Reserved dentry-bucket index that stores the partition map object.
/// Real buckets are `0..dentry_buckets` (never anywhere near this).
pub const PMAP_BUCKET: u64 = u64::MAX;

/// Large odd salt for deriving partition keys; odd so multiples never
/// collide modulo 2^128, and large so derived keys land far away from
/// the dense low inode space `fresh_ino` allocates from.
const PARTITION_SALT: u128 = 0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_1B9B;

/// The key under which partition `p` of directory `dir` leases, journals
/// and checkpoints. Partition 0 is ALWAYS the directory's real inode, so
/// an unpartitioned directory (P = 1) is byte-identical to the
/// pre-partitioning layout and every old store replays unchanged.
pub fn partition_ino(dir: Ino, partition: u32) -> Ino {
    if partition == 0 {
        dir
    } else {
        dir ^ PARTITION_SALT.wrapping_mul(partition as u128)
    }
}

/// First owned bucket of partition `p` (balanced contiguous split).
pub fn partition_lo(p: u32, buckets: u64, partitions: u32) -> u64 {
    (p as u128 * buckets as u128 / partitions.max(1) as u128) as u64
}

/// One-past-last owned bucket of partition `p`.
pub fn partition_hi(p: u32, buckets: u64, partitions: u32) -> u64 {
    partition_lo(p + 1, buckets, partitions)
}

/// The partition owning `bucket` under a balanced contiguous split of
/// `buckets` buckets across `partitions` leaders (inverse of
/// [`partition_lo`]).
pub fn partition_of_bucket(bucket: u64, buckets: u64, partitions: u32) -> u32 {
    debug_assert!(bucket < buckets);
    let p = partitions.max(1) as u128;
    ((bucket as u128 * p + p - 1) / buckets.max(1) as u128) as u32
}

/// The on-store partition map of one directory. Absent object = one
/// partition. `epoch` increments on every split/merge install, purely
/// for observability and staleness diagnostics — correctness comes from
/// leaders validating bucket ownership against their own loaded range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    pub dir: Ino,
    pub epoch: u64,
    pub partitions: u32,
}

impl PartitionMap {
    /// The implicit map of a directory with no stored map object.
    pub fn singleton(dir: Ino) -> Self {
        PartitionMap {
            dir,
            epoch: 0,
            partitions: 1,
        }
    }

    /// The lease/journal key of partition `p`.
    pub fn pkey(&self, p: u32) -> Ino {
        partition_ino(self.dir, p)
    }

    /// The partition owning `name` given the directory's bucket count.
    pub fn partition_of_name(&self, name: &str, buckets: u64) -> u32 {
        partition_of_bucket(
            crate::meta::dentry_bucket(name, buckets),
            buckets,
            self.partitions,
        )
    }

    /// The owned bucket range `[lo, hi)` of partition `p`.
    pub fn range(&self, p: u32, buckets: u64) -> (u64, u64) {
        (
            partition_lo(p, buckets, self.partitions),
            partition_hi(p, buckets, self.partitions),
        )
    }
}

impl WireCodec for PartitionMap {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(PARTITION_VERSION);
        enc.put_u128(self.dir);
        enc.put_u64(self.epoch);
        enc.put_u32(self.partitions);
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_u8()?;
        if v != PARTITION_VERSION {
            return Err(WireError::BadVersion(v));
        }
        let map = PartitionMap {
            dir: dec.get_u128()?,
            epoch: dec.get_u64()?,
            partitions: dec.get_u32()?,
        };
        if map.partitions == 0 {
            return Err(WireError::Invalid("partitions"));
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_zero_is_the_directory() {
        assert_eq!(partition_ino(42, 0), 42);
        assert_ne!(partition_ino(42, 1), 42);
    }

    #[test]
    fn partition_keys_are_distinct_across_partitions_and_dirs() {
        let mut seen = std::collections::HashSet::new();
        for dir in [2u128, 3, 100, 1 << 64] {
            for p in 0..8u32 {
                assert!(seen.insert(partition_ino(dir, p)), "collision {dir}/{p}");
            }
        }
    }

    #[test]
    fn ranges_tile_the_bucket_space() {
        for buckets in [1u64, 4, 5, 7, 16, 64] {
            for partitions in 1..=8u32 {
                if partitions as u64 > buckets {
                    continue;
                }
                let mut covered = 0;
                for p in 0..partitions {
                    let lo = partition_lo(p, buckets, partitions);
                    let hi = partition_hi(p, buckets, partitions);
                    assert!(lo < hi, "empty partition {p}/{partitions} of {buckets}");
                    covered += hi - lo;
                    for b in lo..hi {
                        assert_eq!(partition_of_bucket(b, buckets, partitions), p);
                    }
                }
                assert_eq!(covered, buckets);
                assert_eq!(partition_hi(partitions - 1, buckets, partitions), buckets);
            }
        }
    }

    #[test]
    fn name_routing_matches_bucket_routing() {
        let map = PartitionMap {
            dir: 7,
            epoch: 3,
            partitions: 4,
        };
        for i in 0..200 {
            let name = format!("f{i}");
            let b = crate::meta::dentry_bucket(&name, 16);
            assert_eq!(
                map.partition_of_name(&name, 16),
                partition_of_bucket(b, 16, 4)
            );
        }
    }

    #[test]
    fn map_roundtrip_and_validation() {
        let map = PartitionMap {
            dir: 0xFEED,
            epoch: 12,
            partitions: 8,
        };
        assert_eq!(PartitionMap::from_bytes(&map.to_bytes()).unwrap(), map);
        let mut bad = map.to_bytes();
        bad[0] = 99;
        assert_eq!(
            PartitionMap::from_bytes(&bad),
            Err(WireError::BadVersion(99))
        );
        let zero = PartitionMap {
            partitions: 0,
            ..map
        }
        .to_bytes();
        assert_eq!(
            PartitionMap::from_bytes(&zero),
            Err(WireError::Invalid("partitions"))
        );
    }

    #[test]
    fn singleton_is_identity() {
        let map = PartitionMap::singleton(9);
        assert_eq!(map.partitions, 1);
        assert_eq!(map.pkey(0), 9);
        assert_eq!(map.range(0, 16), (0, 16));
    }
}
