//! Open-file handles and per-file lease acquisition/release (§III-D).
//!
//! The [`FileTable`] shards open handles by handle id (`id % N`), so
//! threads reading/writing different files never contend on one handle
//! map. Handle ids are *composed* so that `id % N == ino % N`: every
//! handle on the same file lives in that file's home shard, which lets
//! the per-file scans (flush-to-direct, reads-own-writes stat,
//! truncate) lock exactly one shard instead of walking all N. Shards
//! are rank-*Leaf* locks (see [`super::lockorder`]): a shard is only
//! ever held for the duration of one map access, never across an RPC,
//! a metatable, or the data cache. The remaining whole-table scans
//! (sync-all size pushes, crash clear) lock shards one at a time,
//! sequentially.
//!
//! Client-side file-lease calls live here too: read/write lease
//! acquisition against the parent's leader, the write-upgrade
//! flush-on-conflict, and lease release (failed releases are counted on
//! `lease.release_failed.count`, not silently dropped).

use super::lockorder::{self, Rank, RankGuard};
use super::ArkClient;
use crate::rpc::{OpBody, OpResponse};
use arkfs_lease::FileLeaseDecision;
use arkfs_simkit::Port;
use arkfs_vfs::{Credentials, FsError, FsResult, Ino, OpenFlags};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-open-file state, including the read-ahead window (§III-D).
#[derive(Debug)]
pub(crate) struct OpenFile {
    pub(crate) ino: Ino,
    pub(crate) parent: Ino,
    /// Dentry name under `parent` at open time; size pushes route by it
    /// to the partition owning the dentry when `parent` is partitioned.
    pub(crate) name: String,
    pub(crate) flags: OpenFlags,
    /// Local view of the file size (updated by writes; pushed to the
    /// leader on fsync/close).
    pub(crate) size: u64,
    /// True while data goes through the cache (valid file lease); false
    /// in direct-I/O mode after a lease conflict.
    pub(crate) cached: bool,
    pub(crate) wrote: bool,
    /// Current read-ahead window in bytes (0 = no prefetch).
    pub(crate) ra_window: u64,
    /// End offset of the previous read (sequentiality detection).
    pub(crate) last_pos: u64,
}

#[derive(Debug, Default)]
struct Shard {
    handles: HashMap<u64, OpenFile>,
    locks: u64,
}

struct ShardGuard<'a> {
    guard: MutexGuard<'a, Shard>,
    _rank: RankGuard,
}

/// Open-file handles, sharded by handle id.
#[derive(Debug)]
pub(crate) struct FileTable {
    shards: Vec<Mutex<Shard>>,
    next_handle: AtomicU64,
    node: u32,
    pub(crate) contention: super::Contention,
}

impl FileTable {
    pub(crate) fn new(shards: usize, node: u32) -> Self {
        FileTable {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            next_handle: AtomicU64::new(1),
            node,
            contention: super::Contention::default(),
        }
    }

    fn shard_at(&self, i: usize) -> ShardGuard<'_> {
        let rank = lockorder::acquire(self.node, Rank::Leaf);
        let mut guard = self.contention.lock(&self.shards[i]);
        guard.locks += 1;
        ShardGuard { guard, _rank: rank }
    }

    fn shard(&self, id: u64) -> ShardGuard<'_> {
        self.shard_at((id % self.shards.len() as u64) as usize)
    }

    /// The shard every handle on `file` lives in (`ino % N`).
    fn home_shard(&self, file: Ino) -> usize {
        (file % self.shards.len() as u128) as usize
    }

    /// Register an open file; returns its handle id. Ids are composed
    /// as `seq * N + (ino % N)` so that `id % N` is the file's home
    /// shard: lookups by id and scans by ino hit the same shard.
    pub(crate) fn insert(&self, file: OpenFile) -> u64 {
        let n = self.shards.len() as u64;
        let seq = self.next_handle.fetch_add(1, Ordering::Relaxed);
        let id = seq * n + self.home_shard(file.ino) as u64;
        self.shard(id).guard.handles.insert(id, file);
        id
    }

    pub(crate) fn remove(&self, id: u64) -> Option<OpenFile> {
        self.shard(id).guard.handles.remove(&id)
    }

    /// Snapshot of an open handle's fields used by read/write.
    pub(crate) fn view(&self, id: u64) -> Option<(Ino, Ino, OpenFlags, u64, bool)> {
        let s = self.shard(id);
        let h = s.guard.handles.get(&id)?;
        Some((h.ino, h.parent, h.flags, h.size, h.cached))
    }

    /// Read fields of one handle under its shard lock.
    pub(crate) fn get<R>(&self, id: u64, f: impl FnOnce(&OpenFile) -> R) -> Option<R> {
        self.shard(id).guard.handles.get(&id).map(f)
    }

    /// Mutate one handle under its shard lock.
    pub(crate) fn update<R>(&self, id: u64, f: impl FnOnce(&mut OpenFile) -> R) -> Option<R> {
        self.shard(id).guard.handles.get_mut(&id).map(f)
    }

    /// Flip every handle on `file` to direct-I/O mode (leader-initiated
    /// flush); returns the largest locally-known size, if any matched.
    /// Only `file`'s home shard can hold matching handles.
    pub(crate) fn flip_to_direct(&self, file: Ino) -> Option<u64> {
        let mut size = None;
        let mut s = self.shard_at(self.home_shard(file));
        for h in s.guard.handles.values_mut() {
            if h.ino == file {
                h.cached = false;
                size = Some(size.unwrap_or(0).max(h.size));
            }
        }
        size
    }

    /// Largest size any open handle knows for `file` (reads-own-writes).
    pub(crate) fn max_open_size(&self, file: Ino) -> Option<u64> {
        let mut size = None;
        let s = self.shard_at(self.home_shard(file));
        for h in s.guard.handles.values() {
            if h.ino == file {
                size = Some(size.unwrap_or(0).max(h.size));
            }
        }
        size
    }

    /// Force every handle on `file` to `size` (truncate).
    pub(crate) fn set_size_for(&self, file: Ino, size: u64) {
        let mut s = self.shard_at(self.home_shard(file));
        for h in s.guard.handles.values_mut() {
            if h.ino == file {
                h.size = size;
            }
        }
    }

    /// Clear every written handle's dirty flag and collect its
    /// `(parent, name, ino, size)` for a size push (sync_all).
    pub(crate) fn take_pending_sizes(&self) -> Vec<(Ino, String, Ino, u64)> {
        let mut pending = Vec::new();
        for i in 0..self.shards.len() {
            let mut s = self.shard_at(i);
            for h in s.guard.handles.values_mut() {
                if h.wrote {
                    h.wrote = false;
                    pending.push((h.parent, h.name.clone(), h.ino, h.size));
                }
            }
        }
        pending
    }

    /// Number of currently open handles.
    pub(crate) fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard_at(i).guard.handles.len())
            .sum()
    }

    /// Drop every handle (crash).
    pub(crate) fn clear(&self) {
        for i in 0..self.shards.len() {
            self.shard_at(i).guard.handles.clear();
        }
    }

    /// Total shard-lock acquisitions so far.
    pub(crate) fn lock_count(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| {
                let s = self.shard_at(i);
                // Don't count this read itself.
                s.guard.locks - 1
            })
            .sum()
    }
}

impl ArkClient {
    /// Acquire a read lease on `file` from the leader of `parent`.
    /// Returns whether caching is allowed.
    pub(crate) fn file_lease_read(&self, parent: Ino, file: Ino) -> FsResult<bool> {
        let body = OpBody::AcquireReadLease {
            dir: parent,
            file,
            client: self.state.id,
        };
        match self.on_dir(&Credentials::root(), parent, body)? {
            OpResponse::Lease(FileLeaseDecision::Granted { .. }) => Ok(true),
            OpResponse::Lease(FileLeaseDecision::Direct { .. }) => Ok(false),
            OpResponse::Err(e) => Err(e),
            _ => Err(FsError::Io("unexpected lease response".into())),
        }
    }

    pub(crate) fn file_lease_write(&self, parent: Ino, file: Ino) -> FsResult<bool> {
        let body = OpBody::AcquireWriteLease {
            dir: parent,
            file,
            client: self.state.id,
        };
        match self.on_dir(&Credentials::root(), parent, body)? {
            OpResponse::Lease(FileLeaseDecision::Granted { .. }) => Ok(true),
            OpResponse::Lease(FileLeaseDecision::Direct { .. }) => {
                // Our own cached data must go to the store before direct
                // mode.
                self.flush_file_data(file)?;
                self.state.lock_cache().invalidate_file(file);
                Ok(false)
            }
            OpResponse::Err(e) => Err(e),
            _ => Err(FsError::Io("unexpected lease response".into())),
        }
    }

    /// Hand a file lease back to the parent's leader. A rejected or
    /// undeliverable release is not an error for the caller (the lease
    /// drains by expiry), but it is *counted* so operators can see
    /// leaders serving stale lease tables.
    pub(crate) fn release_file_lease(&self, parent: Ino, file: Ino) {
        let body = OpBody::ReleaseFileLease {
            dir: parent,
            file,
            client: self.state.id,
        };
        match self.on_dir(&Credentials::root(), parent, body) {
            Ok(OpResponse::Ok) => {}
            Ok(_) | Err(_) => self.state.lease_release_failed.inc(),
        }
    }

    /// [`Self::release_file_lease`] on a background timeline (async
    /// close): the release still executes — and still counts failures —
    /// but the caller's clock does not wait for it. A single delivery
    /// attempt suffices; an undelivered release drains by expiry.
    pub(crate) fn release_file_lease_background(&self, parent: Ino, file: Ino) {
        let fork = Port::starting_at(self.port.now());
        let body = OpBody::ReleaseFileLease {
            dir: parent,
            file,
            client: self.state.id,
        };
        // Routed like the acquire (lease service shards by file ino),
        // so the release reaches the partition holding the lease entry.
        match self.on_dir_port(&fork, &Credentials::root(), parent, body) {
            Ok(OpResponse::Ok) => {}
            Ok(_) | Err(_) => self.state.lease_release_failed.inc(),
        }
    }

    /// Push size/mtime to the parent leader and make the journal durable
    /// (fsync semantics).
    pub(crate) fn push_size(
        &self,
        ctx: &Credentials,
        parent: Ino,
        name: &str,
        file: Ino,
        size: u64,
    ) -> FsResult<()> {
        match self.on_dir(
            ctx,
            parent,
            OpBody::SetSize {
                dir: parent,
                name: name.to_string(),
                ino: file,
                size,
            },
        )? {
            OpResponse::Ok => Ok(()),
            OpResponse::Err(e) => Err(e),
            _ => Err(FsError::Io("unexpected setsize response".into())),
        }
    }
}
