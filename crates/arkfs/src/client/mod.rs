//! The ArkFS client: near-POSIX operations with client-driven metadata.
//!
//! Each [`ArkClient`] is one simulated process. It resolves paths
//! component by component; for every directory it either *leads* (holds
//! the lease and the [`Metatable`]) or forwards to the leader over RPC
//! (§III-B, Figure 3). Data I/O goes through the write-back
//! [`DataCache`] under per-file read/write leases (§III-D), and all
//! mutations are journaled per directory (§III-E).
//!
//! The client is decomposed into layered services, each in its own
//! submodule:
//!
//! * [`dirsvc`] — directory-leadership lifecycle: lease
//!   acquire/extend/release, takeover and recovery entry, local-vs-remote
//!   routing, and the leader-side RPC service.
//! * [`namei`] — path resolution, permission checks, and the permission
//!   cache (§III-C).
//! * [`filetable`] — open-file handles and per-file lease
//!   acquisition/release with flush-on-conflict (§III-D).
//! * [`datapath`] — [`DataCache`] interaction: read-ahead policy,
//!   write-back, and the cached read/write paths.
//! * [`vfs_impl`] — the thin [`Vfs`] surface composing the layers.
//!
//! Hot shared state is lock-striped so threads operating on distinct
//! directories/files proceed without contending on a single client
//! lock; the stripe count is [`ArkConfig::client_lock_stripes`]. The
//! lock-ordering rule (**stripe → metatable → cache**) is documented
//! and enforced (in debug builds) by [`lockorder`].

pub(crate) mod datapath;
pub(crate) mod dirsvc;
pub(crate) mod filetable;
pub(crate) mod lockorder;
pub(crate) mod namei;
pub(crate) mod vfs_impl;

use crate::cache::DataCache;
use crate::cluster::{manager_node, ArkCluster};
use crate::config::ArkConfig;
use crate::metatable::Metatable;
use crate::prt::Prt;
use arkfs_lease::LeaseRequest;
use arkfs_netsim::NodeId;
use arkfs_simkit::{Nanos, Port, SharedResource};
use arkfs_telemetry::{Counter, CtxGuard, Gauge, HistogramSet, Telemetry, TraceCtx, PID_CLIENT};
use arkfs_vfs::{Credentials, FsResult, Ino, Vfs, ROOT_INO};
use dirsvc::{ClientService, DirService};
use filetable::FileTable;
use lockorder::{Rank, RankGuard};
use namei::Pcache;
use parking_lot::{Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// How often a non-leader retries lease acquisition before giving up.
pub(crate) const MAX_LEASE_RETRIES: usize = 16;

/// Every `op.<name>` latency histogram the client records, preregistered
/// at construction so no Vfs op ever takes a registry lock.
const OP_NAMES: &[&str] = &[
    "op.mkdir",
    "op.rmdir",
    "op.create",
    "op.open",
    "op.close",
    "op.read",
    "op.write",
    "op.fsync",
    "op.stat",
    "op.readdir",
    "op.unlink",
    "op.rename",
    "op.truncate",
    "op.setattr",
    "op.symlink",
    "op.readlink",
    "op.set_acl",
    "op.get_acl",
    "op.access",
    "op.sync_all",
    "op.statfs",
];

/// One commit lane: the per-lane "commit thread" of the journal
/// pipeline (§III-E). The [`SharedResource`] serializes journal appends
/// sharing the lane in virtual time; `flights` tracks the virtual
/// completion times of sealed batches flushed on background timelines,
/// which is what lets `fsync`/`sync_all` act as durability barriers
/// (drain) and what bounds the async pipeline's in-flight window
/// (admission backpressure).
pub(crate) struct CommitLane {
    pub(crate) res: SharedResource,
    /// Virtual completion times of tracked in-flight flushes, ascending.
    flights: Mutex<Vec<Nanos>>,
    /// Led tables mapped to this lane, for group commit: a sealing
    /// directory's flight carries co-laned members' due transactions in
    /// the same multi-PUT. Weak so a forgotten table (lease loss,
    /// handoff) drops out on its own; entries are pruned on snapshot.
    /// Guarded by a plain mutex outside the rank order — it is only ever
    /// held for map access, never while taking a ranked lock.
    members: Mutex<HashMap<Ino, Weak<Mutex<crate::metatable::Metatable>>>>,
    /// `journal.sealed_depth`: deployment-wide count of tracked
    /// in-flight sealed batches (shared by all lanes of all clients).
    depth: Arc<Gauge>,
}

impl CommitLane {
    fn new(depth: Arc<Gauge>) -> Self {
        CommitLane {
            res: SharedResource::ideal("commit-lane"),
            flights: Mutex::new(Vec::new()),
            members: Mutex::new(HashMap::new()),
            depth,
        }
    }

    /// Register a led table as a group-commit member of this lane.
    pub(crate) fn register(&self, pkey: Ino, table: &Arc<Mutex<crate::metatable::Metatable>>) {
        self.members.lock().insert(pkey, Arc::downgrade(table));
    }

    /// Live members of this lane (dead entries pruned as a side effect).
    pub(crate) fn members_snapshot(&self) -> Vec<(Ino, Arc<Mutex<crate::metatable::Metatable>>)> {
        let mut members = self.members.lock();
        members.retain(|_, w| w.strong_count() > 0);
        members
            .iter()
            .filter_map(|(&pkey, w)| w.upgrade().map(|t| (pkey, t)))
            .collect()
    }

    fn prune(&self, flights: &mut Vec<Nanos>, now: Nanos) {
        let before = flights.len();
        flights.retain(|&c| c > now);
        let landed = before - flights.len();
        if landed > 0 {
            self.depth.add(-(landed as i64));
        }
    }

    /// Admission control for a new sealed batch: the virtual time at
    /// which the lane has a free slot under the `max_inflight` bound.
    /// Returns `now` when the window has room; otherwise the completion
    /// time of the flight whose landing frees a slot — the caller waits
    /// until then (backpressure) before sealing.
    pub(crate) fn admit(&self, now: Nanos, max_inflight: usize) -> Nanos {
        let mut flights = self.flights.lock();
        self.prune(&mut flights, now);
        let max = max_inflight.max(1);
        if flights.len() < max {
            now
        } else {
            flights[flights.len() - max]
        }
    }

    /// Track one sealed batch flushed on a background timeline.
    pub(crate) fn record_flight(&self, completion: Nanos) {
        let mut flights = self.flights.lock();
        let at = flights.partition_point(|&c| c <= completion);
        flights.insert(at, completion);
        self.depth.add(1);
    }

    /// Durability barrier: the virtual time by which every tracked
    /// in-flight flush has landed (at least `now`). The tracked flights
    /// are consumed — the caller commits to waiting until the returned
    /// time.
    pub(crate) fn drain_until(&self, now: Nanos) -> Nanos {
        let mut flights = self.flights.lock();
        let done = flights.last().copied().unwrap_or(now).max(now);
        let n = flights.len();
        flights.clear();
        if n > 0 {
            self.depth.add(-(n as i64));
        }
        done
    }
}

/// The client's seeded RNG stream (ino and txid draws). Deliberately a
/// single stream, not striped: it is drawn from once per create/txid
/// (never hot), and keeping one deterministic sequence per client keeps
/// simulated object placement — and thus benchmark figures —
/// reproducible across refactors.
#[derive(Debug)]
pub(crate) struct ClientRng {
    rng: Mutex<StdRng>,
}

impl ClientRng {
    fn new(node: u32) -> Self {
        ClientRng {
            rng: Mutex::new(StdRng::seed_from_u64(0xA2F5_0000 ^ node as u64)),
        }
    }

    pub(crate) fn random_u128(&self) -> u128 {
        self.rng.lock().random()
    }
}

/// Acquisition and contention counts for one family of client locks.
/// Acquisition counts are exact (maintained under the respective locks,
/// adding no cross-stripe contention); `contended`/`wait_ns` measure
/// *real* blocking on the host machine, never the virtual timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockFamilyStats {
    /// Total lock acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Total wall-clock time spent blocked, in nanoseconds.
    pub wait_ns: u64,
}

/// Lock statistics of the client's hot state, per lock family (for the
/// `shared-client` ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Directory-table stripes ([`dirsvc::DirService`]), striped by ino.
    pub dir_stripe: LockFamilyStats,
    /// Permission-cache stripes ([`namei::Pcache`]), striped by ino.
    pub pcache: LockFamilyStats,
    /// Open-handle shards ([`filetable::FileTable`]), sharded by id.
    pub handle_shard: LockFamilyStats,
    /// The data-cache lock (a single lock regardless of stripe count).
    pub data_cache: LockFamilyStats,
}

impl LockStats {
    /// Combined stats of the three *striped* families (the state this
    /// refactor striped; excludes the always-single data-cache lock).
    pub fn striped(&self) -> LockFamilyStats {
        let mut total = LockFamilyStats::default();
        for f in [&self.dir_stripe, &self.pcache, &self.handle_shard] {
            total.acquisitions += f.acquisitions;
            total.contended += f.contended;
            total.wait_ns += f.wait_ns;
        }
        total
    }
}

/// Contention diagnostics for one lock family: how many acquisitions
/// blocked, and for how long (real time — this is *observability of the
/// host machine*, never fed back into the virtual timeline).
#[derive(Debug, Default)]
pub(crate) struct Contention {
    contended: AtomicU64,
    wait_ns: AtomicU64,
}

impl Contention {
    /// Lock `m`, recording whether (and how long) the caller blocked.
    /// The fast path is a single uncontended `try_lock`.
    pub(crate) fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        if let Some(guard) = m.try_lock() {
            return guard;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let guard = m.lock();
        self.wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        guard
    }

    pub(crate) fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    pub(crate) fn wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }
}

/// The data cache plus its rank guard; derefs to [`DataCache`].
pub(crate) struct CacheGuard<'a> {
    guard: MutexGuard<'a, DataCache>,
    _rank: RankGuard,
}

impl Deref for CacheGuard<'_> {
    type Target = DataCache;
    fn deref(&self) -> &DataCache {
        &self.guard
    }
}

impl DerefMut for CacheGuard<'_> {
    fn deref_mut(&mut self) -> &mut DataCache {
        &mut self.guard
    }
}

/// A locked [`Metatable`] plus its rank guard; derefs to the table.
pub(crate) struct TableGuard<'a> {
    guard: MutexGuard<'a, Metatable>,
    _rank: RankGuard,
}

impl Deref for TableGuard<'_> {
    type Target = Metatable;
    fn deref(&self) -> &Metatable {
        &self.guard
    }
}

impl DerefMut for TableGuard<'_> {
    fn deref_mut(&mut self) -> &mut Metatable {
        &mut self.guard
    }
}

/// Everything shared between the client's own thread(s) and its RPC
/// service handler (which runs on the *caller's* thread).
pub(crate) struct ClientState {
    pub(crate) id: NodeId,
    pub(crate) cluster: Arc<ArkCluster>,
    /// Directory-leadership state, striped by directory ino.
    pub(crate) dirs: DirService,
    /// Permission cache (pcache mode), striped by directory ino.
    pub(crate) pcache: Pcache,
    /// Open-file handles, sharded by handle id.
    pub(crate) files: FileTable,
    pub(crate) cache: Mutex<DataCache>,
    /// Exact count of data-cache lock acquisitions, bumped while the
    /// lock is held (zero cross-thread contention).
    cache_locks: AtomicU64,
    /// Contention diagnostics for the data-cache lock.
    cache_contention: Contention,
    /// Serializes operations this client serves as a leader (its "CPU").
    pub(crate) server: SharedResource,
    /// Commit lanes; directories map statically by inode number.
    pub(crate) lanes: Vec<CommitLane>,
    pub(crate) rngs: ClientRng,
    pub(crate) crashed: AtomicBool,
    /// Deployment-wide telemetry (shared with the object store and
    /// lease managers).
    pub(crate) telemetry: Arc<Telemetry>,
    /// Registry handles for the data-cache hit/miss counters, cloned
    /// into every [`DataCache`] this client creates.
    pub(crate) cache_counters: (Arc<Counter>, Arc<Counter>),
    /// Per-op latency histograms, preregistered at construction
    /// (`op.<name>.latency_ns`).
    pub(crate) op_hists: HistogramSet,
    /// Per-op ack-latency histograms (`op.<name>.ack_ns`): time until
    /// the op returned to the caller. In sync mode ack equals
    /// durability wherever the op implies it; in async mode the gap to
    /// `op.<name>.durable_ns` is the pipeline's win.
    pub(crate) op_ack_hists: HistogramSet,
    /// `lease.release_failed.count`: file-lease releases the leader
    /// rejected or that never reached it.
    pub(crate) lease_release_failed: Arc<Counter>,
    /// `lease.handoff_failed.count`: partition-lease handoffs
    /// (RelinquishPartition) the old leader rejected or that never
    /// reached it — the repartitioner falls back to takeover recovery.
    pub(crate) lease_handoff_failed: Arc<Counter>,
    /// `meta.partition.split.count` / `meta.partition.merge.count` /
    /// `meta.partition.handoff.count`.
    pub(crate) partition_splits: Arc<Counter>,
    pub(crate) partition_merges: Arc<Counter>,
    pub(crate) partition_handoffs: Arc<Counter>,
    /// Repartition requests raised by the load trigger inside
    /// `serve_local` (which holds the metatable and cannot run the split
    /// protocol itself): `(dir, target partition count)` pairs drained at
    /// the top of the next client-facing op.
    pub(crate) pending_splits: Mutex<Vec<(Ino, u32)>>,
    /// Directories this client has acked async-mode mutations against
    /// (local or remote leader) since the last `sync_all`: each owes a
    /// partition-barrier fan-out before that barrier may return.
    pub(crate) dirty_dirs: Mutex<HashSet<Ino>>,
    /// Flush epoch: bumped by every `sync_all`. `statfs` memoizes its
    /// inode count per epoch (see [`vfs_impl`]).
    pub(crate) flush_epoch: AtomicU64,
    /// `(epoch, inode count)` of the last full inode LIST.
    pub(crate) statfs_cache: Mutex<Option<(u64, u64)>>,
    /// Per-client op sequence number: the source of deterministic trace
    /// ids and head-based sampling decisions. Deliberately NOT drawn
    /// from [`ClientRng`] — tracing must never perturb the seeded
    /// streams that make benchmark figures reproducible.
    pub(crate) op_seq: AtomicU64,
}

/// One ArkFS client process.
pub struct ArkClient {
    pub(crate) state: Arc<ClientState>,
    pub(crate) port: Port,
}

impl ArkClient {
    pub(crate) fn new(cluster: Arc<ArkCluster>, id: NodeId) -> Arc<Self> {
        let config = cluster.config().clone();
        let stripes = config.client_lock_stripes.max(1);
        let telemetry = Arc::clone(cluster.telemetry());
        let sealed_depth = telemetry.registry.gauge("journal.sealed_depth");
        let lanes = (0..config.journal_lanes.max(1))
            .map(|_| CommitLane::new(Arc::clone(&sealed_depth)))
            .collect();
        let cache_counters = (
            telemetry.registry.counter("cache.hit.count"),
            telemetry.registry.counter("cache.miss.count"),
        );
        let mut cache = DataCache::new(config.cache_entries);
        cache.attach_counters(Arc::clone(&cache_counters.0), Arc::clone(&cache_counters.1));
        let op_hists = telemetry.registry.histogram_set(OP_NAMES, ".latency_ns");
        let op_ack_hists = telemetry.registry.histogram_set(OP_NAMES, ".ack_ns");
        let lease_release_failed = telemetry.registry.counter("lease.release_failed.count");
        let lease_handoff_failed = telemetry.registry.counter("lease.handoff_failed.count");
        let partition_splits = telemetry.registry.counter("meta.partition.split.count");
        let partition_merges = telemetry.registry.counter("meta.partition.merge.count");
        let partition_handoffs = telemetry.registry.counter("meta.partition.handoff.count");
        let state = Arc::new(ClientState {
            id,
            cluster: Arc::clone(&cluster),
            dirs: DirService::new(stripes, id.0),
            pcache: Pcache::new(stripes, id.0),
            files: FileTable::new(stripes, id.0),
            cache: Mutex::new(cache),
            cache_locks: AtomicU64::new(0),
            cache_contention: Contention::default(),
            server: SharedResource::ideal("leader-server"),
            lanes,
            rngs: ClientRng::new(id.0),
            crashed: AtomicBool::new(false),
            telemetry,
            cache_counters,
            op_hists,
            op_ack_hists,
            lease_release_failed,
            lease_handoff_failed,
            partition_splits,
            partition_merges,
            partition_handoffs,
            pending_splits: Mutex::new(Vec::new()),
            dirty_dirs: Mutex::new(HashSet::new()),
            flush_epoch: AtomicU64::new(0),
            statfs_cache: Mutex::new(None),
            op_seq: AtomicU64::new(0),
        });
        cluster
            .ops_net()
            .register(id, Arc::new(ClientService(Arc::clone(&state))));
        Arc::new(ArkClient {
            state,
            port: Port::new(),
        })
    }

    /// This client's network identity.
    pub fn id(&self) -> NodeId {
        self.state.id
    }

    /// The client's virtual timeline (benchmark harness access).
    pub fn port(&self) -> &Port {
        &self.port
    }

    /// Number of directories this client currently leads.
    pub fn led_directories(&self) -> usize {
        self.state.dirs.led_directories()
    }

    /// Number of currently open file handles.
    pub fn open_handles(&self) -> usize {
        self.state.files.len()
    }

    /// Data-cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.state.lock_cache();
        (c.hits(), c.misses())
    }

    /// File-lease releases the leader rejected or that never reached it
    /// (`lease.release_failed.count`).
    pub fn lease_release_failures(&self) -> u64 {
        self.state.lease_release_failed.get()
    }

    /// Partition lifecycle counters: `(splits, merges, handoffs,
    /// handoff failures)` — `meta.partition.{split,merge,handoff}.count`
    /// and `lease.handoff_failed.count`.
    pub fn partition_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.state.partition_splits.get(),
            self.state.partition_merges.get(),
            self.state.partition_handoffs.get(),
            self.state.lease_handoff_failed.get(),
        )
    }

    /// Per-family lock acquisition and contention statistics of the
    /// client's hot state.
    pub fn lock_stats(&self) -> LockStats {
        let family = |acquisitions: u64, c: &Contention| LockFamilyStats {
            acquisitions,
            contended: c.contended(),
            wait_ns: c.wait_ns(),
        };
        LockStats {
            dir_stripe: family(self.state.dirs.lock_count(), &self.state.dirs.contention),
            pcache: family(
                self.state.pcache.lock_count(),
                &self.state.pcache.contention,
            ),
            handle_shard: family(self.state.files.lock_count(), &self.state.files.contention),
            data_cache: family(
                self.state.cache_locks.load(Ordering::Relaxed),
                &self.state.cache_contention,
            ),
        }
    }

    /// Deployment-wide telemetry: the metrics registry (counters,
    /// gauges, latency histograms) and span tracer shared by this
    /// client, the object store, the metadata path, and the lease
    /// managers.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.state.telemetry
    }

    /// Publish [`ArkClient::lock_stats`] into the registry as
    /// `lock.<family>.{acquisitions,contended,blocked_ns}` gauges so
    /// registry consumers (the `ablate` table, `cli obs dump`) print
    /// lock diagnostics uniformly with every other metric. Contended /
    /// blocked_ns measure *host* wall-clock blocking and are therefore
    /// nondeterministic — callers that diff committed output must not
    /// snapshot them (the ablation table is exempt from the drift
    /// check for exactly this reason).
    pub fn publish_lock_stats(&self) {
        let stats = self.lock_stats();
        let reg = &self.state.telemetry.registry;
        for (family, s) in [
            ("dir_stripe", stats.dir_stripe),
            ("pcache", stats.pcache),
            ("handle_shard", stats.handle_shard),
            ("data_cache", stats.data_cache),
        ] {
            reg.gauge(&format!("lock.{family}.acquisitions"))
                .set(s.acquisitions as i64);
            reg.gauge(&format!("lock.{family}.contended"))
                .set(s.contended as i64);
            reg.gauge(&format!("lock.{family}.blocked_ns"))
                .set(s.wait_ns as i64);
        }
    }

    /// Drop all CLEAN cached data (the fio benchmark's "drop the cache
    /// entries of written files" step, §IV-B). Dirty chunks are flushed
    /// first.
    pub fn drop_data_cache(&self) -> FsResult<()> {
        let dirty = self.state.lock_cache().take_all_dirty();
        self.write_back(dirty)?;
        *self.state.lock_cache() = self.state.fresh_cache(self.config().cache_entries);
        Ok(())
    }

    /// Simulate a hard crash: stop serving, drop ALL in-memory state
    /// without flushing. Journaled-but-unapplied transactions stay in the
    /// object store for the next leader to recover (§III-E.1).
    pub fn crash(&self) {
        self.state.crashed.store(true, Ordering::Release);
        self.state.cluster.ops_net().disconnect(self.state.id);
        self.state.dirs.clear();
        self.state.files.clear();
        self.state.pcache.clear();
        *self.state.lock_cache() = self
            .state
            .fresh_cache(self.state.cluster.config().cache_entries);
    }

    /// Flush everything and hand every directory lease back cleanly.
    pub fn release_all(&self, ctx: &Credentials) -> FsResult<()> {
        self.sync_all(ctx)?;
        let mut dirs: Vec<Ino> = self.state.dirs.led_inos();
        dirs.sort_unstable();
        for dir in dirs {
            self.state.dirs.forget(dir);
            let _ = self.state.cluster.call_lease(
                &self.port,
                manager_node(dir, self.config().lease_managers),
                LeaseRequest::Release {
                    client: self.state.id,
                    ino: dir,
                },
            );
        }
        Ok(())
    }

    // ---- internal helpers --------------------------------------------------

    pub(crate) fn config(&self) -> &ArkConfig {
        self.state.cluster.config()
    }

    pub(crate) fn prt(&self) -> &Arc<Prt> {
        self.state.cluster.prt()
    }

    /// Run one client-facing op under telemetry: its virtual duration
    /// feeds the `op.<name>.latency_ns` histogram, and (when tracing is
    /// enabled) a root span lands on this client's track with every
    /// span recorded downstream — RPC serving, journal flushes, store
    /// I/O — causally linked to it through the ambient [`TraceCtx`].
    pub(crate) fn traced<T>(
        &self,
        name: &'static str,
        f: impl FnOnce() -> FsResult<T>,
    ) -> FsResult<T> {
        // Load-triggered repartitions requested by serve_local run here,
        // between ops, where no table or stripe lock is held.
        self.drain_pending_splits();
        // Deterministic trace identity: a per-client sequence number,
        // never the seeded RNG streams. Head-based sampling decides here
        // — one modulus on the sequence — so two traced runs of the same
        // workload sample the same ops and produce identical span graphs.
        let seq = self.state.op_seq.fetch_add(1, Ordering::Relaxed);
        let trace_id = ((self.state.id.0 as u64 + 1) << 32) | (seq & 0xFFFF_FFFF);
        let tracer = &self.state.telemetry.tracer;
        let every = tracer.sample_every();
        let sampled = every == 0 || seq.is_multiple_of(every);
        let ctx = TraceCtx::root(trace_id, sampled);
        let _trace = CtxGuard::install(ctx);
        let flight = &self.state.telemetry.flight;
        let start = self.port.now();
        flight.record(self.state.id.0, start, "op.begin", seq as i64, name);
        let r = f();
        let end = self.port.now();
        flight.record(self.state.id.0, end, "op.end", i64::from(r.is_err()), name);
        let elapsed = end.saturating_sub(start);
        self.state.op_hists.get(name).record(elapsed);
        // The return to the caller IS the ack; `op.*.durable_ns` (stamped
        // when the mutation's transaction lands) measures the rest.
        self.state.op_ack_hists.get(name).record(elapsed);
        if tracer.enabled() {
            // parent_span 0 marks the trace root; the trace id doubles
            // as the root span id children link to.
            tracer.record_with_ctx(
                TraceCtx {
                    parent_span: 0,
                    ..ctx
                },
                PID_CLIENT,
                self.state.id.0,
                name,
                "op",
                start,
                end,
            );
        }
        r
    }

    pub(crate) fn fresh_ino(&self) -> Ino {
        loop {
            let ino: u128 = self.state.rngs.random_u128();
            if ino > ROOT_INO {
                return ino;
            }
        }
    }

    pub(crate) fn fuse_charge(&self, requests: usize) {
        if self.config().fuse_model {
            self.port
                .advance(self.config().spec.fuse_op_cost * requests as u64);
        }
    }
}

impl ClientState {
    /// A new [`DataCache`] wired to the shared hit/miss counters.
    pub(crate) fn fresh_cache(&self, entries: usize) -> DataCache {
        let mut cache = DataCache::new(entries);
        cache.attach_counters(
            Arc::clone(&self.cache_counters.0),
            Arc::clone(&self.cache_counters.1),
        );
        cache
    }

    /// Acquire the data-cache lock (rank: Leaf).
    pub(crate) fn lock_cache(&self) -> CacheGuard<'_> {
        let rank = lockorder::acquire(self.id.0, Rank::Leaf);
        let guard = self.cache_contention.lock(&self.cache);
        self.cache_locks.fetch_add(1, Ordering::Relaxed);
        CacheGuard { guard, _rank: rank }
    }

    /// Acquire a led directory's metatable (rank: Metatable).
    pub(crate) fn lock_table<'a>(&self, table: &'a Arc<Mutex<Metatable>>) -> TableGuard<'a> {
        let rank = lockorder::acquire(self.id.0, Rank::Metatable);
        TableGuard {
            guard: table.lock(),
            _rank: rank,
        }
    }

    /// The commit lane a directory partition maps to, keyed by its
    /// partition key (== the directory ino for unpartitioned
    /// directories), so a split directory's partitions spread across
    /// lanes and commit in parallel.
    pub(crate) fn lane(&self, pkey: Ino) -> &CommitLane {
        &self.lanes[(pkey % self.lanes.len() as u128) as usize]
    }
}
