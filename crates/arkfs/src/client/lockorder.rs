//! Lock-ordering rule for the client's shared state, with a
//! debug-build assertion helper.
//!
//! The client's hot state is guarded by three ranks of locks, and every
//! code path must acquire them in strictly increasing rank order:
//!
//! 1. **Stripe** — a dir-table stripe ([`super::dirsvc::DirService`])
//!    or a permission-cache stripe ([`super::namei::Pcache`]). Keyed by
//!    directory inode.
//! 2. **Metatable** — the per-led-directory
//!    [`crate::metatable::Metatable`] mutex.
//! 3. **Leaf** — the [`crate::cache::DataCache`] mutex and the
//!    open-handle shards ([`super::filetable::FileTable`]). Leaf locks
//!    are never held while acquiring any other ranked lock.
//!
//! In shorthand: **stripe → metatable → cache**. Same-rank locks are
//! never nested (sequential acquisition after release is fine — e.g.
//! `serve_flush` takes the data cache, releases it, then walks the
//! handle shards one at a time).
//!
//! Ranks are tracked per *client* (per [`arkfs_netsim::NodeId`]): a
//! leader holding its own metatable legitimately calls into another
//! client's RPC service on the same OS thread (the simulated network is
//! synchronous), and that callee starts a fresh ordering context for
//! its own locks.
//!
//! In release builds this module compiles to nothing.

#[cfg(debug_assertions)]
use std::cell::RefCell;

/// Lock ranks, lowest acquired first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Rank {
    /// Dir-table or pcache stripe.
    Stripe = 1,
    /// A led directory's metatable.
    Metatable = 2,
    /// Data cache / handle shard.
    Leaf = 3,
}

#[cfg(debug_assertions)]
thread_local! {
    /// Stack of `(client node id, rank)` pairs held by this thread.
    static HELD: RefCell<Vec<(u32, Rank)>> = const { RefCell::new(Vec::new()) };
}

/// Marks a ranked lock as held until dropped. Acquire it *immediately
/// before* taking the lock it guards, and keep it alive for the same
/// scope as the `MutexGuard`.
#[must_use = "the rank is released when this guard drops"]
#[derive(Debug)]
pub(crate) struct RankGuard {
    #[cfg(debug_assertions)]
    client: u32,
    #[cfg(debug_assertions)]
    rank: Rank,
}

/// Assert that acquiring `rank` on behalf of client `client` respects
/// the stripe → metatable → cache order, and record it as held.
#[inline]
pub(crate) fn acquire(client: u32, rank: Rank) -> RankGuard {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&worst) = held
                .iter()
                .filter(|&&(c, _)| c == client)
                .map(|(_, r)| r)
                .max()
            {
                assert!(
                    rank > worst,
                    "lock-order violation on client {client}: acquiring {rank:?} \
                     while already holding {worst:?} (rule: stripe → metatable → cache)"
                );
            }
            held.push((client, rank));
        });
        RankGuard { client, rank }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (client, rank);
        RankGuard {}
    }
}

#[cfg(debug_assertions)]
impl Drop for RankGuard {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let pos = held
                .iter()
                .rposition(|&(c, r)| c == self.client && r == self.rank)
                .expect("RankGuard dropped twice");
            held.remove(pos);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_order_is_allowed() {
        let _s = acquire(1, Rank::Stripe);
        let _m = acquire(1, Rank::Metatable);
        let _l = acquire(1, Rank::Leaf);
    }

    #[test]
    fn sequential_same_rank_is_allowed() {
        for _ in 0..3 {
            let _l = acquire(1, Rank::Leaf);
        }
    }

    #[test]
    fn other_clients_start_fresh() {
        // A leader holding its metatable calls into another client,
        // which takes its own stripe: legal.
        let _m = acquire(1, Rank::Metatable);
        let _s = acquire(2, Rank::Stripe);
        let _l = acquire(2, Rank::Leaf);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn decreasing_order_panics_in_debug() {
        let _l = acquire(1, Rank::Leaf);
        let _m = acquire(1, Rank::Metatable);
        #[cfg(not(debug_assertions))]
        panic!("lock-order violation (release builds do not check)");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn nested_same_rank_panics_in_debug() {
        let _a = acquire(1, Rank::Stripe);
        let _b = acquire(1, Rank::Stripe);
        #[cfg(not(debug_assertions))]
        panic!("lock-order violation (release builds do not check)");
    }
}
