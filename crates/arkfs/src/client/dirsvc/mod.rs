//! Directory-leadership lifecycle and local-vs-remote routing.
//!
//! For every directory a client touches it either *leads* (holds the
//! lease from the lease manager and the loaded [`Metatable`]) or knows
//! (or learns) the current leader and forwards over RPC (§III-B,
//! Figure 3). This module owns:
//!
//! * the striped leadership state ([`DirService`]): led tables, lease
//!   expiries, and remote-leader hints, all keyed by **partition key**
//!   (== the directory ino for unpartitioned directories), plus cached
//!   [`PartitionMap`]s keyed by directory ino;
//! * lease acquire/extend/release and the takeover/recovery entry point
//!   ([`ClientState::dir_ref_part`] → [`Metatable::load_partition`]);
//! * the leader-side RPC service ([`ClientService`], [`ClientState::serve`])
//!   and leader-initiated cache-flush broadcasts (§III-D);
//! * client-side routing helpers ([`ArkClient::on_dir`],
//!   [`ArkClient::remote_call`]) and the split/merge protocol
//!   ([`ArkClient::set_dir_partitions`]).
//!
//! ## Partition routing
//!
//! Cached partition maps are *hints*: a client with no cached map
//! assumes the singleton layout, and every authority check happens at
//! the serving side — [`Metatable::load_partition`] validates the
//! routed `(partition, count)` against the store's map (`Stale` on
//! mismatch) and `serve_local` rejects names outside the led partition's
//! bucket range (`NotLeader`). Either signal makes the router refresh
//! its cached map from the store (one GET) and re-route.
//!
//! The split/merge protocol drains — commits *and* checkpoints — every
//! old partition's journal **before** installing the new map. That
//! ordering is the barrier-safety invariant: anything a client acked
//! under an older map is already durable, so `fsync`'s fan-out may trust
//! a cached (possibly stale) map.
//!
//! Lock order (see [`super::lockorder`]): a dir stripe is rank
//! *Stripe*; it may be held while acquiring a lease or loading a
//! metatable from the store, but never while locking another ranked
//! client lock except a [`Metatable`] (rank above it).

mod ops;

pub(crate) use ops::target_dir;

use super::lockorder::{self, Rank, RankGuard};
use super::{ArkClient, ClientState, MAX_LEASE_RETRIES};
use crate::cluster::manager_node;
use crate::meta::InodeRecord;
use crate::metatable::Metatable;
use crate::partition::{partition_ino, PartitionMap};
use crate::rpc::{OpBody, OpRequest, OpResponse};
use arkfs_lease::{LeaseRequest, LeaseResponse};
use arkfs_netsim::{NodeId, Service};
use arkfs_objstore::ObjectKey;
use arkfs_simkit::{Nanos, Port};
use arkfs_telemetry::PID_CLIENT;
use arkfs_vfs::{Credentials, FileType, FsError, FsResult, Ino};
use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A directory as seen from one client.
pub(crate) enum DirRef {
    Local(Arc<Mutex<Metatable>>),
    Remote(NodeId),
}

/// One stripe of directory-leadership state. The leadership maps are
/// keyed by **partition key** (== the directory ino for partition 0 and
/// for unpartitioned directories) and updated atomically under the
/// stripe lock, so a table entry and its lease expiry can never be
/// observed out of sync.
#[derive(Debug, Default)]
pub(crate) struct DirStripe {
    /// Directory partitions this client currently leads (within this
    /// stripe), keyed by partition key.
    pub(crate) tables: HashMap<Ino, Arc<Mutex<Metatable>>>,
    /// Lease expiry per led partition key.
    pub(crate) leases: HashMap<Ino, Nanos>,
    /// Last-known leaders of remote directory partitions, keyed by
    /// partition key.
    pub(crate) remote_hints: HashMap<Ino, NodeId>,
    /// Cached partition maps, keyed by (real) directory ino. Routing
    /// hints only — never authoritative; a directory with no entry is
    /// treated as unpartitioned until a `Stale`/`NotLeader` forces a
    /// refresh from the store.
    pub(crate) pmaps: HashMap<Ino, Arc<PartitionMap>>,
    /// Acquisitions of this stripe's lock (maintained under the lock).
    locks: u64,
}

/// A locked [`DirStripe`] plus its rank guard.
pub(crate) struct StripeGuard<'a> {
    guard: MutexGuard<'a, DirStripe>,
    _rank: RankGuard,
}

impl Deref for StripeGuard<'_> {
    type Target = DirStripe;
    fn deref(&self) -> &DirStripe {
        &self.guard
    }
}

impl DerefMut for StripeGuard<'_> {
    fn deref_mut(&mut self) -> &mut DirStripe {
        &mut self.guard
    }
}

/// Lock-striped directory-leadership state: directory `d` lives in
/// stripe `d % N`, so threads working on directories in different
/// stripes never contend on each other's leadership bookkeeping.
#[derive(Debug)]
pub(crate) struct DirService {
    stripes: Vec<Mutex<DirStripe>>,
    node: u32,
    pub(crate) contention: super::Contention,
}

impl DirService {
    pub(crate) fn new(stripes: usize, node: u32) -> Self {
        DirService {
            stripes: (0..stripes.max(1)).map(|_| Mutex::default()).collect(),
            node,
            contention: super::Contention::default(),
        }
    }

    /// Lock the stripe owning `dir` (rank: Stripe).
    pub(crate) fn stripe(&self, dir: Ino) -> StripeGuard<'_> {
        self.stripe_at((dir % self.stripes.len() as u128) as usize)
    }

    /// Number of directories this client currently leads.
    pub(crate) fn led_directories(&self) -> usize {
        (0..self.stripes.len())
            .map(|i| self.stripe_at(i).tables.len())
            .sum()
    }

    /// Inos of every led directory.
    pub(crate) fn led_inos(&self) -> Vec<Ino> {
        (0..self.stripes.len())
            .flat_map(|i| self.stripe_at(i).tables.keys().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Every led directory with its metatable.
    pub(crate) fn led_tables(&self) -> Vec<(Ino, Arc<Mutex<Metatable>>)> {
        (0..self.stripes.len())
            .flat_map(|i| {
                self.stripe_at(i)
                    .tables
                    .iter()
                    .map(|(&ino, t)| (ino, Arc::clone(t)))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Drop leadership bookkeeping for partition key `pkey` (table +
    /// lease expiry).
    pub(crate) fn forget(&self, pkey: Ino) {
        let mut s = self.stripe(pkey);
        s.tables.remove(&pkey);
        s.leases.remove(&pkey);
    }

    /// Drop the remote-leader hint for partition key `pkey`.
    pub(crate) fn forget_hint(&self, pkey: Ino) {
        self.stripe(pkey).remote_hints.remove(&pkey);
    }

    /// Drop everything (crash).
    pub(crate) fn clear(&self) {
        for i in 0..self.stripes.len() {
            let mut s = self.stripe_at(i);
            s.tables.clear();
            s.leases.clear();
            s.remote_hints.clear();
            s.pmaps.clear();
        }
    }

    /// Total stripe-lock acquisitions so far.
    pub(crate) fn lock_count(&self) -> u64 {
        (0..self.stripes.len())
            .map(|i| {
                let s = self.stripe_at(i);
                // Don't count this read itself.
                s.locks - 1
            })
            .sum()
    }

    fn stripe_at(&self, i: usize) -> StripeGuard<'_> {
        let rank = lockorder::acquire(self.node, Rank::Stripe);
        let mut guard = self.contention.lock(&self.stripes[i]);
        guard.locks += 1;
        StripeGuard { guard, _rank: rank }
    }
}

/// The RPC face of a client: leaders serve forwarded operations here,
/// on the *caller's* thread.
pub(crate) struct ClientService(pub(crate) Arc<ClientState>);

impl Service<OpRequest, OpResponse> for ClientService {
    fn handle(&self, arrival: Nanos, req: OpRequest) -> (OpResponse, Nanos) {
        if self.0.crashed.load(Ordering::Acquire) {
            return (OpResponse::NotLeader, arrival);
        }
        let spec = &self.0.cluster.config().spec;
        let start = self.0.server.reserve(arrival, spec.leader_op_service);
        let port = Port::starting_at(start);
        let resp = self.0.serve(&port, req);
        (resp, port.now())
    }
}

impl ClientState {
    /// The cached partition map for `dir` (singleton when none cached).
    pub(crate) fn cached_pmap(&self, dir: Ino) -> Arc<PartitionMap> {
        if let Some(m) = self.dirs.stripe(dir).pmaps.get(&dir) {
            return Arc::clone(m);
        }
        Arc::new(PartitionMap::singleton(dir))
    }

    /// Install a partition map into the cache. Singleton maps are stored
    /// as absence, matching the store's convention.
    pub(crate) fn cache_pmap(&self, map: PartitionMap) {
        let mut s = self.dirs.stripe(map.dir);
        if map.partitions <= 1 {
            s.pmaps.remove(&map.dir);
        } else {
            s.pmaps.insert(map.dir, Arc::new(map));
        }
    }

    /// Re-read `dir`'s partition map from the store (absent == singleton)
    /// and cache the result.
    pub(crate) fn refresh_pmap(&self, port: &Port, dir: Ino) -> FsResult<Arc<PartitionMap>> {
        let t0 = port.now();
        let map = self
            .cluster
            .prt()
            .load_pmap(port, dir)?
            .unwrap_or_else(|| PartitionMap::singleton(dir));
        // The refresh GET is time the op spends re-routing, not serving.
        let tracer = &self.telemetry.tracer;
        if tracer.enabled() && port.now() > t0 {
            tracer.record(
                PID_CLIENT,
                self.id.0,
                "route.refresh",
                "route",
                t0,
                port.now(),
            );
        }
        let arc = Arc::new(map);
        let mut s = self.dirs.stripe(dir);
        if arc.partitions <= 1 {
            s.pmaps.remove(&dir);
        } else {
            s.pmaps.insert(dir, Arc::clone(&arc));
        }
        Ok(arc)
    }

    /// Resolve partition 0 of a directory (== the whole directory when
    /// unpartitioned), refreshing the cached partition map on `Stale`.
    /// Partition 0's key is the directory ino itself, so callers that
    /// only need the dir inode, file leases, or dir-level attributes can
    /// stay partition-agnostic.
    pub(crate) fn dir_ref(&self, port: &Port, dir: Ino) -> FsResult<DirRef> {
        for _ in 0..MAX_LEASE_RETRIES {
            let pmap = self.cached_pmap(dir);
            match self.dir_ref_part(port, dir, 0, pmap.partitions) {
                Err(FsError::Stale) => {
                    self.refresh_pmap(port, dir)?;
                }
                r => return r,
            }
        }
        Err(FsError::TimedOut)
    }

    /// Resolve one partition of a directory to a local metatable (leading
    /// it, acquiring or extending the lease as needed) or the current
    /// remote leader. `pcount` is the *routed* partition count; if it
    /// disagrees with the store's map at load time, the load fails with
    /// [`FsError::Stale`] and the caller refreshes its cached map.
    ///
    /// The stripe lock is held across the lease-manager exchange and any
    /// [`Metatable::load_partition`], so concurrent threads racing for
    /// the same partition converge on one acquisition instead of
    /// double-loading.
    pub(crate) fn dir_ref_part(
        &self,
        port: &Port,
        dir: Ino,
        pidx: u32,
        pcount: u32,
    ) -> FsResult<DirRef> {
        let config = self.cluster.config();
        let pkey = partition_ino(dir, pidx);
        for _ in 0..MAX_LEASE_RETRIES {
            let mut s = self.dirs.stripe(pkey);
            let now = port.now();
            if let Some(table) = s.tables.get(&pkey).cloned() {
                let expiry = s.leases.get(&pkey).copied().unwrap_or(0);
                if expiry > now.saturating_add(config.lease_renew_margin) {
                    return Ok(DirRef::Local(table));
                }
                // Extend (or same-holder re-acquire).
                match self.cluster.call_lease(
                    port,
                    manager_node(pkey, config.lease_managers),
                    LeaseRequest::Acquire {
                        client: self.id,
                        ino: pkey,
                    },
                ) {
                    Ok(LeaseResponse::Granted {
                        expires_at,
                        must_load,
                        ..
                    }) => {
                        if must_load {
                            // Defensive: the manager believes our state is
                            // stale; rebuild. On failure drop the old
                            // table too — it may have been built under a
                            // superseded partition map.
                            let fresh = match Metatable::load_partition(
                                self.cluster.prt(),
                                port,
                                dir,
                                pidx,
                                pcount,
                                config.dentry_buckets,
                                config.lease_period,
                            ) {
                                Ok(t) => t,
                                Err(e) => {
                                    s.tables.remove(&pkey);
                                    s.leases.remove(&pkey);
                                    let _ = self.cluster.call_lease(
                                        port,
                                        manager_node(pkey, config.lease_managers),
                                        LeaseRequest::Release {
                                            client: self.id,
                                            ino: pkey,
                                        },
                                    );
                                    return Err(e);
                                }
                            };
                            let fresh = Arc::new(Mutex::new(fresh));
                            s.tables.insert(pkey, Arc::clone(&fresh));
                            s.leases.insert(pkey, expires_at);
                            self.lane(pkey).register(pkey, &fresh);
                            return Ok(DirRef::Local(fresh));
                        }
                        s.leases.insert(pkey, expires_at);
                        return Ok(DirRef::Local(table));
                    }
                    Ok(LeaseResponse::Redirect { leader }) => {
                        // We lost the partition; discard stale state.
                        s.tables.remove(&pkey);
                        s.leases.remove(&pkey);
                        s.remote_hints.insert(pkey, leader);
                        self.telemetry.flight.record(
                            self.id.0,
                            port.now(),
                            "lease.redirect",
                            leader.0 as i64,
                            "lost partition lease; redirected to leader",
                        );
                        return Ok(DirRef::Remote(leader));
                    }
                    Ok(LeaseResponse::Retry { until }) => {
                        drop(s);
                        self.telemetry.flight.record(
                            self.id.0,
                            port.now(),
                            "lease.retry",
                            pidx as i64,
                            "lease busy; backing off",
                        );
                        let wait_start = port.now();
                        port.wait_until(until);
                        let tracer = &self.telemetry.tracer;
                        if tracer.enabled() && port.now() > wait_start {
                            tracer.record(
                                PID_CLIENT,
                                self.id.0,
                                "lease.wait",
                                "lease",
                                wait_start,
                                port.now(),
                            );
                        }
                        continue;
                    }
                    Ok(LeaseResponse::Released) => unreachable!("release response to acquire"),
                    Err(_) => {
                        // Manager unreachable (crash, or exhausted retries
                        // on a real transport) but our lease may still be
                        // valid.
                        if expiry > now {
                            return Ok(DirRef::Local(table));
                        }
                        return Err(FsError::TimedOut);
                    }
                }
            }
            if let Some(leader) = s.remote_hints.get(&pkey).copied() {
                return Ok(DirRef::Remote(leader));
            }
            match self.cluster.call_lease(
                port,
                manager_node(pkey, config.lease_managers),
                LeaseRequest::Acquire {
                    client: self.id,
                    ino: pkey,
                },
            ) {
                Ok(LeaseResponse::Granted { expires_at, .. }) => {
                    // Build the metatable; §III-C: load inode, check, pull
                    // dentries and child inodes. Metatable::load_partition
                    // validates the partition map and runs journal
                    // recovery on this partition's stream first.
                    let table = match Metatable::load_partition(
                        self.cluster.prt(),
                        port,
                        dir,
                        pidx,
                        pcount,
                        config.dentry_buckets,
                        config.lease_period,
                    ) {
                        Ok(t) => t,
                        Err(e) => {
                            let _ = self.cluster.call_lease(
                                port,
                                manager_node(pkey, config.lease_managers),
                                LeaseRequest::Release {
                                    client: self.id,
                                    ino: pkey,
                                },
                            );
                            return Err(e);
                        }
                    };
                    let table = Arc::new(Mutex::new(table));
                    s.tables.insert(pkey, Arc::clone(&table));
                    s.leases.insert(pkey, expires_at);
                    self.lane(pkey).register(pkey, &table);
                    return Ok(DirRef::Local(table));
                }
                Ok(LeaseResponse::Redirect { leader }) => {
                    s.remote_hints.insert(pkey, leader);
                    self.telemetry.flight.record(
                        self.id.0,
                        port.now(),
                        "lease.redirect",
                        leader.0 as i64,
                        "partition led elsewhere",
                    );
                    return Ok(DirRef::Remote(leader));
                }
                Ok(LeaseResponse::Retry { until }) => {
                    drop(s);
                    self.telemetry.flight.record(
                        self.id.0,
                        port.now(),
                        "lease.retry",
                        pidx as i64,
                        "lease busy; backing off",
                    );
                    let wait_start = port.now();
                    port.wait_until(until);
                    let tracer = &self.telemetry.tracer;
                    if tracer.enabled() && port.now() > wait_start {
                        tracer.record(
                            PID_CLIENT,
                            self.id.0,
                            "lease.wait",
                            "lease",
                            wait_start,
                            port.now(),
                        );
                    }
                    continue;
                }
                Ok(LeaseResponse::Released) => unreachable!("release response to acquire"),
                Err(_) => return Err(FsError::TimedOut),
            }
        }
        Err(FsError::TimedOut)
    }

    /// Service entry point: leadership checks + dispatch.
    ///
    /// The routed partition is computed from *our* cached map; if the
    /// sender routed under a different map the partition's own ownership
    /// checks in `serve_local` still reject misdirected names, so a map
    /// disagreement degrades to `NotLeader` + refresh, never to serving
    /// out of the wrong partition.
    pub(crate) fn serve(&self, port: &Port, req: OpRequest) -> OpResponse {
        // Cache flushes are addressed to the client, not a directory.
        if let OpBody::FlushCache { file } = req.body {
            return self.serve_flush(port, file);
        }
        // Partition handoffs drain and drop leadership rather than
        // dispatching into a table.
        if let OpBody::RelinquishPartition { dir, partition } = req.body {
            return self.serve_relinquish(port, dir, partition);
        }
        let dir = match target_dir(&req.body) {
            Some(d) => d,
            None => return OpResponse::Err(FsError::InvalidArgument),
        };
        let pmap = self.cached_pmap(dir);
        let pidx = ops::route_of(&req.body, &pmap, self.cluster.config().dentry_buckets);
        let pkey = pmap.pkey(pidx);
        let table = {
            let mut s = self.dirs.stripe(pkey);
            let Some(table) = s.tables.get(&pkey).cloned() else {
                return OpResponse::NotLeader;
            };
            let valid = s.leases.get(&pkey).is_some_and(|&e| e > port.now());
            if !valid {
                // Try a same-holder extension before turning the caller
                // away.
                match self.cluster.call_lease(
                    port,
                    manager_node(pkey, self.cluster.config().lease_managers),
                    LeaseRequest::Acquire {
                        client: self.id,
                        ino: pkey,
                    },
                ) {
                    Ok(LeaseResponse::Granted {
                        expires_at,
                        must_load: false,
                        ..
                    }) => {
                        s.leases.insert(pkey, expires_at);
                    }
                    _ => {
                        s.tables.remove(&pkey);
                        s.leases.remove(&pkey);
                        return OpResponse::NotLeader;
                    }
                }
            }
            table
        };
        self.serve_local(port, &table, req)
    }

    /// Split/merge handoff (the "seal and hand off" step of the
    /// repartition protocol): quiesce one led partition — commit its
    /// journal, drain its commit lane, checkpoint — then drop the table
    /// and release the lease so the repartitioning client can install
    /// the new map knowing this partition's stream is empty.
    ///
    /// `NotLeader` tells the caller to take the partition over itself
    /// (its own takeover recovery then drains whatever stream a crashed
    /// leader may have left).
    pub(crate) fn serve_relinquish(&self, port: &Port, dir: Ino, partition: u32) -> OpResponse {
        let pkey = partition_ino(dir, partition);
        let config = self.cluster.config();
        let table = {
            let s = self.dirs.stripe(pkey);
            match s.tables.get(&pkey).cloned() {
                Some(t) => t,
                None => return OpResponse::NotLeader,
            }
        };
        {
            let mut t = self.lock_table(&table);
            if t.frozen {
                // Another repartition already owns this handoff.
                return OpResponse::Err(FsError::Busy);
            }
            t.frozen = true;
            let lane = self.lane(pkey);
            let drained = t
                .journal
                .commit(
                    self.cluster.prt(),
                    port,
                    &lane.res,
                    config.spec.local_meta_op,
                )
                .and_then(|()| {
                    let done = lane.drain_until(port.now());
                    port.wait_until(done);
                    t.checkpoint(self.cluster.prt(), port)
                });
            if let Err(e) = drained {
                // Stay leader (unfrozen); the caller counts the failed
                // handoff and falls back to takeover or aborts.
                t.frozen = false;
                return OpResponse::Err(e);
            }
        }
        self.dirs.forget(pkey);
        let _ = self.cluster.call_lease(
            port,
            manager_node(pkey, config.lease_managers),
            LeaseRequest::Release {
                client: self.id,
                ino: pkey,
            },
        );
        self.partition_handoffs.inc();
        self.telemetry.flight.record(
            self.id.0,
            port.now(),
            "lease.handoff",
            partition as i64,
            "partition quiesced and relinquished",
        );
        OpResponse::Ok
    }

    /// Write back and drop our cached chunks of `file` (leader-initiated
    /// cache flush, §III-D). Also flips matching open handles to direct
    /// mode.
    pub(crate) fn serve_flush(&self, port: &Port, file: Ino) -> OpResponse {
        let dirty = self.lock_cache().take_dirty(file);
        if !dirty.is_empty() {
            let items: Vec<(ObjectKey, Bytes)> = dirty
                .into_iter()
                .map(|(chunk, data)| (ObjectKey::data_chunk(file, chunk), Bytes::from(data)))
                .collect();
            for r in self.cluster.prt().store().put_many(port, items) {
                if let Err(e) = r {
                    return OpResponse::Err(crate::prt::map_os_err(e));
                }
            }
        }
        self.lock_cache().invalidate_file(file);
        let size = self.files.flip_to_direct(file);
        OpResponse::Flushed { size }
    }
}

impl ArkClient {
    /// Local-or-remote handle on a directory (partition 0).
    pub(crate) fn dir_ref(&self, dir: Ino) -> FsResult<DirRef> {
        self.state.dir_ref(&self.port, dir)
    }

    /// Local-or-remote handle on the partition of `dir` owning `name`'s
    /// dentry bucket. A `Local` result is re-validated against the name
    /// (a table loaded under a superseded map no longer owns the bucket);
    /// on mismatch or `Stale` the cached map is refreshed and routing
    /// retried.
    pub(crate) fn dir_ref_name(&self, dir: Ino, name: &str) -> FsResult<DirRef> {
        let buckets = self.config().dentry_buckets;
        for _ in 0..MAX_LEASE_RETRIES {
            let pmap = self.state.cached_pmap(dir);
            let pidx = pmap.partition_of_name(name, buckets);
            match self
                .state
                .dir_ref_part(&self.port, dir, pidx, pmap.partitions)
            {
                Ok(DirRef::Local(table)) => {
                    let owned = self.state.lock_table(&table).owns_name(name);
                    if owned {
                        return Ok(DirRef::Local(table));
                    }
                    self.state.refresh_pmap(&self.port, dir)?;
                }
                Ok(remote) => return Ok(remote),
                Err(FsError::Stale) => {
                    self.state.refresh_pmap(&self.port, dir)?;
                }
                Err(e) => return Err(e),
            }
        }
        Err(FsError::TimedOut)
    }

    /// The inode record of a directory, local or remote.
    pub(crate) fn dir_inode(&self, dir: Ino) -> FsResult<InodeRecord> {
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                Ok(self.state.lock_table(&table).dir.clone())
            }
            DirRef::Remote(leader) => {
                let resp =
                    self.remote_call(&Credentials::root(), dir, leader, OpBody::DirInode { dir })?;
                match resp {
                    OpResponse::Inode(rec) => Ok(rec),
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected dir-inode response".into())),
                }
            }
        }
    }

    /// RPC to a known leader of the partition owning `body`; falls back
    /// into the full routing loop when the leader changed.
    pub(crate) fn remote_call(
        &self,
        ctx: &Credentials,
        dir: Ino,
        leader: NodeId,
        body: OpBody,
    ) -> FsResult<OpResponse> {
        let req = OpRequest::new(ctx.clone(), body.clone());
        match self.state.cluster.call_ops(&self.port, leader, req) {
            Ok(OpResponse::NotLeader) | Err(_) => {
                let pmap = self.state.cached_pmap(dir);
                let pidx = ops::route_of(&body, &pmap, self.config().dentry_buckets);
                self.state.dirs.forget_hint(pmap.pkey(pidx));
                self.on_dir_port(&self.port, ctx, dir, body)
            }
            Ok(resp) => Ok(resp),
        }
    }

    /// Run an operation against a directory: locally when we lead the
    /// partition it routes to, else forwarded to that partition's leader.
    pub(crate) fn on_dir(&self, ctx: &Credentials, dir: Ino, body: OpBody) -> FsResult<OpResponse> {
        self.on_dir_port(&self.port, ctx, dir, body)
    }

    /// [`Self::on_dir`] on an explicit timeline — fan-out paths (readdir
    /// merge, fsync barrier) run partitions on forked ports so the
    /// caller pays the slowest partition, not the sum.
    pub(crate) fn on_dir_port(
        &self,
        port: &Port,
        ctx: &Credentials,
        dir: Ino,
        body: OpBody,
    ) -> FsResult<OpResponse> {
        let config = self.config();
        if body.mutates() && config.commit_mode == crate::config::CommitMode::Async {
            // Whoever serves this (us or a remote partition leader) may
            // ack before durability: remember the directory so this
            // client's next `sync_all` barriers every partition of it.
            self.state.dirty_dirs.lock().insert(dir);
        }
        for _ in 0..MAX_LEASE_RETRIES {
            let pmap = self.state.cached_pmap(dir);
            let pidx = ops::route_of(&body, &pmap, config.dentry_buckets);
            let pkey = pmap.pkey(pidx);
            match self.state.dir_ref_part(port, dir, pidx, pmap.partitions) {
                Ok(DirRef::Local(table)) => {
                    port.advance(config.spec.local_meta_op);
                    let req = OpRequest::new(ctx.clone(), body.clone());
                    match self.state.serve_local(port, &table, req) {
                        OpResponse::NotLeader => {
                            // Our own table rejected the op: routed under
                            // a stale map, or frozen by an in-flight
                            // split. Refresh and re-route.
                            self.state.telemetry.flight.record(
                                self.state.id.0,
                                port.now(),
                                "op.notleader",
                                pidx as i64,
                                "own table rejected op; refreshing map",
                            );
                            self.state.refresh_pmap(port, dir)?;
                        }
                        resp => return Ok(resp),
                    }
                }
                Ok(DirRef::Remote(leader)) => {
                    let req = OpRequest::new(ctx.clone(), body.clone());
                    match self.state.cluster.call_ops(port, leader, req) {
                        Ok(OpResponse::NotLeader) | Err(_) => {
                            self.state.telemetry.flight.record(
                                self.state.id.0,
                                port.now(),
                                "op.notleader",
                                leader.0 as i64,
                                "remote leader bounced op; refreshing map",
                            );
                            self.state.dirs.forget_hint(pkey);
                            self.state.refresh_pmap(port, dir)?;
                        }
                        Ok(resp) => return Ok(resp),
                    }
                }
                Err(FsError::Stale) => {
                    self.state.refresh_pmap(port, dir)?;
                }
                Err(e) => return Err(e),
            }
        }
        Err(FsError::TimedOut)
    }

    /// Repartition `path` (a directory) to `partitions` dentry
    /// partitions. This is the explicit form of the load-triggered
    /// split/merge; fig8 uses it to pin partition counts.
    pub fn set_dir_partitions(
        &self,
        ctx: &Credentials,
        path: &str,
        partitions: u32,
    ) -> FsResult<()> {
        let (ino, ftype) = self.resolve(ctx, path)?;
        if ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        self.repartition(ino, partitions)
    }

    /// Change `dir`'s partition count to `target`, preserving the
    /// namespace exactly. Protocol (crash-safe at every boundary):
    ///
    /// 1. Read the authoritative map; no-op if already at `target`.
    /// 2. For each *old* partition: drain its journal to the checkpoint
    ///    — by freezing our own table, by a `RelinquishPartition` RPC to
    ///    the remote leader, or (failed handoff, counted on
    ///    `lease.handoff_failed.count`) by taking the partition over and
    ///    letting recovery replay + drain the stream locally.
    /// 3. Install the new map (delete it when `target == 1`).
    /// 4. Drop our frozen leaderships and release their leases; fresh
    ///    leaders load under the new map with empty journal streams.
    ///
    /// A crash before step 3 leaves the old map governing streams that
    /// are drained or recoverable under the old ranges; a crash after
    /// leaves frozen tables refusing service until their leases lapse.
    /// Because step 2 completes before step 3, an op acked under the old
    /// map is durable before the new map exists — the invariant fsync's
    /// cached-map fan-out relies on.
    pub(crate) fn repartition(&self, dir: Ino, target: u32) -> FsResult<()> {
        let config = self.config();
        let max = config.dir_partition_max.max(1);
        let buckets32 = u32::try_from(config.dentry_buckets).unwrap_or(u32::MAX);
        let target = target.clamp(1, max.min(buckets32.max(1)));
        let old = self.state.refresh_pmap(&self.port, dir)?;
        if old.partitions == target {
            return Ok(());
        }
        let growing = target > old.partitions;
        // Step 2: quiesce every old partition so no journal stream
        // outlives the map it was written under.
        let mut frozen: Vec<Ino> = Vec::new();
        for p in 0..old.partitions {
            let pkey = old.pkey(p);
            let mut quiesced = false;
            for _ in 0..MAX_LEASE_RETRIES {
                match self.state.dir_ref_part(&self.port, dir, p, old.partitions) {
                    Ok(DirRef::Local(table)) => {
                        let mut t = self.state.lock_table(&table);
                        if t.frozen {
                            // A concurrent repartition beat us to it.
                            drop(t);
                            self.unfreeze(&frozen);
                            return Err(FsError::Busy);
                        }
                        t.frozen = true;
                        let lane = self.state.lane(pkey);
                        let drained = t
                            .journal
                            .commit(self.prt(), &self.port, &lane.res, config.spec.local_meta_op)
                            .and_then(|()| {
                                let done = lane.drain_until(self.port.now());
                                self.port.wait_until(done);
                                t.checkpoint(self.prt(), &self.port)
                            });
                        match drained {
                            Ok(()) => {
                                frozen.push(pkey);
                                quiesced = true;
                            }
                            Err(e) => {
                                t.frozen = false;
                                drop(t);
                                self.unfreeze(&frozen);
                                return Err(e);
                            }
                        }
                        break;
                    }
                    Ok(DirRef::Remote(leader)) => {
                        let req = OpRequest::new(
                            Credentials::root(),
                            OpBody::RelinquishPartition { dir, partition: p },
                        );
                        match self.state.cluster.call_ops(&self.port, leader, req) {
                            Ok(OpResponse::Ok) => {
                                self.state.dirs.forget_hint(pkey);
                                self.state.partition_handoffs.inc();
                                quiesced = true;
                                break;
                            }
                            Ok(OpResponse::Err(FsError::Busy)) => {
                                self.unfreeze(&frozen);
                                return Err(FsError::Busy);
                            }
                            _ => {
                                // Failed handoff: counted, then retried
                                // via takeover — the next dir_ref_part
                                // acquires the lease (once it lapses) and
                                // recovery drains the stream for us.
                                self.state.lease_handoff_failed.inc();
                                self.state.dirs.forget_hint(pkey);
                            }
                        }
                    }
                    Err(FsError::Stale) => {
                        // The map changed under us mid-protocol.
                        self.unfreeze(&frozen);
                        return Err(FsError::Busy);
                    }
                    Err(e) => {
                        self.unfreeze(&frozen);
                        return Err(e);
                    }
                }
            }
            if !quiesced {
                self.unfreeze(&frozen);
                return Err(FsError::TimedOut);
            }
        }
        // Step 3: install the new map (absence == singleton).
        let map = PartitionMap {
            dir,
            epoch: old.epoch + 1,
            partitions: target,
        };
        let installed = if target == 1 {
            self.prt().delete_pmap(&self.port, dir)
        } else {
            self.prt().store_pmap(&self.port, &map)
        };
        if let Err(e) = installed {
            self.unfreeze(&frozen);
            return Err(e);
        }
        // Step 4: hand off our frozen leaderships.
        for pkey in frozen {
            self.state.dirs.forget(pkey);
            let _ = self.state.cluster.call_lease(
                &self.port,
                manager_node(pkey, config.lease_managers),
                LeaseRequest::Release {
                    client: self.state.id,
                    ino: pkey,
                },
            );
            self.state.partition_handoffs.inc();
        }
        self.state.cache_pmap(map);
        if growing {
            self.state.partition_splits.inc();
        } else {
            self.state.partition_merges.inc();
        }
        Ok(())
    }

    /// Undo step-2 freezes after an aborted repartition: the old map
    /// still governs, so the frozen tables are valid and resume serving.
    fn unfreeze(&self, pkeys: &[Ino]) {
        for &pkey in pkeys {
            let table = {
                let s = self.state.dirs.stripe(pkey);
                s.tables.get(&pkey).cloned()
            };
            if let Some(table) = table {
                self.state.lock_table(&table).frozen = false;
            }
        }
    }

    /// Apply load-triggered splits/merges queued by `serve_local`'s
    /// append-rate sampling. Runs at op entry (no locks held); failures
    /// are dropped — sustained load re-queues on the next rate window.
    pub(crate) fn drain_pending_splits(&self) {
        loop {
            let next = {
                let mut pending = self.state.pending_splits.lock();
                pending.pop()
            };
            let Some((dir, target)) = next else { return };
            let _ = self.repartition(dir, target);
        }
    }
}
