//! Directory-leadership lifecycle and local-vs-remote routing.
//!
//! For every directory a client touches it either *leads* (holds the
//! lease from the lease manager and the loaded [`Metatable`]) or knows
//! (or learns) the current leader and forwards over RPC (§III-B,
//! Figure 3). This module owns:
//!
//! * the striped leadership state ([`DirService`]): led tables, lease
//!   expiries, and remote-leader hints, all keyed by directory ino;
//! * lease acquire/extend/release and the takeover/recovery entry point
//!   ([`ClientState::dir_ref`] → [`Metatable::load`]);
//! * the leader-side RPC service ([`ClientService`], [`ClientState::serve`])
//!   and leader-initiated cache-flush broadcasts (§III-D);
//! * client-side routing helpers ([`ArkClient::on_dir`],
//!   [`ArkClient::remote_call`]).
//!
//! Lock order (see [`super::lockorder`]): a dir stripe is rank
//! *Stripe*; it may be held while acquiring a lease or loading a
//! metatable from the store, but never while locking another ranked
//! client lock except a [`Metatable`] (rank above it).

mod ops;

pub(crate) use ops::target_dir;

use super::lockorder::{self, Rank, RankGuard};
use super::{ArkClient, ClientState, MAX_LEASE_RETRIES};
use crate::cluster::manager_node;
use crate::meta::InodeRecord;
use crate::metatable::Metatable;
use crate::rpc::{OpBody, OpRequest, OpResponse};
use arkfs_lease::{LeaseRequest, LeaseResponse};
use arkfs_netsim::{NetError, NodeId, Service};
use arkfs_objstore::ObjectKey;
use arkfs_simkit::{Nanos, Port};
use arkfs_vfs::{Credentials, FsError, FsResult, Ino};
use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A directory as seen from one client.
pub(crate) enum DirRef {
    Local(Arc<Mutex<Metatable>>),
    Remote(NodeId),
}

/// One stripe of directory-leadership state. All three maps are keyed
/// by directory ino and updated atomically under the stripe lock, so a
/// table entry and its lease expiry can never be observed out of sync.
#[derive(Debug, Default)]
pub(crate) struct DirStripe {
    /// Directories this client currently leads (within this stripe).
    pub(crate) tables: HashMap<Ino, Arc<Mutex<Metatable>>>,
    /// Lease expiry per led directory.
    pub(crate) leases: HashMap<Ino, Nanos>,
    /// Last-known leaders of remote directories.
    pub(crate) remote_hints: HashMap<Ino, NodeId>,
    /// Acquisitions of this stripe's lock (maintained under the lock).
    locks: u64,
}

/// A locked [`DirStripe`] plus its rank guard.
pub(crate) struct StripeGuard<'a> {
    guard: MutexGuard<'a, DirStripe>,
    _rank: RankGuard,
}

impl Deref for StripeGuard<'_> {
    type Target = DirStripe;
    fn deref(&self) -> &DirStripe {
        &self.guard
    }
}

impl DerefMut for StripeGuard<'_> {
    fn deref_mut(&mut self) -> &mut DirStripe {
        &mut self.guard
    }
}

/// Lock-striped directory-leadership state: directory `d` lives in
/// stripe `d % N`, so threads working on directories in different
/// stripes never contend on each other's leadership bookkeeping.
#[derive(Debug)]
pub(crate) struct DirService {
    stripes: Vec<Mutex<DirStripe>>,
    node: u32,
    pub(crate) contention: super::Contention,
}

impl DirService {
    pub(crate) fn new(stripes: usize, node: u32) -> Self {
        DirService {
            stripes: (0..stripes.max(1)).map(|_| Mutex::default()).collect(),
            node,
            contention: super::Contention::default(),
        }
    }

    /// Lock the stripe owning `dir` (rank: Stripe).
    pub(crate) fn stripe(&self, dir: Ino) -> StripeGuard<'_> {
        self.stripe_at((dir % self.stripes.len() as u128) as usize)
    }

    /// Number of directories this client currently leads.
    pub(crate) fn led_directories(&self) -> usize {
        (0..self.stripes.len())
            .map(|i| self.stripe_at(i).tables.len())
            .sum()
    }

    /// Inos of every led directory.
    pub(crate) fn led_inos(&self) -> Vec<Ino> {
        (0..self.stripes.len())
            .flat_map(|i| self.stripe_at(i).tables.keys().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Every led directory with its metatable.
    pub(crate) fn led_tables(&self) -> Vec<(Ino, Arc<Mutex<Metatable>>)> {
        (0..self.stripes.len())
            .flat_map(|i| {
                self.stripe_at(i)
                    .tables
                    .iter()
                    .map(|(&ino, t)| (ino, Arc::clone(t)))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Drop leadership bookkeeping for `dir` (table + lease expiry).
    pub(crate) fn forget(&self, dir: Ino) {
        let mut s = self.stripe(dir);
        s.tables.remove(&dir);
        s.leases.remove(&dir);
    }

    /// Drop the remote-leader hint for `dir`.
    pub(crate) fn forget_hint(&self, dir: Ino) {
        self.stripe(dir).remote_hints.remove(&dir);
    }

    /// Drop everything (crash).
    pub(crate) fn clear(&self) {
        for i in 0..self.stripes.len() {
            let mut s = self.stripe_at(i);
            s.tables.clear();
            s.leases.clear();
            s.remote_hints.clear();
        }
    }

    /// Total stripe-lock acquisitions so far.
    pub(crate) fn lock_count(&self) -> u64 {
        (0..self.stripes.len())
            .map(|i| {
                let s = self.stripe_at(i);
                // Don't count this read itself.
                s.locks - 1
            })
            .sum()
    }

    fn stripe_at(&self, i: usize) -> StripeGuard<'_> {
        let rank = lockorder::acquire(self.node, Rank::Stripe);
        let mut guard = self.contention.lock(&self.stripes[i]);
        guard.locks += 1;
        StripeGuard { guard, _rank: rank }
    }
}

/// The RPC face of a client: leaders serve forwarded operations here,
/// on the *caller's* thread.
pub(crate) struct ClientService(pub(crate) Arc<ClientState>);

impl Service<OpRequest, OpResponse> for ClientService {
    fn handle(&self, arrival: Nanos, req: OpRequest) -> (OpResponse, Nanos) {
        if self.0.crashed.load(Ordering::Acquire) {
            return (OpResponse::NotLeader, arrival);
        }
        let spec = &self.0.cluster.config().spec;
        let start = self.0.server.reserve(arrival, spec.leader_op_service);
        let port = Port::starting_at(start);
        let resp = self.0.serve(&port, req);
        (resp, port.now())
    }
}

impl ClientState {
    /// Resolve a directory to a local metatable (leading it, acquiring or
    /// extending the lease as needed) or the current remote leader.
    ///
    /// The stripe lock is held across the lease-manager exchange and any
    /// [`Metatable::load`], so concurrent threads racing for the same
    /// directory converge on one acquisition instead of double-loading.
    pub(crate) fn dir_ref(&self, port: &Port, dir: Ino) -> FsResult<DirRef> {
        let config = self.cluster.config();
        for _ in 0..MAX_LEASE_RETRIES {
            let mut s = self.dirs.stripe(dir);
            let now = port.now();
            if let Some(table) = s.tables.get(&dir).cloned() {
                let expiry = s.leases.get(&dir).copied().unwrap_or(0);
                if expiry > now.saturating_add(config.lease_renew_margin) {
                    return Ok(DirRef::Local(table));
                }
                // Extend (or same-holder re-acquire).
                match self.cluster.lease_bus().call(
                    port,
                    manager_node(dir, config.lease_managers),
                    LeaseRequest::Acquire {
                        client: self.id,
                        ino: dir,
                    },
                ) {
                    Ok(LeaseResponse::Granted {
                        expires_at,
                        must_load,
                        ..
                    }) => {
                        if must_load {
                            // Defensive: the manager believes our state is
                            // stale; rebuild.
                            let fresh = Metatable::load(
                                self.cluster.prt(),
                                port,
                                dir,
                                config.dentry_buckets,
                                config.lease_period,
                            )?;
                            let fresh = Arc::new(Mutex::new(fresh));
                            s.tables.insert(dir, Arc::clone(&fresh));
                            s.leases.insert(dir, expires_at);
                            return Ok(DirRef::Local(fresh));
                        }
                        s.leases.insert(dir, expires_at);
                        return Ok(DirRef::Local(table));
                    }
                    Ok(LeaseResponse::Redirect { leader }) => {
                        // We lost the directory; discard stale state.
                        s.tables.remove(&dir);
                        s.leases.remove(&dir);
                        s.remote_hints.insert(dir, leader);
                        return Ok(DirRef::Remote(leader));
                    }
                    Ok(LeaseResponse::Retry { until }) => {
                        drop(s);
                        port.wait_until(until);
                        continue;
                    }
                    Ok(LeaseResponse::Released) => unreachable!("release response to acquire"),
                    Err(NetError::Unreachable) => {
                        // Manager down but our lease may still be valid.
                        if expiry > now {
                            return Ok(DirRef::Local(table));
                        }
                        return Err(FsError::TimedOut);
                    }
                }
            }
            if let Some(leader) = s.remote_hints.get(&dir).copied() {
                return Ok(DirRef::Remote(leader));
            }
            match self.cluster.lease_bus().call(
                port,
                manager_node(dir, config.lease_managers),
                LeaseRequest::Acquire {
                    client: self.id,
                    ino: dir,
                },
            ) {
                Ok(LeaseResponse::Granted { expires_at, .. }) => {
                    // Build the metatable; §III-C: load inode, check, pull
                    // dentries and child inodes. Metatable::load runs
                    // journal recovery first.
                    let table = match Metatable::load(
                        self.cluster.prt(),
                        port,
                        dir,
                        config.dentry_buckets,
                        config.lease_period,
                    ) {
                        Ok(t) => t,
                        Err(e) => {
                            let _ = self.cluster.lease_bus().call(
                                port,
                                manager_node(dir, config.lease_managers),
                                LeaseRequest::Release {
                                    client: self.id,
                                    ino: dir,
                                },
                            );
                            return Err(e);
                        }
                    };
                    let table = Arc::new(Mutex::new(table));
                    s.tables.insert(dir, Arc::clone(&table));
                    s.leases.insert(dir, expires_at);
                    return Ok(DirRef::Local(table));
                }
                Ok(LeaseResponse::Redirect { leader }) => {
                    s.remote_hints.insert(dir, leader);
                    return Ok(DirRef::Remote(leader));
                }
                Ok(LeaseResponse::Retry { until }) => {
                    drop(s);
                    port.wait_until(until);
                    continue;
                }
                Ok(LeaseResponse::Released) => unreachable!("release response to acquire"),
                Err(NetError::Unreachable) => return Err(FsError::TimedOut),
            }
        }
        Err(FsError::TimedOut)
    }

    /// Service entry point: leadership checks + dispatch.
    pub(crate) fn serve(&self, port: &Port, req: OpRequest) -> OpResponse {
        // Cache flushes are addressed to the client, not a directory.
        if let OpBody::FlushCache { file } = req.body {
            return self.serve_flush(port, file);
        }
        let dir = match target_dir(&req.body) {
            Some(d) => d,
            None => return OpResponse::Err(FsError::InvalidArgument),
        };
        let table = {
            let mut s = self.dirs.stripe(dir);
            let Some(table) = s.tables.get(&dir).cloned() else {
                return OpResponse::NotLeader;
            };
            let valid = s.leases.get(&dir).is_some_and(|&e| e > port.now());
            if !valid {
                // Try a same-holder extension before turning the caller
                // away.
                match self.cluster.lease_bus().call(
                    port,
                    manager_node(dir, self.cluster.config().lease_managers),
                    LeaseRequest::Acquire {
                        client: self.id,
                        ino: dir,
                    },
                ) {
                    Ok(LeaseResponse::Granted {
                        expires_at,
                        must_load: false,
                        ..
                    }) => {
                        s.leases.insert(dir, expires_at);
                    }
                    _ => {
                        s.tables.remove(&dir);
                        s.leases.remove(&dir);
                        return OpResponse::NotLeader;
                    }
                }
            }
            table
        };
        self.serve_local(port, &table, req)
    }

    /// Write back and drop our cached chunks of `file` (leader-initiated
    /// cache flush, §III-D). Also flips matching open handles to direct
    /// mode.
    pub(crate) fn serve_flush(&self, port: &Port, file: Ino) -> OpResponse {
        let dirty = self.lock_cache().take_dirty(file);
        if !dirty.is_empty() {
            let items: Vec<(ObjectKey, Bytes)> = dirty
                .into_iter()
                .map(|(chunk, data)| (ObjectKey::data_chunk(file, chunk), Bytes::from(data)))
                .collect();
            for r in self.cluster.prt().store().put_many(port, items) {
                if let Err(e) = r {
                    return OpResponse::Err(crate::prt::map_os_err(e));
                }
            }
        }
        self.lock_cache().invalidate_file(file);
        let size = self.files.flip_to_direct(file);
        OpResponse::Flushed { size }
    }
}

impl ArkClient {
    /// Local-or-remote handle on a directory.
    pub(crate) fn dir_ref(&self, dir: Ino) -> FsResult<DirRef> {
        self.state.dir_ref(&self.port, dir)
    }

    /// The inode record of a directory, local or remote.
    pub(crate) fn dir_inode(&self, dir: Ino) -> FsResult<InodeRecord> {
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                Ok(self.state.lock_table(&table).dir.clone())
            }
            DirRef::Remote(leader) => {
                let resp =
                    self.remote_call(&Credentials::root(), dir, leader, OpBody::DirInode { dir })?;
                match resp {
                    OpResponse::Inode(rec) => Ok(rec),
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected dir-inode response".into())),
                }
            }
        }
    }

    /// RPC to a directory's leader, retrying through the lease manager
    /// when the leader changed.
    pub(crate) fn remote_call(
        &self,
        ctx: &Credentials,
        dir: Ino,
        mut leader: NodeId,
        body: OpBody,
    ) -> FsResult<OpResponse> {
        for _ in 0..MAX_LEASE_RETRIES {
            let req = OpRequest {
                creds: ctx.clone(),
                body: body.clone(),
            };
            match self.state.cluster.ops_bus().call(&self.port, leader, req) {
                Ok(OpResponse::NotLeader) | Err(NetError::Unreachable) => {
                    self.state.dirs.forget_hint(dir);
                    match self.dir_ref(dir)? {
                        DirRef::Remote(next) => leader = next,
                        DirRef::Local(table) => {
                            // We became the leader ourselves; execute
                            // locally through the common serve path.
                            let req = OpRequest {
                                creds: ctx.clone(),
                                body: body.clone(),
                            };
                            return Ok(self.state.serve_local(&self.port, &table, req));
                        }
                    }
                }
                Ok(resp) => return Ok(resp),
            }
        }
        Err(FsError::TimedOut)
    }

    /// Run an operation against a directory: locally when we lead it,
    /// else forwarded to the leader.
    pub(crate) fn on_dir(&self, ctx: &Credentials, dir: Ino, body: OpBody) -> FsResult<OpResponse> {
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let req = OpRequest {
                    creds: ctx.clone(),
                    body,
                };
                Ok(self.state.serve_local(&self.port, &table, req))
            }
            DirRef::Remote(leader) => self.remote_call(ctx, dir, leader, body),
        }
    }
}
